# Empty compiler generated dependencies file for table8_scale.
# This may be replaced when dependencies are built.
