file(REMOVE_RECURSE
  "CMakeFiles/table8_scale.dir/table8_scale.cpp.o"
  "CMakeFiles/table8_scale.dir/table8_scale.cpp.o.d"
  "table8_scale"
  "table8_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
