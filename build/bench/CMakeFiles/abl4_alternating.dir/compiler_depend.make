# Empty compiler generated dependencies file for abl4_alternating.
# This may be replaced when dependencies are built.
