file(REMOVE_RECURSE
  "CMakeFiles/abl4_alternating.dir/abl4_alternating.cpp.o"
  "CMakeFiles/abl4_alternating.dir/abl4_alternating.cpp.o.d"
  "abl4_alternating"
  "abl4_alternating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_alternating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
