file(REMOVE_RECURSE
  "CMakeFiles/table3_layout.dir/table3_layout.cpp.o"
  "CMakeFiles/table3_layout.dir/table3_layout.cpp.o.d"
  "table3_layout"
  "table3_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
