# Empty dependencies file for table3_layout.
# This may be replaced when dependencies are built.
