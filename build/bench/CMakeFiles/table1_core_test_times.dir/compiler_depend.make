# Empty compiler generated dependencies file for table1_core_test_times.
# This may be replaced when dependencies are built.
