# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table1_core_test_times.
