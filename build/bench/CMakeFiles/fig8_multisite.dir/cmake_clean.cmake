file(REMOVE_RECURSE
  "CMakeFiles/fig8_multisite.dir/fig8_multisite.cpp.o"
  "CMakeFiles/fig8_multisite.dir/fig8_multisite.cpp.o.d"
  "fig8_multisite"
  "fig8_multisite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_multisite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
