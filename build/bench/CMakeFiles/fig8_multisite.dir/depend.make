# Empty dependencies file for fig8_multisite.
# This may be replaced when dependencies are built.
