# Empty dependencies file for fig2_power_tradeoff.
# This may be replaced when dependencies are built.
