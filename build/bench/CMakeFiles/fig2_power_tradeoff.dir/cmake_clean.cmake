file(REMOVE_RECURSE
  "CMakeFiles/fig2_power_tradeoff.dir/fig2_power_tradeoff.cpp.o"
  "CMakeFiles/fig2_power_tradeoff.dir/fig2_power_tradeoff.cpp.o.d"
  "fig2_power_tradeoff"
  "fig2_power_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_power_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
