file(REMOVE_RECURSE
  "CMakeFiles/abl5_exact_wrapper.dir/abl5_exact_wrapper.cpp.o"
  "CMakeFiles/abl5_exact_wrapper.dir/abl5_exact_wrapper.cpp.o.d"
  "abl5_exact_wrapper"
  "abl5_exact_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl5_exact_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
