# Empty compiler generated dependencies file for abl5_exact_wrapper.
# This may be replaced when dependencies are built.
