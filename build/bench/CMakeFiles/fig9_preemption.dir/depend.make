# Empty dependencies file for fig9_preemption.
# This may be replaced when dependencies are built.
