file(REMOVE_RECURSE
  "CMakeFiles/fig9_preemption.dir/fig9_preemption.cpp.o"
  "CMakeFiles/fig9_preemption.dir/fig9_preemption.cpp.o.d"
  "fig9_preemption"
  "fig9_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
