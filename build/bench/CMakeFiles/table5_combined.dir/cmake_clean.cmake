file(REMOVE_RECURSE
  "CMakeFiles/table5_combined.dir/table5_combined.cpp.o"
  "CMakeFiles/table5_combined.dir/table5_combined.cpp.o.d"
  "table5_combined"
  "table5_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
