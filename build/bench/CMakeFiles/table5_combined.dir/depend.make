# Empty dependencies file for table5_combined.
# This may be replaced when dependencies are built.
