# Empty compiler generated dependencies file for fig5_wire_quality.
# This may be replaced when dependencies are built.
