file(REMOVE_RECURSE
  "CMakeFiles/fig1_width_curve.dir/fig1_width_curve.cpp.o"
  "CMakeFiles/fig1_width_curve.dir/fig1_width_curve.cpp.o.d"
  "fig1_width_curve"
  "fig1_width_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_width_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
