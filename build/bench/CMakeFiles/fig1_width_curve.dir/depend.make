# Empty dependencies file for fig1_width_curve.
# This may be replaced when dependencies are built.
