# Empty dependencies file for table7_ate_depth.
# This may be replaced when dependencies are built.
