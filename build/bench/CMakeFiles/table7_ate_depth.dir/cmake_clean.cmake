file(REMOVE_RECURSE
  "CMakeFiles/table7_ate_depth.dir/table7_ate_depth.cpp.o"
  "CMakeFiles/table7_ate_depth.dir/table7_ate_depth.cpp.o.d"
  "table7_ate_depth"
  "table7_ate_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ate_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
