# Empty compiler generated dependencies file for abl3_power_pessimism.
# This may be replaced when dependencies are built.
