file(REMOVE_RECURSE
  "CMakeFiles/abl3_power_pessimism.dir/abl3_power_pessimism.cpp.o"
  "CMakeFiles/abl3_power_pessimism.dir/abl3_power_pessimism.cpp.o.d"
  "abl3_power_pessimism"
  "abl3_power_pessimism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_power_pessimism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
