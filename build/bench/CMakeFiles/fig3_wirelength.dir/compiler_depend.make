# Empty compiler generated dependencies file for fig3_wirelength.
# This may be replaced when dependencies are built.
