file(REMOVE_RECURSE
  "CMakeFiles/fig3_wirelength.dir/fig3_wirelength.cpp.o"
  "CMakeFiles/fig3_wirelength.dir/fig3_wirelength.cpp.o.d"
  "fig3_wirelength"
  "fig3_wirelength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_wirelength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
