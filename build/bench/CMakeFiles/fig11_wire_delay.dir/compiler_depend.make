# Empty compiler generated dependencies file for fig11_wire_delay.
# This may be replaced when dependencies are built.
