file(REMOVE_RECURSE
  "CMakeFiles/abl1_wrapper_partition.dir/abl1_wrapper_partition.cpp.o"
  "CMakeFiles/abl1_wrapper_partition.dir/abl1_wrapper_partition.cpp.o.d"
  "abl1_wrapper_partition"
  "abl1_wrapper_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_wrapper_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
