# Empty dependencies file for abl1_wrapper_partition.
# This may be replaced when dependencies are built.
