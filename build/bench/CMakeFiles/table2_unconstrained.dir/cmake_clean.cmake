file(REMOVE_RECURSE
  "CMakeFiles/table2_unconstrained.dir/table2_unconstrained.cpp.o"
  "CMakeFiles/table2_unconstrained.dir/table2_unconstrained.cpp.o.d"
  "table2_unconstrained"
  "table2_unconstrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_unconstrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
