# Empty dependencies file for table2_unconstrained.
# This may be replaced when dependencies are built.
