# Empty compiler generated dependencies file for fig4_idle_insertion.
# This may be replaced when dependencies are built.
