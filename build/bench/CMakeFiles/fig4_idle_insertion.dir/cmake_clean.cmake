file(REMOVE_RECURSE
  "CMakeFiles/fig4_idle_insertion.dir/fig4_idle_insertion.cpp.o"
  "CMakeFiles/fig4_idle_insertion.dir/fig4_idle_insertion.cpp.o.d"
  "fig4_idle_insertion"
  "fig4_idle_insertion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_idle_insertion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
