# Empty compiler generated dependencies file for fig10_sessions.
# This may be replaced when dependencies are built.
