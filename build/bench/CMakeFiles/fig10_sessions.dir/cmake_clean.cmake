file(REMOVE_RECURSE
  "CMakeFiles/fig10_sessions.dir/fig10_sessions.cpp.o"
  "CMakeFiles/fig10_sessions.dir/fig10_sessions.cpp.o.d"
  "fig10_sessions"
  "fig10_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
