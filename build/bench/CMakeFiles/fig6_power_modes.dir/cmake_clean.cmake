file(REMOVE_RECURSE
  "CMakeFiles/fig6_power_modes.dir/fig6_power_modes.cpp.o"
  "CMakeFiles/fig6_power_modes.dir/fig6_power_modes.cpp.o.d"
  "fig6_power_modes"
  "fig6_power_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_power_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
