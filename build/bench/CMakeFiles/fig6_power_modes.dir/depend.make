# Empty dependencies file for fig6_power_modes.
# This may be replaced when dependencies are built.
