# Empty compiler generated dependencies file for abl2_bb_bounds.
# This may be replaced when dependencies are built.
