file(REMOVE_RECURSE
  "CMakeFiles/abl2_bb_bounds.dir/abl2_bb_bounds.cpp.o"
  "CMakeFiles/abl2_bb_bounds.dir/abl2_bb_bounds.cpp.o.d"
  "abl2_bb_bounds"
  "abl2_bb_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_bb_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
