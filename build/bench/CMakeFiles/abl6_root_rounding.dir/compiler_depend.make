# Empty compiler generated dependencies file for abl6_root_rounding.
# This may be replaced when dependencies are built.
