file(REMOVE_RECURSE
  "CMakeFiles/abl6_root_rounding.dir/abl6_root_rounding.cpp.o"
  "CMakeFiles/abl6_root_rounding.dir/abl6_root_rounding.cpp.o.d"
  "abl6_root_rounding"
  "abl6_root_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl6_root_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
