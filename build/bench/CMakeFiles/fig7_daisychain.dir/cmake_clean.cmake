file(REMOVE_RECURSE
  "CMakeFiles/fig7_daisychain.dir/fig7_daisychain.cpp.o"
  "CMakeFiles/fig7_daisychain.dir/fig7_daisychain.cpp.o.d"
  "fig7_daisychain"
  "fig7_daisychain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_daisychain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
