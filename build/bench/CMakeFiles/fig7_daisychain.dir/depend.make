# Empty dependencies file for fig7_daisychain.
# This may be replaced when dependencies are built.
