# Empty compiler generated dependencies file for layout_aware.
# This may be replaced when dependencies are built.
