file(REMOVE_RECURSE
  "CMakeFiles/layout_aware.dir/layout_aware.cpp.o"
  "CMakeFiles/layout_aware.dir/layout_aware.cpp.o.d"
  "layout_aware"
  "layout_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
