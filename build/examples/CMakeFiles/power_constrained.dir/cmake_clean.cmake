file(REMOVE_RECURSE
  "CMakeFiles/power_constrained.dir/power_constrained.cpp.o"
  "CMakeFiles/power_constrained.dir/power_constrained.cpp.o.d"
  "power_constrained"
  "power_constrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
