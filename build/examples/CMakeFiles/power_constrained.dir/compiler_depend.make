# Empty compiler generated dependencies file for power_constrained.
# This may be replaced when dependencies are built.
