
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/power_constrained.cpp" "examples/CMakeFiles/power_constrained.dir/power_constrained.cpp.o" "gcc" "examples/CMakeFiles/power_constrained.dir/power_constrained.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/soctest_report.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/soctest_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/tam/CMakeFiles/soctest_tam.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/soctest_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/soctest_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/wrapper/CMakeFiles/soctest_wrapper.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/soctest_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/soctest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
