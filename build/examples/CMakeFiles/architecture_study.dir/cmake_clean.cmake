file(REMOVE_RECURSE
  "CMakeFiles/architecture_study.dir/architecture_study.cpp.o"
  "CMakeFiles/architecture_study.dir/architecture_study.cpp.o.d"
  "architecture_study"
  "architecture_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
