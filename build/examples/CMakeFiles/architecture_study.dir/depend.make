# Empty dependencies file for architecture_study.
# This may be replaced when dependencies are built.
