file(REMOVE_RECURSE
  "CMakeFiles/daisychain_test.dir/daisychain_test.cpp.o"
  "CMakeFiles/daisychain_test.dir/daisychain_test.cpp.o.d"
  "daisychain_test"
  "daisychain_test.pdb"
  "daisychain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daisychain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
