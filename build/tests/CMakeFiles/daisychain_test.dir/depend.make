# Empty dependencies file for daisychain_test.
# This may be replaced when dependencies are built.
