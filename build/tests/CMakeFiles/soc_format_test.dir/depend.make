# Empty dependencies file for soc_format_test.
# This may be replaced when dependencies are built.
