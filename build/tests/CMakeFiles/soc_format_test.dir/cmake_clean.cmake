file(REMOVE_RECURSE
  "CMakeFiles/soc_format_test.dir/soc_format_test.cpp.o"
  "CMakeFiles/soc_format_test.dir/soc_format_test.cpp.o.d"
  "soc_format_test"
  "soc_format_test.pdb"
  "soc_format_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_format_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
