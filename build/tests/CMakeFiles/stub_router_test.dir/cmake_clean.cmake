file(REMOVE_RECURSE
  "CMakeFiles/stub_router_test.dir/stub_router_test.cpp.o"
  "CMakeFiles/stub_router_test.dir/stub_router_test.cpp.o.d"
  "stub_router_test"
  "stub_router_test.pdb"
  "stub_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stub_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
