# Empty compiler generated dependencies file for stub_router_test.
# This may be replaced when dependencies are built.
