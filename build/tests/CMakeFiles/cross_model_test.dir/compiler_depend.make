# Empty compiler generated dependencies file for cross_model_test.
# This may be replaced when dependencies are built.
