file(REMOVE_RECURSE
  "CMakeFiles/cross_model_test.dir/cross_model_test.cpp.o"
  "CMakeFiles/cross_model_test.dir/cross_model_test.cpp.o.d"
  "cross_model_test"
  "cross_model_test.pdb"
  "cross_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
