file(REMOVE_RECURSE
  "CMakeFiles/width_partition_test.dir/width_partition_test.cpp.o"
  "CMakeFiles/width_partition_test.dir/width_partition_test.cpp.o.d"
  "width_partition_test"
  "width_partition_test.pdb"
  "width_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/width_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
