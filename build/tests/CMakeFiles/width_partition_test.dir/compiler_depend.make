# Empty compiler generated dependencies file for width_partition_test.
# This may be replaced when dependencies are built.
