file(REMOVE_RECURSE
  "CMakeFiles/power_profile_test.dir/power_profile_test.cpp.o"
  "CMakeFiles/power_profile_test.dir/power_profile_test.cpp.o.d"
  "power_profile_test"
  "power_profile_test.pdb"
  "power_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
