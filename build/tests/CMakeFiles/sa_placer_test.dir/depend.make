# Empty dependencies file for sa_placer_test.
# This may be replaced when dependencies are built.
