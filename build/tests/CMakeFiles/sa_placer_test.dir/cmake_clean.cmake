file(REMOVE_RECURSE
  "CMakeFiles/sa_placer_test.dir/sa_placer_test.cpp.o"
  "CMakeFiles/sa_placer_test.dir/sa_placer_test.cpp.o.d"
  "sa_placer_test"
  "sa_placer_test.pdb"
  "sa_placer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sa_placer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
