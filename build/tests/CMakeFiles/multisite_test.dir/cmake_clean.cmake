file(REMOVE_RECURSE
  "CMakeFiles/multisite_test.dir/multisite_test.cpp.o"
  "CMakeFiles/multisite_test.dir/multisite_test.cpp.o.d"
  "multisite_test"
  "multisite_test.pdb"
  "multisite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
