file(REMOVE_RECURSE
  "CMakeFiles/power_sched_test.dir/power_sched_test.cpp.o"
  "CMakeFiles/power_sched_test.dir/power_sched_test.cpp.o.d"
  "power_sched_test"
  "power_sched_test.pdb"
  "power_sched_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
