file(REMOVE_RECURSE
  "CMakeFiles/test_time_table_test.dir/test_time_table_test.cpp.o"
  "CMakeFiles/test_time_table_test.dir/test_time_table_test.cpp.o.d"
  "test_time_table_test"
  "test_time_table_test.pdb"
  "test_time_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
