# Empty compiler generated dependencies file for test_time_table_test.
# This may be replaced when dependencies are built.
