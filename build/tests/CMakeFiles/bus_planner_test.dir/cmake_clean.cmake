file(REMOVE_RECURSE
  "CMakeFiles/bus_planner_test.dir/bus_planner_test.cpp.o"
  "CMakeFiles/bus_planner_test.dir/bus_planner_test.cpp.o.d"
  "bus_planner_test"
  "bus_planner_test.pdb"
  "bus_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bus_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
