file(REMOVE_RECURSE
  "CMakeFiles/tam_problem_test.dir/tam_problem_test.cpp.o"
  "CMakeFiles/tam_problem_test.dir/tam_problem_test.cpp.o.d"
  "tam_problem_test"
  "tam_problem_test.pdb"
  "tam_problem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tam_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
