# Empty dependencies file for tam_problem_test.
# This may be replaced when dependencies are built.
