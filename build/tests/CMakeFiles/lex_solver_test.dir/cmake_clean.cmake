file(REMOVE_RECURSE
  "CMakeFiles/lex_solver_test.dir/lex_solver_test.cpp.o"
  "CMakeFiles/lex_solver_test.dir/lex_solver_test.cpp.o.d"
  "lex_solver_test"
  "lex_solver_test.pdb"
  "lex_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lex_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
