file(REMOVE_RECURSE
  "CMakeFiles/solver_matrix_test.dir/solver_matrix_test.cpp.o"
  "CMakeFiles/solver_matrix_test.dir/solver_matrix_test.cpp.o.d"
  "solver_matrix_test"
  "solver_matrix_test.pdb"
  "solver_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
