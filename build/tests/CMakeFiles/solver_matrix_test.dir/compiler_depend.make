# Empty compiler generated dependencies file for solver_matrix_test.
# This may be replaced when dependencies are built.
