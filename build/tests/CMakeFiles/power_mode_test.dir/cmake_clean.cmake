file(REMOVE_RECURSE
  "CMakeFiles/power_mode_test.dir/power_mode_test.cpp.o"
  "CMakeFiles/power_mode_test.dir/power_mode_test.cpp.o.d"
  "power_mode_test"
  "power_mode_test.pdb"
  "power_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
