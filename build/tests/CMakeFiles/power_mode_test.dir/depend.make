# Empty dependencies file for power_mode_test.
# This may be replaced when dependencies are built.
