file(REMOVE_RECURSE
  "CMakeFiles/width_dp_test.dir/width_dp_test.cpp.o"
  "CMakeFiles/width_dp_test.dir/width_dp_test.cpp.o.d"
  "width_dp_test"
  "width_dp_test.pdb"
  "width_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/width_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
