# Empty dependencies file for width_dp_test.
# This may be replaced when dependencies are built.
