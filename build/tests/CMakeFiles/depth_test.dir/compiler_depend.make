# Empty compiler generated dependencies file for depth_test.
# This may be replaced when dependencies are built.
