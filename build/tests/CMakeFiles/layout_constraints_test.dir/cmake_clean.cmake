file(REMOVE_RECURSE
  "CMakeFiles/layout_constraints_test.dir/layout_constraints_test.cpp.o"
  "CMakeFiles/layout_constraints_test.dir/layout_constraints_test.cpp.o.d"
  "layout_constraints_test"
  "layout_constraints_test.pdb"
  "layout_constraints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
