# Empty dependencies file for soctest_tool.
# This may be replaced when dependencies are built.
