file(REMOVE_RECURSE
  "CMakeFiles/soctest_tool.dir/soctest_cli.cpp.o"
  "CMakeFiles/soctest_tool.dir/soctest_cli.cpp.o.d"
  "soctest"
  "soctest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
