file(REMOVE_RECURSE
  "libsoctest_sched.a"
)
