# Empty compiler generated dependencies file for soctest_sched.
# This may be replaced when dependencies are built.
