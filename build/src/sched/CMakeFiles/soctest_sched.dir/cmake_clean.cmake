file(REMOVE_RECURSE
  "CMakeFiles/soctest_sched.dir/gantt.cpp.o"
  "CMakeFiles/soctest_sched.dir/gantt.cpp.o.d"
  "CMakeFiles/soctest_sched.dir/power_profile.cpp.o"
  "CMakeFiles/soctest_sched.dir/power_profile.cpp.o.d"
  "CMakeFiles/soctest_sched.dir/power_sched.cpp.o"
  "CMakeFiles/soctest_sched.dir/power_sched.cpp.o.d"
  "CMakeFiles/soctest_sched.dir/preemptive.cpp.o"
  "CMakeFiles/soctest_sched.dir/preemptive.cpp.o.d"
  "CMakeFiles/soctest_sched.dir/schedule.cpp.o"
  "CMakeFiles/soctest_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/soctest_sched.dir/sessions.cpp.o"
  "CMakeFiles/soctest_sched.dir/sessions.cpp.o.d"
  "libsoctest_sched.a"
  "libsoctest_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
