file(REMOVE_RECURSE
  "libsoctest_report.a"
)
