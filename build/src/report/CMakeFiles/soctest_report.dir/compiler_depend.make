# Empty compiler generated dependencies file for soctest_report.
# This may be replaced when dependencies are built.
