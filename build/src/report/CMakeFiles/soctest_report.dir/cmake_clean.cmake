file(REMOVE_RECURSE
  "CMakeFiles/soctest_report.dir/design_report.cpp.o"
  "CMakeFiles/soctest_report.dir/design_report.cpp.o.d"
  "CMakeFiles/soctest_report.dir/json.cpp.o"
  "CMakeFiles/soctest_report.dir/json.cpp.o.d"
  "CMakeFiles/soctest_report.dir/svg.cpp.o"
  "CMakeFiles/soctest_report.dir/svg.cpp.o.d"
  "libsoctest_report.a"
  "libsoctest_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
