file(REMOVE_RECURSE
  "CMakeFiles/soctest_common.dir/rng.cpp.o"
  "CMakeFiles/soctest_common.dir/rng.cpp.o.d"
  "CMakeFiles/soctest_common.dir/table.cpp.o"
  "CMakeFiles/soctest_common.dir/table.cpp.o.d"
  "CMakeFiles/soctest_common.dir/text.cpp.o"
  "CMakeFiles/soctest_common.dir/text.cpp.o.d"
  "libsoctest_common.a"
  "libsoctest_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
