# Empty dependencies file for soctest_common.
# This may be replaced when dependencies are built.
