file(REMOVE_RECURSE
  "libsoctest_common.a"
)
