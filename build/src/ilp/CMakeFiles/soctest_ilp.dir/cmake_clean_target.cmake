file(REMOVE_RECURSE
  "libsoctest_ilp.a"
)
