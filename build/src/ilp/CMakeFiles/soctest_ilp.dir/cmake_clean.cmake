file(REMOVE_RECURSE
  "CMakeFiles/soctest_ilp.dir/branch_and_bound.cpp.o"
  "CMakeFiles/soctest_ilp.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/soctest_ilp.dir/linear_program.cpp.o"
  "CMakeFiles/soctest_ilp.dir/linear_program.cpp.o.d"
  "CMakeFiles/soctest_ilp.dir/simplex.cpp.o"
  "CMakeFiles/soctest_ilp.dir/simplex.cpp.o.d"
  "libsoctest_ilp.a"
  "libsoctest_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
