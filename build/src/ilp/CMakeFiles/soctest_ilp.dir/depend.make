# Empty dependencies file for soctest_ilp.
# This may be replaced when dependencies are built.
