file(REMOVE_RECURSE
  "CMakeFiles/soctest_cli.dir/options.cpp.o"
  "CMakeFiles/soctest_cli.dir/options.cpp.o.d"
  "CMakeFiles/soctest_cli.dir/run.cpp.o"
  "CMakeFiles/soctest_cli.dir/run.cpp.o.d"
  "libsoctest_cli.a"
  "libsoctest_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
