file(REMOVE_RECURSE
  "libsoctest_cli.a"
)
