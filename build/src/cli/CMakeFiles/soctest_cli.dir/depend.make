# Empty dependencies file for soctest_cli.
# This may be replaced when dependencies are built.
