# Empty dependencies file for soctest_layout.
# This may be replaced when dependencies are built.
