
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/bus_planner.cpp" "src/layout/CMakeFiles/soctest_layout.dir/bus_planner.cpp.o" "gcc" "src/layout/CMakeFiles/soctest_layout.dir/bus_planner.cpp.o.d"
  "/root/repo/src/layout/constraints.cpp" "src/layout/CMakeFiles/soctest_layout.dir/constraints.cpp.o" "gcc" "src/layout/CMakeFiles/soctest_layout.dir/constraints.cpp.o.d"
  "/root/repo/src/layout/grid.cpp" "src/layout/CMakeFiles/soctest_layout.dir/grid.cpp.o" "gcc" "src/layout/CMakeFiles/soctest_layout.dir/grid.cpp.o.d"
  "/root/repo/src/layout/router.cpp" "src/layout/CMakeFiles/soctest_layout.dir/router.cpp.o" "gcc" "src/layout/CMakeFiles/soctest_layout.dir/router.cpp.o.d"
  "/root/repo/src/layout/sa_placer.cpp" "src/layout/CMakeFiles/soctest_layout.dir/sa_placer.cpp.o" "gcc" "src/layout/CMakeFiles/soctest_layout.dir/sa_placer.cpp.o.d"
  "/root/repo/src/layout/stub_router.cpp" "src/layout/CMakeFiles/soctest_layout.dir/stub_router.cpp.o" "gcc" "src/layout/CMakeFiles/soctest_layout.dir/stub_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/soctest_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/soctest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
