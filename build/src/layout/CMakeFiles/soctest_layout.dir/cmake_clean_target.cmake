file(REMOVE_RECURSE
  "libsoctest_layout.a"
)
