file(REMOVE_RECURSE
  "CMakeFiles/soctest_layout.dir/bus_planner.cpp.o"
  "CMakeFiles/soctest_layout.dir/bus_planner.cpp.o.d"
  "CMakeFiles/soctest_layout.dir/constraints.cpp.o"
  "CMakeFiles/soctest_layout.dir/constraints.cpp.o.d"
  "CMakeFiles/soctest_layout.dir/grid.cpp.o"
  "CMakeFiles/soctest_layout.dir/grid.cpp.o.d"
  "CMakeFiles/soctest_layout.dir/router.cpp.o"
  "CMakeFiles/soctest_layout.dir/router.cpp.o.d"
  "CMakeFiles/soctest_layout.dir/sa_placer.cpp.o"
  "CMakeFiles/soctest_layout.dir/sa_placer.cpp.o.d"
  "CMakeFiles/soctest_layout.dir/stub_router.cpp.o"
  "CMakeFiles/soctest_layout.dir/stub_router.cpp.o.d"
  "libsoctest_layout.a"
  "libsoctest_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
