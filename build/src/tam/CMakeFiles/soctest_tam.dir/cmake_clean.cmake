file(REMOVE_RECURSE
  "CMakeFiles/soctest_tam.dir/architect.cpp.o"
  "CMakeFiles/soctest_tam.dir/architect.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/daisychain.cpp.o"
  "CMakeFiles/soctest_tam.dir/daisychain.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/exact_solver.cpp.o"
  "CMakeFiles/soctest_tam.dir/exact_solver.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/heuristics.cpp.o"
  "CMakeFiles/soctest_tam.dir/heuristics.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/ilp_solver.cpp.o"
  "CMakeFiles/soctest_tam.dir/ilp_solver.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/multisite.cpp.o"
  "CMakeFiles/soctest_tam.dir/multisite.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/power.cpp.o"
  "CMakeFiles/soctest_tam.dir/power.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/tam_problem.cpp.o"
  "CMakeFiles/soctest_tam.dir/tam_problem.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/timing.cpp.o"
  "CMakeFiles/soctest_tam.dir/timing.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/width_dp.cpp.o"
  "CMakeFiles/soctest_tam.dir/width_dp.cpp.o.d"
  "CMakeFiles/soctest_tam.dir/width_partition.cpp.o"
  "CMakeFiles/soctest_tam.dir/width_partition.cpp.o.d"
  "libsoctest_tam.a"
  "libsoctest_tam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_tam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
