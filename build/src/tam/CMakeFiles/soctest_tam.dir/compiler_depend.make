# Empty compiler generated dependencies file for soctest_tam.
# This may be replaced when dependencies are built.
