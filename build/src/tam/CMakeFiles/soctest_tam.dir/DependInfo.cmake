
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tam/architect.cpp" "src/tam/CMakeFiles/soctest_tam.dir/architect.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/architect.cpp.o.d"
  "/root/repo/src/tam/daisychain.cpp" "src/tam/CMakeFiles/soctest_tam.dir/daisychain.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/daisychain.cpp.o.d"
  "/root/repo/src/tam/exact_solver.cpp" "src/tam/CMakeFiles/soctest_tam.dir/exact_solver.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/exact_solver.cpp.o.d"
  "/root/repo/src/tam/heuristics.cpp" "src/tam/CMakeFiles/soctest_tam.dir/heuristics.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/heuristics.cpp.o.d"
  "/root/repo/src/tam/ilp_solver.cpp" "src/tam/CMakeFiles/soctest_tam.dir/ilp_solver.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/ilp_solver.cpp.o.d"
  "/root/repo/src/tam/multisite.cpp" "src/tam/CMakeFiles/soctest_tam.dir/multisite.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/multisite.cpp.o.d"
  "/root/repo/src/tam/power.cpp" "src/tam/CMakeFiles/soctest_tam.dir/power.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/power.cpp.o.d"
  "/root/repo/src/tam/tam_problem.cpp" "src/tam/CMakeFiles/soctest_tam.dir/tam_problem.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/tam_problem.cpp.o.d"
  "/root/repo/src/tam/timing.cpp" "src/tam/CMakeFiles/soctest_tam.dir/timing.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/timing.cpp.o.d"
  "/root/repo/src/tam/width_dp.cpp" "src/tam/CMakeFiles/soctest_tam.dir/width_dp.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/width_dp.cpp.o.d"
  "/root/repo/src/tam/width_partition.cpp" "src/tam/CMakeFiles/soctest_tam.dir/width_partition.cpp.o" "gcc" "src/tam/CMakeFiles/soctest_tam.dir/width_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wrapper/CMakeFiles/soctest_wrapper.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/soctest_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/soctest_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/soc/CMakeFiles/soctest_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/soctest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
