file(REMOVE_RECURSE
  "libsoctest_tam.a"
)
