# Empty dependencies file for soctest_wrapper.
# This may be replaced when dependencies are built.
