
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wrapper/test_time_table.cpp" "src/wrapper/CMakeFiles/soctest_wrapper.dir/test_time_table.cpp.o" "gcc" "src/wrapper/CMakeFiles/soctest_wrapper.dir/test_time_table.cpp.o.d"
  "/root/repo/src/wrapper/wrapper.cpp" "src/wrapper/CMakeFiles/soctest_wrapper.dir/wrapper.cpp.o" "gcc" "src/wrapper/CMakeFiles/soctest_wrapper.dir/wrapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/soc/CMakeFiles/soctest_soc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/soctest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
