file(REMOVE_RECURSE
  "CMakeFiles/soctest_wrapper.dir/test_time_table.cpp.o"
  "CMakeFiles/soctest_wrapper.dir/test_time_table.cpp.o.d"
  "CMakeFiles/soctest_wrapper.dir/wrapper.cpp.o"
  "CMakeFiles/soctest_wrapper.dir/wrapper.cpp.o.d"
  "libsoctest_wrapper.a"
  "libsoctest_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
