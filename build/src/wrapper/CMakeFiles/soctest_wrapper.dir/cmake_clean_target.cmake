file(REMOVE_RECURSE
  "libsoctest_wrapper.a"
)
