# Empty dependencies file for soctest_soc.
# This may be replaced when dependencies are built.
