
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/soc/builtin.cpp" "src/soc/CMakeFiles/soctest_soc.dir/builtin.cpp.o" "gcc" "src/soc/CMakeFiles/soctest_soc.dir/builtin.cpp.o.d"
  "/root/repo/src/soc/core.cpp" "src/soc/CMakeFiles/soctest_soc.dir/core.cpp.o" "gcc" "src/soc/CMakeFiles/soctest_soc.dir/core.cpp.o.d"
  "/root/repo/src/soc/generator.cpp" "src/soc/CMakeFiles/soctest_soc.dir/generator.cpp.o" "gcc" "src/soc/CMakeFiles/soctest_soc.dir/generator.cpp.o.d"
  "/root/repo/src/soc/soc.cpp" "src/soc/CMakeFiles/soctest_soc.dir/soc.cpp.o" "gcc" "src/soc/CMakeFiles/soctest_soc.dir/soc.cpp.o.d"
  "/root/repo/src/soc/soc_format.cpp" "src/soc/CMakeFiles/soctest_soc.dir/soc_format.cpp.o" "gcc" "src/soc/CMakeFiles/soctest_soc.dir/soc_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/soctest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
