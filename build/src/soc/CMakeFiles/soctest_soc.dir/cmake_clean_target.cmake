file(REMOVE_RECURSE
  "libsoctest_soc.a"
)
