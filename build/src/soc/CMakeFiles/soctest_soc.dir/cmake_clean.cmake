file(REMOVE_RECURSE
  "CMakeFiles/soctest_soc.dir/builtin.cpp.o"
  "CMakeFiles/soctest_soc.dir/builtin.cpp.o.d"
  "CMakeFiles/soctest_soc.dir/core.cpp.o"
  "CMakeFiles/soctest_soc.dir/core.cpp.o.d"
  "CMakeFiles/soctest_soc.dir/generator.cpp.o"
  "CMakeFiles/soctest_soc.dir/generator.cpp.o.d"
  "CMakeFiles/soctest_soc.dir/soc.cpp.o"
  "CMakeFiles/soctest_soc.dir/soc.cpp.o.d"
  "CMakeFiles/soctest_soc.dir/soc_format.cpp.o"
  "CMakeFiles/soctest_soc.dir/soc_format.cpp.o.d"
  "libsoctest_soc.a"
  "libsoctest_soc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soctest_soc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
