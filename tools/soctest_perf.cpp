// soctest-perf: cross-run performance toolkit over the observability
// pipeline's artifacts (metrics JSON, bench JSON, the run ledger) plus a
// noise-aware regression gate against checked-in baselines.
//
//   $ soctest-perf diff old_metrics.json new_metrics.json
//   $ soctest-perf report soctest.ledger.jsonl
//   $ soctest-perf gate --baseline bench/baselines/quick_gate.json
//   $ soctest-perf gate --baseline ... --update     # re-baseline on purpose
//
// `gate` runs a small pinned suite of fixed-seed serial solves (the quick
// bench), takes the median of K repeats, and compares wall times with a
// relative tolerance plus an absolute-ms floor so scheduler noise on tiny
// cases cannot fail the build; deterministic counters (B&B nodes, simplex
// pivots, SA moves) are gated exactly — any drift means an algorithm
// change that must be re-baselined deliberately. Wired into ctest as the
// `perf` label via scripts/check_perf.sh (see docs/benchmarks.md).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

#include "common/table.hpp"
#include "obs/obs.hpp"
#include "pack/skyline.hpp"
#include "report/json.hpp"
#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "tam/architect.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/timing.hpp"

using namespace soctest;

namespace {

constexpr const char* kUsage = R"(usage: soctest-perf <command> [args]

commands:
  diff OLD.json NEW.json    per-metric delta table between two metrics/trace
                            JSON objects or two bench JSON arrays
                            (BENCH_solvers.json style)
  report LEDGER.jsonl...    fold one or more run ledgers into per-soc x
                            solver cells (runs, wall-ms percentiles, optimal
                            share); skipped lines are reported per file, with
                            a torn final line (interrupted append) called out
                            explicitly
  gate [options]            run the pinned quick-bench suite and compare it
                            against a checked-in baseline
  trace-merge PATH...       join soctest-trace-v1 shards (files, or
                            directories scanned for *.trace.json) into one
                            Chrome-trace timeline: each shard's events are
                            rebased onto the shared realtime axis via its
                            clock anchor, grouped into one process row per
                            trace_id, and cross-process parent links
                            (span_guid/parent_guid) are checked; prints
                            "trace-merge: shards=N events=E traces=T
                            dangling_parents=D" (docs/observability.md)

trace-merge options:
  --out FILE                write the merged Chrome trace to FILE (default:
                            stdout, with the summary on stderr); output is
                            byte-identical across reruns of the same shards

gate options:
  --baseline FILE           baseline JSON (default bench/baselines/quick_gate.json)
  --repeats K               median-of-K wall-time repeats (default 5)
  --rel-tol F               relative slowdown tolerance (default 1.5 =
                            fail beyond 2.5x baseline)
  --floor-ms MS             ignore absolute regressions below MS (default 25)
  --update                  write the fresh measurement to --baseline and exit
  --counters-only           skip wall-time gating (sanitizer builds); also
                            enabled by SOCTEST_PERF_COUNTERS_ONLY=1
  --inject-slowdown-ms MS   add MS of sleep to every measured repeat (negative
                            testing of the gate itself)

exit codes: 0 ok, 1 regression or comparison failure, 2 usage, 3 input error.
)";

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return {};
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *ok = true;
  return buffer.str();
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Flattens a metrics/trace object or a bench array into name -> value.
/// Metrics objects contribute "counters.<name>" and histogram count/sum;
/// bench arrays contribute "<bench>/<cell>/<field>" for numeric fields.
std::map<std::string, double> flatten_metrics(const JsonValue& doc,
                                              std::string* error) {
  std::map<std::string, double> out;
  if (doc.is_object()) {
    const JsonValue* counters = doc.find("counters");
    if (counters == nullptr || !counters->is_object()) {
      *error = "object has no \"counters\" member (not a metrics/trace file)";
      return out;
    }
    for (const auto& [name, value] : counters->members) {
      if (value.is_number()) out["counters." + name] = value.number;
    }
    const JsonValue* histograms = doc.find("histograms");
    if (histograms != nullptr && histograms->is_object()) {
      for (const auto& [name, h] : histograms->members) {
        out["histograms." + name + ".count"] = h.number_or("count", 0.0);
        out["histograms." + name + ".sum"] = h.number_or("sum", 0.0);
      }
    }
    return out;
  }
  if (doc.is_array()) {
    for (std::size_t i = 0; i < doc.items.size(); ++i) {
      const JsonValue& record = doc.items[i];
      if (!record.is_object()) continue;
      std::string prefix = record.string_or("bench", "row" + std::to_string(i));
      const std::string cell = record.string_or("cell", "");
      if (!cell.empty()) prefix += "/" + cell;
      for (const auto& [name, value] : record.members) {
        if (name == "bench" || name == "cell") continue;
        if (value.is_number()) out[prefix + "/" + name] = value.number;
      }
    }
    return out;
  }
  *error = "expected a JSON object (metrics) or array (bench rows)";
  return out;
}

int cmd_diff(const std::string& old_path, const std::string& new_path) {
  int exit_code = 0;
  std::map<std::string, double> sides[2];
  const std::string* paths[2] = {&old_path, &new_path};
  for (int s = 0; s < 2; ++s) {
    bool ok = false;
    const std::string text = read_file(*paths[s], &ok);
    if (!ok) {
      std::fprintf(stderr, "soctest-perf: cannot read %s\n", paths[s]->c_str());
      return 3;
    }
    std::string error;
    const auto doc = parse_json(text, &error);
    if (!doc) {
      std::fprintf(stderr, "soctest-perf: %s: %s\n", paths[s]->c_str(),
                   error.c_str());
      return 3;
    }
    sides[s] = flatten_metrics(*doc, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "soctest-perf: %s: %s\n", paths[s]->c_str(),
                   error.c_str());
      return 3;
    }
  }

  // One pass over the union; std::map keeps the rows name-sorted, which is
  // the deterministic order the golden tests pin.
  std::map<std::string, std::pair<const double*, const double*>> merged;
  for (const auto& [name, value] : sides[0]) merged[name].first = &value;
  for (const auto& [name, value] : sides[1]) merged[name].second = &value;

  Table table({"metric", "old", "new", "delta", "delta_%"});
  long long changed = 0, added = 0, removed = 0;
  for (const auto& [name, pair] : merged) {
    const auto [old_value, new_value] = pair;
    if (old_value == nullptr) ++added;
    if (new_value == nullptr) ++removed;
    if (old_value != nullptr && new_value != nullptr &&
        *old_value == *new_value) {
      continue;  // unchanged rows stay out of the table
    }
    ++changed;
    table.row().add(name);
    if (old_value != nullptr) {
      table.add(*old_value, -1);
    } else {
      table.add(std::string("-"));
    }
    if (new_value != nullptr) {
      table.add(*new_value, -1);
    } else {
      table.add(std::string("-"));
    }
    if (old_value != nullptr && new_value != nullptr) {
      const double delta = *new_value - *old_value;
      table.add(delta, -1);
      if (*old_value != 0.0) {
        table.add(100.0 * delta / *old_value, 1);
      } else {
        table.add(std::string("-"));
      }
    } else {
      table.add(std::string(old_value == nullptr ? "added" : "removed"));
      table.add(std::string("-"));
    }
  }
  if (changed == 0) {
    std::printf("no metric differences (%zu metrics compared)\n",
                merged.size());
    return exit_code;
  }
  std::printf("%s", table.to_ascii().c_str());
  std::printf("%lld changed (%lld added, %lld removed) of %zu metrics\n",
              changed, added, removed, merged.size());
  return exit_code;
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(q * static_cast<double>(values.size()));
  const std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return values[std::min(idx, values.size() - 1)];
}

int cmd_report(const std::vector<std::string>& ledger_paths) {
  struct CellStats {
    long long runs = 0;
    long long optimal = 0;
    std::vector<double> wall_ms;
    std::vector<double> gaps;
  };
  std::map<std::pair<std::string, std::string>, CellStats> cells;
  for (const std::string& ledger_path : ledger_paths) {
    std::ifstream in(ledger_path);
    if (!in) {
      std::fprintf(stderr, "soctest-perf: cannot read %s\n",
                   ledger_path.c_str());
      return 3;
    }
    std::string line;
    long long lines = 0, skipped = 0;
    bool last_line_torn = false;
    while (std::getline(in, line)) {
      ++lines;
      if (line.empty()) continue;
      const auto record = parse_json(line);
      last_line_torn = !record.has_value();
      if (!record || !record->is_object() ||
          record->string_or("schema", "") != "soctest-ledger-v1") {
        ++skipped;
        continue;
      }
      // Frontdoor admission rejections share the ledger schema but carry no
      // solve; they are not runs and must not dilute the wall-time cells.
      if (record->string_or("kind", "") == "rejected") continue;
      CellStats& cell = cells[{record->string_or("soc", "?"),
                               record->string_or("solver", "?")}];
      ++cell.runs;
      cell.wall_ms.push_back(record->number_or("wall_ms", 0.0));
      if (record->string_or("status", "") == "optimal") ++cell.optimal;
      const double gap = record->number_or("gap", -1.0);
      if (gap >= 0.0) cell.gaps.push_back(gap);
    }
    // Per-file accounting: a torn final line is the crash-safe append
    // contract working as intended (a writer died mid-record), so it gets
    // an explicit note rather than being silently dropped; anything torn
    // or foreign earlier in the file is worth a warning.
    const long long torn_tail = last_line_torn ? 1 : 0;
    if (torn_tail != 0) {
      std::fprintf(stderr,
                   "soctest-perf: %s: dropped torn final line (interrupted "
                   "append); %lld of %lld line(s) skipped\n",
                   ledger_path.c_str(), skipped, lines);
    }
    if (skipped - torn_tail > 0) {
      std::fprintf(stderr,
                   "soctest-perf: warning: %s: skipped %lld malformed or "
                   "foreign line(s) of %lld\n",
                   ledger_path.c_str(), skipped - torn_tail, lines);
    }
  }
  if (cells.empty()) {
    std::string joined;
    for (const std::string& path : ledger_paths) {
      if (!joined.empty()) joined += ", ";
      joined += path;
    }
    std::fprintf(stderr, "soctest-perf: %s: no soctest-ledger-v1 records\n",
                 joined.c_str());
    return 3;
  }
  Table table({"soc", "solver", "runs", "ms_min", "ms_p50", "ms_p95", "ms_max",
               "optimal", "gap_mean"});
  for (const auto& [key, cell] : cells) {
    double gap_sum = 0.0;
    for (double g : cell.gaps) gap_sum += g;
    table.row()
        .add(key.first)
        .add(key.second)
        .add(cell.runs)
        .add(percentile(cell.wall_ms, 0.0), 3)
        .add(percentile(cell.wall_ms, 0.50), 3)
        .add(percentile(cell.wall_ms, 0.95), 3)
        .add(percentile(cell.wall_ms, 1.0), 3)
        .add(cell.optimal)
        .add(cell.gaps.empty() ? 0.0
                               : gap_sum / static_cast<double>(cell.gaps.size()),
             4);
  }
  std::string joined;
  for (const std::string& path : ledger_paths) {
    if (!joined.empty()) joined += ", ";
    joined += path;
  }
  std::printf("ledger report: %s\n%s", joined.c_str(),
              table.to_ascii().c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// trace-merge
// ---------------------------------------------------------------------------

/// One parsed soctest-trace-v1 shard. `unix_us` is the shard's clock
/// anchor: the realtime microsecond at which its monotonic event
/// timestamps read 0 (0.0 under the fake test clock).
struct TraceShard {
  std::string path;
  std::string role;
  long long pid = 0;
  double unix_us = 0.0;
  JsonValue doc;
};

/// One span from a shard, flattened for merging. `trace_id` is taken from
/// the event's args or inherited from its in-shard parent chain, so solver
/// child spans ride along with the service.request span that owns them.
struct MergedEvent {
  std::size_t shard = 0;
  long long id = 0;
  long long parent = 0;  ///< in-shard parent span id (0 = root)
  bool span = true;
  std::string name;
  long long thread = 0;
  double abs_us = 0.0;  ///< anchor-rebased start (realtime axis)
  double dur_us = 0.0;
  std::string trace_id;
  std::string parent_guid;
  const JsonValue* args = nullptr;
};

/// Re-emits a parsed JSON value verbatim-in-structure (shard args are flat
/// objects of strings/numbers/bools, but recursion costs nothing).
void write_json_value(JsonWriter& w, const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      w.null();
      break;
    case JsonValue::Kind::kBool:
      w.value(v.boolean);
      break;
    case JsonValue::Kind::kNumber:
      if (v.number == static_cast<double>(static_cast<long long>(v.number))) {
        w.value(static_cast<long long>(v.number));
      } else {
        w.value(v.number);
      }
      break;
    case JsonValue::Kind::kString:
      w.value(v.text);
      break;
    case JsonValue::Kind::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items) write_json_value(w, item);
      w.end_array();
      break;
    case JsonValue::Kind::kObject:
      w.begin_object();
      for (const auto& [name, member] : v.members) {
        w.key(name);
        write_json_value(w, member);
      }
      w.end_object();
      break;
  }
}

/// Expands each path into shard files: a directory contributes every
/// *.trace.json inside it (name-sorted — readdir order is not
/// deterministic), a plain file contributes itself.
std::vector<std::string> expand_shard_paths(
    const std::vector<std::string>& paths) {
  std::vector<std::string> out;
  for (const std::string& path : paths) {
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      std::vector<std::string> found;
      if (DIR* dir = ::opendir(path.c_str())) {
        while (const dirent* entry = ::readdir(dir)) {
          const std::string name = entry->d_name;
          const std::string suffix = ".trace.json";
          if (name.size() > suffix.size() &&
              name.compare(name.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
            found.push_back(path + "/" + name);
          }
        }
        ::closedir(dir);
      }
      std::sort(found.begin(), found.end());
      out.insert(out.end(), found.begin(), found.end());
    } else {
      out.push_back(path);
    }
  }
  return out;
}

int cmd_trace_merge(const std::vector<std::string>& args) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "soctest-perf: --out requires a value\n");
        return 2;
      }
      out_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  const std::vector<std::string> shard_paths = expand_shard_paths(inputs);
  if (shard_paths.empty()) {
    std::fprintf(stderr, "soctest-perf: trace-merge: no shard files\n%s",
                 kUsage);
    return 2;
  }

  std::vector<TraceShard> shards;
  for (const std::string& path : shard_paths) {
    bool ok = false;
    const std::string text = read_file(path, &ok);
    if (!ok) {
      std::fprintf(stderr, "soctest-perf: cannot read %s\n", path.c_str());
      return 3;
    }
    std::string error;
    auto doc = parse_json(text, &error);
    if (!doc || !doc->is_object() ||
        doc->string_or("schema", "") != "soctest-trace-v1") {
      std::fprintf(stderr, "soctest-perf: %s is not a soctest-trace-v1 file%s%s\n",
                   path.c_str(), error.empty() ? "" : ": ", error.c_str());
      return 3;
    }
    TraceShard shard;
    shard.path = path;
    if (const JsonValue* anchor = doc->find("anchor");
        anchor != nullptr && anchor->is_object()) {
      shard.role = anchor->string_or("role", "");
      shard.pid = static_cast<long long>(anchor->number_or("pid", 0.0));
      shard.unix_us = anchor->number_or("unix_us", 0.0);
    }
    shard.doc = std::move(*doc);
    shards.push_back(std::move(shard));
  }
  // Shard order must not depend on argv order for the byte-identical
  // contract; (role, pid, path) is a total order over real fleets.
  std::sort(shards.begin(), shards.end(),
            [](const TraceShard& a, const TraceShard& b) {
              return std::tie(a.role, a.pid, a.path) <
                     std::tie(b.role, b.pid, b.path);
            });

  std::vector<MergedEvent> events;
  std::map<std::string, int> span_guids;  // guid -> count across all shards
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JsonValue* shard_events = shards[s].doc.find("events");
    if (shard_events == nullptr || !shard_events->is_array()) continue;
    std::vector<MergedEvent> local;
    for (const JsonValue& e : shard_events->items) {
      if (!e.is_object()) continue;
      MergedEvent m;
      m.shard = s;
      m.id = static_cast<long long>(e.number_or("id", 0.0));
      m.parent = static_cast<long long>(e.number_or("parent", 0.0));
      m.span = e.string_or("kind", "span") == "span";
      m.name = e.string_or("name", "");
      m.thread = static_cast<long long>(e.number_or("thread", 0.0));
      m.abs_us = shards[s].unix_us + e.number_or("ts_us", 0.0);
      m.dur_us = e.number_or("dur_us", 0.0);
      m.args = e.find("args");
      if (m.args != nullptr && m.args->is_object()) {
        m.trace_id = m.args->string_or("trace_id", "");
        m.parent_guid = m.args->string_or("parent_guid", "");
        const std::string guid = m.args->string_or("span_guid", "");
        if (!guid.empty()) ++span_guids[guid];
      }
      local.push_back(std::move(m));
    }
    // In-shard trace inheritance: a span opens after its parent, so parent
    // ids are smaller and one id-ordered pass settles the whole chain.
    std::sort(local.begin(), local.end(),
              [](const MergedEvent& a, const MergedEvent& b) {
                return a.id < b.id;
              });
    std::map<long long, std::string> trace_of;  // local span id -> trace_id
    for (MergedEvent& m : local) {
      if (m.trace_id.empty()) {
        const auto it = trace_of.find(m.parent);
        if (it != trace_of.end()) m.trace_id = it->second;
      }
      if (!m.trace_id.empty()) trace_of[m.id] = m.trace_id;
    }
    events.insert(events.end(), local.begin(), local.end());
  }

  long long dangling = 0;
  for (const MergedEvent& m : events) {
    if (!m.parent_guid.empty() && span_guids.find(m.parent_guid) == span_guids.end()) {
      ++dangling;
    }
  }

  // Traced events only: the merge is the per-trace waterfall, untraced
  // background spans stay in their per-process shards.
  std::vector<const MergedEvent*> traced;
  std::map<std::string, long long> trace_pid;  // trace_id -> chrome pid
  for (const MergedEvent& m : events) {
    if (!m.trace_id.empty()) {
      traced.push_back(&m);
      trace_pid.emplace(m.trace_id, 0);
    }
  }
  long long next_pid = 1;
  for (auto& [trace_id, pid] : trace_pid) pid = next_pid++;
  std::sort(traced.begin(), traced.end(),
            [&](const MergedEvent* a, const MergedEvent* b) {
              return std::tie(trace_pid.at(a->trace_id), a->abs_us, a->shard,
                              a->id) < std::tie(trace_pid.at(b->trace_id),
                                                b->abs_us, b->shard, b->id);
            });

  // Rebase to the earliest traced event so Chrome's timeline starts near 0
  // instead of at a raw unix microsecond.
  double t0 = 0.0;
  if (!traced.empty()) {
    t0 = traced.front()->abs_us;
    for (const MergedEvent* m : traced) t0 = std::min(t0, m->abs_us);
  }

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const auto& [trace_id, pid] : trace_pid) {
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(pid);
    w.key("tid").value(0);
    w.key("args").begin_object();
    w.key("name").value("trace " + trace_id);
    w.end_object();
    w.end_object();
  }
  // One thread row per (trace, shard) pair in use, labeled by fleet role.
  std::map<std::pair<long long, long long>, std::string> thread_names;
  for (const MergedEvent* m : traced) {
    const TraceShard& shard = shards[m->shard];
    thread_names.emplace(
        std::make_pair(trace_pid.at(m->trace_id),
                       static_cast<long long>(m->shard) + 1),
        shard.role + "-" + std::to_string(shard.pid));
  }
  for (const auto& [key, name] : thread_names) {
    w.begin_object();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(key.first);
    w.key("tid").value(key.second);
    w.key("args").begin_object();
    w.key("name").value(name);
    w.end_object();
    w.end_object();
  }
  for (const MergedEvent* m : traced) {
    w.begin_object();
    w.key("name").value(m->name);
    w.key("cat").value(shards[m->shard].role);
    w.key("ph").value(m->span ? "X" : "i");
    w.key("pid").value(trace_pid.at(m->trace_id));
    w.key("tid").value(static_cast<long long>(m->shard) + 1);
    w.key("ts").value(m->abs_us - t0);
    if (m->span) w.key("dur").value(m->dur_us);
    if (m->args != nullptr) {
      w.key("args");
      write_json_value(w, *m->args);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();

  const std::string summary =
      "trace-merge: shards=" + std::to_string(shards.size()) +
      " events=" + std::to_string(traced.size()) +
      " traces=" + std::to_string(trace_pid.size()) +
      " dangling_parents=" + std::to_string(dangling) + "\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "soctest-perf: cannot write %s\n", out_path.c_str());
      return 3;
    }
    out << w.str() << "\n";
    std::fputs(summary.c_str(), stdout);
  } else {
    std::printf("%s\n", w.str().c_str());
    std::fputs(summary.c_str(), stderr);
  }
  return dangling == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// gate
// ---------------------------------------------------------------------------

/// One pinned quick-bench case: a fixed-seed serial workload plus the
/// deterministic counters it pins. Serial solves keep counters exactly
/// reproducible across machines and build types; wall time is what the
/// noise-aware comparison is for.
struct GateCase {
  std::string name;
  std::vector<std::string> counters;  ///< gated exactly
  std::function<void()> run;
};

TamProblem gate_problem(int n, std::vector<int> widths) {
  Rng rng(static_cast<std::uint64_t>(n) * 7919);
  SocGeneratorOptions gen;
  gen.num_cores = n;
  gen.place = false;
  const Soc soc = generate_soc(gen, rng);
  const TestTimeTable& table = cached_test_time_table(
      soc, *std::max_element(widths.begin(), widths.end()));
  return make_tam_problem(soc, table, widths);
}

std::vector<GateCase> gate_suite() {
  std::vector<GateCase> suite;
  suite.push_back({"exact_n12",
                   {"tam.exact.nodes", "tam.exact.pruned_bound",
                    "tam.exact.pruned_lagrangian"},
                   [] { solve_exact(gate_problem(12, {16, 8, 8})); }});
  suite.push_back({"exact_n16",
                   {"tam.exact.nodes", "tam.exact.pruned_bound",
                    "tam.exact.pruned_lagrangian"},
                   [] { solve_exact(gate_problem(16, {16, 8, 8})); }});
  // The sizes the ISSUE's >=5x node-throughput criterion is measured on:
  // big enough that the search kernel, not setup, dominates.
  suite.push_back({"exact_n22",
                   {"tam.exact.nodes", "tam.exact.pruned_bound",
                    "tam.exact.pruned_lagrangian"},
                   [] { solve_exact(gate_problem(22, {16, 8, 8})); }});
  suite.push_back({"exact_n26",
                   {"tam.exact.nodes", "tam.exact.pruned_bound",
                    "tam.exact.pruned_lagrangian"},
                   [] { solve_exact(gate_problem(26, {16, 8, 8})); }});
  suite.push_back({"ilp_n8",
                   {"ilp.bb.nodes", "ilp.simplex.pivots",
                    "ilp.bb.bound.cache_hits", "ilp.bb.bound.reused",
                    "ilp.bb.bound.tightened"},
                   [] {
                     MipOptions mip;
                     mip.max_nodes = 50000;
                     solve_ilp(gate_problem(8, {16, 8, 8}), mip);
                   }});
  suite.push_back({"sa_n20",
                   {"tam.sa.moves"},
                   [] { solve_sa(gate_problem(20, {16, 8, 8})); }});
  suite.push_back({"greedy_n32",
                   {},
                   [] { solve_greedy_lpt(gate_problem(32, {16, 8, 8})); }});
  // The rectangle-packing formulation's heuristic (skyline base pass + SA
  // repair): fully serial and fixed-seed, so its counters pin exactly.
  suite.push_back({"pack_skyline_n20",
                   {"pack.skyline.placed", "pack.skyline.raised",
                    "pack.sa.moves", "pack.sa.accepted"},
                   [] {
                     Rng rng(20 * 7919);
                     SocGeneratorOptions gen;
                     gen.num_cores = 20;
                     gen.place = false;
                     const Soc soc = generate_soc(gen, rng);
                     const PackProblem problem = make_pack_problem(
                         soc, cached_test_time_table(soc, 24), 24);
                     solve_pack(problem);
                   }});
  // The rectangle-packing-style width-partition search (Chakrabarty DAC
  // 2000) over a builtin SOC: exercises enumeration + exact inner solves.
  suite.push_back({"width_search_soc1",
                   {"tam.exact.nodes", "tam.exact.staircase.builds",
                    "tam.exact.staircase.cells"},
                   [] {
                     DesignRequest request;
                     request.num_buses = 2;
                     request.total_width = 24;
                     request.solver = InnerSolver::kExact;
                     design_architecture(builtin_soc1(), request);
                   }});
  return suite;
}

struct GateMeasurement {
  double wall_ms = 0.0;  ///< median of repeats
  std::vector<std::pair<std::string, long long>> counters;
};

GateMeasurement measure(const GateCase& gate_case, int repeats,
                        double inject_slowdown_ms) {
  GateMeasurement m;
  std::vector<double> wall;
  wall.reserve(static_cast<std::size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    // One counters-only session per repeat: entry resets the registry, so
    // the post-run snapshot belongs to this repeat alone.
    obs::TraceSession session(nullptr);
    const auto start = std::chrono::steady_clock::now();
    gate_case.run();
    if (inject_slowdown_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(inject_slowdown_ms));
    }
    wall.push_back(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count());
    if (r + 1 == repeats) {
      const auto values = obs::counter_values();
      for (const std::string& name : gate_case.counters) {
        long long value = 0;
        for (const auto& c : values) {
          if (c.name == name) {
            value = c.value;
            break;
          }
        }
        m.counters.emplace_back(name, value);
      }
    }
  }
  std::sort(wall.begin(), wall.end());
  m.wall_ms = wall[wall.size() / 2];
  return m;
}

std::string baseline_json(
    const std::vector<std::pair<std::string, GateMeasurement>>& measurements) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("soctest-perf-baseline-v1");
  w.key("cases").begin_object();
  for (const auto& [name, m] : measurements) {
    w.key(name).begin_object();
    w.key("wall_ms").value(m.wall_ms);
    w.key("counters").begin_object();
    for (const auto& [counter, value] : m.counters) {
      w.key(counter).value(value);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

int cmd_gate(const std::vector<std::string>& args) {
  std::string baseline_path = "bench/baselines/quick_gate.json";
  int repeats = 5;
  double rel_tol = 1.5;
  double floor_ms = 25.0;
  bool update = false;
  bool counters_only = false;
  double inject_slowdown_ms = 0.0;
  if (const char* env = std::getenv("SOCTEST_PERF_COUNTERS_ONLY")) {
    counters_only = std::string(env) != "0";
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "soctest-perf: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return args[++i];
    };
    if (arg == "--baseline") {
      baseline_path = value();
    } else if (arg == "--repeats") {
      repeats = std::max(1, std::atoi(value().c_str()));
    } else if (arg == "--rel-tol") {
      rel_tol = std::atof(value().c_str());
    } else if (arg == "--floor-ms") {
      floor_ms = std::atof(value().c_str());
    } else if (arg == "--update") {
      update = true;
    } else if (arg == "--counters-only") {
      counters_only = true;
    } else if (arg == "--inject-slowdown-ms") {
      inject_slowdown_ms = std::atof(value().c_str());
    } else {
      std::fprintf(stderr, "soctest-perf: unknown gate option %s\n%s",
                   arg.c_str(), kUsage);
      return 2;
    }
  }

  std::vector<std::pair<std::string, GateMeasurement>> measurements;
  for (const GateCase& gate_case : gate_suite()) {
    measurements.emplace_back(gate_case.name,
                              measure(gate_case, repeats, inject_slowdown_ms));
  }

  if (update) {
    std::ofstream out(baseline_path);
    if (!out) {
      std::fprintf(stderr, "soctest-perf: cannot write %s\n",
                   baseline_path.c_str());
      return 3;
    }
    out << baseline_json(measurements) << "\n";
    std::printf("wrote baseline %s (%zu cases, median of %d)\n",
                baseline_path.c_str(), measurements.size(), repeats);
    return 0;
  }

  bool ok = false;
  const std::string text = read_file(baseline_path, &ok);
  if (!ok) {
    std::fprintf(stderr,
                 "soctest-perf: cannot read baseline %s (generate one with "
                 "`soctest-perf gate --baseline %s --update`)\n",
                 baseline_path.c_str(), baseline_path.c_str());
    return 3;
  }
  std::string error;
  const auto doc = parse_json(text, &error);
  const JsonValue* cases =
      doc && doc->string_or("schema", "") == "soctest-perf-baseline-v1"
          ? doc->find("cases")
          : nullptr;
  if (cases == nullptr || !cases->is_object()) {
    std::fprintf(stderr, "soctest-perf: %s is not a soctest-perf-baseline-v1 "
                 "file%s%s\n", baseline_path.c_str(),
                 error.empty() ? "" : ": ", error.c_str());
    return 3;
  }

  Table table({"case", "base_ms", "run_ms", "ratio", "counters", "verdict"});
  int failures = 0;
  for (const auto& [name, m] : measurements) {
    const JsonValue* base = cases->find(name);
    std::string verdict = "ok";
    std::string counter_note = m.counters.empty() ? "-" : "match";
    if (base == nullptr || !base->is_object()) {
      ++failures;
      table.row().add(name).add(std::string("-")).add(m.wall_ms, 3)
          .add(std::string("-")).add(std::string("-"))
          .add(std::string("FAIL: not in baseline (re-run with --update)"));
      continue;
    }
    const double base_ms = base->number_or("wall_ms", 0.0);
    const JsonValue* base_counters = base->find("counters");
    for (const auto& [counter, value] : m.counters) {
      const double baseline_value =
          base_counters != nullptr ? base_counters->number_or(counter, -1.0)
                                   : -1.0;
      if (baseline_value != static_cast<double>(value)) {
        counter_note = counter + " " +
                       std::to_string(static_cast<long long>(baseline_value)) +
                       "->" + std::to_string(value);
        verdict = "FAIL: counter drift (algorithm change? --update to accept)";
        ++failures;
        break;
      }
    }
    if (verdict == "ok" && !counters_only) {
      // Noise-aware wall gate: both the relative and the absolute bar must
      // be cleared, so micro-cases (sub-ms, scheduler-noise-dominated) can
      // only fail on a regression a human would also call real.
      const bool slow = m.wall_ms > base_ms * (1.0 + rel_tol) &&
                        m.wall_ms - base_ms > floor_ms;
      if (slow) {
        verdict = "FAIL: slower than baseline";
        ++failures;
      }
    }
    table.row()
        .add(name)
        .add(base_ms, 3)
        .add(m.wall_ms, 3)
        .add(base_ms > 0.0 ? m.wall_ms / base_ms : 0.0, 2)
        .add(counter_note)
        .add(verdict);
  }
  // Baseline cases the suite no longer measures are also drift.
  for (const auto& [name, base] : cases->members) {
    (void)base;
    bool present = false;
    for (const auto& [measured, m] : measurements) {
      (void)m;
      if (measured == name) {
        present = true;
        break;
      }
    }
    if (!present) {
      ++failures;
      table.row().add(name).add(std::string("?")).add(std::string("-"))
          .add(std::string("-")).add(std::string("-"))
          .add(std::string("FAIL: case vanished from suite (--update)"));
    }
  }

  std::printf("perf gate vs %s (median of %d, rel-tol %.2f, floor %.0f ms%s)\n%s",
              baseline_path.c_str(), repeats, rel_tol, floor_ms,
              counters_only ? ", counters only" : "",
              table.to_ascii().c_str());
  if (failures > 0) {
    std::printf("perf gate: FAILED (%d case%s) — see docs/observability.md "
                "\"Reading a regression report\"\n",
                failures, failures == 1 ? "" : "s");
    return 1;
  }
  std::printf("perf gate: OK (%zu cases)\n", measurements.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::fputs(kUsage, args.empty() ? stderr : stdout);
    return args.empty() ? 2 : 0;
  }
  const std::string& command = args[0];
  if (command == "diff") {
    if (args.size() != 3) {
      std::fputs(kUsage, stderr);
      return 2;
    }
    return cmd_diff(args[1], args[2]);
  }
  if (command == "report") {
    if (args.size() < 2) {
      std::fputs(kUsage, stderr);
      return 2;
    }
    return cmd_report({args.begin() + 1, args.end()});
  }
  if (command == "gate") {
    return cmd_gate({args.begin() + 1, args.end()});
  }
  if (command == "trace-merge") {
    return cmd_trace_merge({args.begin() + 1, args.end()});
  }
  std::fprintf(stderr, "soctest-perf: unknown command '%s'\n%s",
               command.c_str(), kUsage);
  return 2;
}
