// soctest-serve: long-running solve server speaking the soctest-req-v1 /
// soctest-resp-v1 JSON-lines protocol (docs/service.md).
//
//   $ soctest-serve --stdio --serial < batch.jsonl > responses.jsonl
//   $ soctest-serve --socket /tmp/soctest.sock --workers 4 &
//   $ soctest --client /tmp/soctest.sock --batch batch.jsonl
//
// SIGTERM/SIGINT drain gracefully: admission stops, every accepted job
// still delivers its response, the ledger is flushed, and the process
// exits 0.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/obs.hpp"
#include "report/run_report.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace {

const char kUsage[] = R"(usage: soctest-serve [options]

Transport (pick one):
  --stdio               serve requests from stdin to stdout (default)
  --socket PATH         listen on a Unix domain socket at PATH
  --tcp HOST:PORT       listen on TCP (port 0 = ephemeral; the bound
                        address is printed as "listening on HOST:PORT")

Execution:
  --serial              deterministic mode: in-order execution, responses
                        omit timing fields (byte-identical streams)
  --workers N           worker threads (0 = auto; default auto)
  --queue N             admission bound: max queued-or-running jobs before
                        requests are rejected with backpressure (default 64)
  --max-time-limit-ms T cap every request's solve budget at T ms

Result cache:
  --cache N             result-cache entry budget (default 512; 0 = unbounded)
  --cache-shards N      cache shard count (default 8)

Robustness:
  --idle-timeout-ms T   reap a socket connection with nothing in flight
                        and no bytes read for T ms (default 60000;
                        0 disables; ignored by --stdio)

Observability:
  --ledger FILE         append one soctest-ledger-v1 record per completed
                        solve (SOCTEST_LEDGER is the env fallback)
  --trace-dir DIR       record spans for the process lifetime and write the
                        soctest-trace-v1 shard DIR/serve-<pid>.trace.json at
                        exit, for `soctest-perf trace-merge`
                        (docs/observability.md)
  --retry-after-ms T    backpressure advice in rejections (default 50)
  --help                this text
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

long long to_ll(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected an integer, got '" + value + "'");
  }
}

double to_dbl(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected a number, got '" + value + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using soctest::ServiceConfig;
  std::vector<std::string> args(argv + 1, argv + argc);
  ServiceConfig config;
  // The library default leaves idle reaping off (embedding tests manage
  // their own connections); the long-running tool defaults it on.
  config.idle_timeout_ms = 60000.0;
  std::string socket_path;
  std::string tcp_endpoint;
  std::string trace_dir;
  bool stdio = true;

  std::size_t i = 0;
  auto value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) usage_error(flag + " requires a value");
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--socket") {
      socket_path = value(arg);
      tcp_endpoint.clear();
      stdio = false;
      if (socket_path.empty()) usage_error("--socket: empty path");
    } else if (arg == "--tcp") {
      tcp_endpoint = value(arg);
      socket_path.clear();
      stdio = false;
      if (tcp_endpoint.empty()) usage_error("--tcp: empty endpoint");
    } else if (arg == "--serial") {
      config.serial = true;
    } else if (arg == "--workers") {
      const long long n = to_ll(value(arg), arg);
      if (n < 0) usage_error("--workers must be >= 0 (0 = auto)");
      config.workers = static_cast<int>(n);
    } else if (arg == "--queue") {
      const long long n = to_ll(value(arg), arg);
      if (n < 1) usage_error("--queue must be positive");
      config.queue_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--cache") {
      const long long n = to_ll(value(arg), arg);
      if (n < 0) usage_error("--cache must be >= 0 (0 = unbounded)");
      config.cache_capacity = static_cast<std::size_t>(n);
    } else if (arg == "--cache-shards") {
      const long long n = to_ll(value(arg), arg);
      if (n < 1) usage_error("--cache-shards must be positive");
      config.cache_shards = static_cast<std::size_t>(n);
    } else if (arg == "--ledger") {
      config.ledger_path = value(arg);
      if (config.ledger_path.empty()) usage_error("--ledger: empty path");
    } else if (arg == "--trace-dir") {
      trace_dir = value(arg);
      if (trace_dir.empty()) usage_error("--trace-dir: empty path");
    } else if (arg == "--retry-after-ms") {
      config.retry_after_ms = to_dbl(value(arg), arg);
      if (config.retry_after_ms < 0) usage_error("--retry-after-ms must be >= 0");
    } else if (arg == "--max-time-limit-ms") {
      config.max_time_limit_ms = to_dbl(value(arg), arg);
      if (config.max_time_limit_ms < 0) {
        usage_error("--max-time-limit-ms must be >= 0");
      }
    } else if (arg == "--idle-timeout-ms") {
      config.idle_timeout_ms = to_dbl(value(arg), arg);
      if (config.idle_timeout_ms < 0) {
        usage_error("--idle-timeout-ms must be >= 0 (0 disables)");
      }
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }

  if (config.ledger_path.empty()) {
    const char* env = std::getenv("SOCTEST_LEDGER");
    if (env != nullptr) config.ledger_path = env;
  }

  soctest::install_shutdown_handlers();
  // One sink for the process lifetime: worker threads record their
  // service.request/service.solve spans into it, and the shard is written
  // after the transport drains so nothing is still appending.
  std::unique_ptr<soctest::obs::TraceSink> sink;
  std::unique_ptr<soctest::obs::TraceSession> session;
  if (!trace_dir.empty()) {
    sink = std::make_unique<soctest::obs::TraceSink>();
    session = std::make_unique<soctest::obs::TraceSession>(sink.get());
  }
  soctest::SolveService service(config);
  int exit_code = 0;
  if (stdio) {
    exit_code = soctest::serve_stdio(service, /*in_fd=*/0, /*out_fd=*/1);
  } else if (!tcp_endpoint.empty()) {
    // Scripts bind port 0 and read the announced port back; the announcer
    // thread waits for the listener before printing.
    std::atomic<int> bound_port{-1};
    std::atomic<bool> serve_done{false};
    std::thread announcer([&] {
      while (bound_port.load(std::memory_order_acquire) < 0 &&
             !serve_done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      const int port = bound_port.load(std::memory_order_acquire);
      if (port >= 0) {
        std::string host = tcp_endpoint.substr(0, tcp_endpoint.rfind(':'));
        if (host.empty()) host = "127.0.0.1";
        std::printf("soctest-serve: listening on %s:%d\n", host.c_str(), port);
        std::fflush(stdout);
      }
    });
    exit_code = soctest::serve_tcp(service, tcp_endpoint, &bound_port);
    serve_done.store(true, std::memory_order_release);
    announcer.join();
  } else {
    exit_code = soctest::serve_unix_socket(service, socket_path);
  }

  if (sink != nullptr) {
    const std::string path =
        trace_dir + "/serve-" + std::to_string(::getpid()) + ".trace.json";
    std::ofstream out(path);
    if (out) {
      out << soctest::trace_json(*sink, "serve") << "\n";
    } else {
      std::fprintf(stderr, "soctest-serve: cannot write %s\n", path.c_str());
    }
  }

  const soctest::ServiceStats stats = service.stats();
  std::fprintf(stderr,
               "soctest-serve: %lld received, %lld accepted, %lld completed, "
               "%lld rejected, %lld errors, cache %lld/%lld hit/miss\n",
               stats.received, stats.accepted, stats.completed, stats.rejected,
               stats.errors, stats.cache_hits, stats.cache_misses);
  return exit_code;
}
