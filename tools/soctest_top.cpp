// soctest-top: live fleet telemetry viewer (docs/operations.md).
//
//   $ soctest-top --connect 127.0.0.1:43117           # refreshing view
//   $ soctest-top --connect 127.0.0.1:43117 --once --json
//
// Each refresh opens one connection, sends a soctest-stats-v1 probe, and
// renders the merged reply: fleet totals on top, one row per worker shard
// below (req/s over the sliding window, cache hit rate, queue depth,
// windowed p50/p95 latency). Probes are answered from the serve and
// frontdoor poll loops without queueing, so scraping a saturated fleet
// never competes with solve traffic.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <chrono>

#include "common/table.hpp"
#include "report/json.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"

using namespace soctest;

namespace {

const char kUsage[] = R"(usage: soctest-top [options]

Target:
  --connect ENDPOINT    soctest-frontdoor or soctest-serve endpoint (Unix
                        socket path or HOST:PORT); required

Sampling:
  --interval-ms T       refresh period (default 1000)
  --count N             exit after N refreshes (default 0 = run until ^C)
  --once                scrape once, print, exit (same as --count 1)

Output:
  --json                print the raw soctest-stats-v1 reply line instead
                        of the rendered tables (one JSON line per refresh;
                        pairs with --once for scripting)
  --help                this text
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

long long to_ll(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected an integer, got '" + value + "'");
  }
}

std::string format_rate(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.1f", v);
  return buffer;
}

std::string format_ms(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f", v);
  return buffer;
}

std::string format_pct(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.0f%%", 100.0 * v);
  return buffer;
}

/// Renders one merged (frontdoor) or flat (serve) soctest-stats-v1 reply.
/// Every field read here is listed in the docs/service.md field catalog.
std::string render(const JsonValue& doc) {
  std::string out = "soctest-top: role=" + doc.string_or("role", "?") +
                    " uptime=" + format_rate(doc.number_or("uptime_s", 0.0)) +
                    "s window=" +
                    std::to_string(static_cast<long long>(
                        doc.number_or("window_s", 0.0))) +
                    "s\n";
  Table totals({"req/s", "received", "completed", "rejected", "errors",
                "queue", "p50_ms", "p95_ms", "restarts", "hung"});
  totals.row()
      .add(format_rate(doc.number_or("req_rate", 0.0)))
      .add(static_cast<long long>(doc.number_or("received", 0.0)))
      .add(static_cast<long long>(doc.number_or("completed", 0.0)))
      .add(static_cast<long long>(doc.number_or("rejected", 0.0)))
      .add(static_cast<long long>(doc.number_or("errors", 0.0)))
      .add(static_cast<long long>(doc.number_or("queue_depth", 0.0)))
      .add(format_ms(doc.number_or("p50_ms", 0.0)))
      .add(format_ms(doc.number_or("p95_ms", 0.0)))
      .add(static_cast<long long>(doc.number_or("restarts", 0.0)))
      .add(static_cast<long long>(doc.number_or("hung", 0.0)));
  out += totals.to_ascii();

  const JsonValue* shards = doc.find("shards");
  if (shards != nullptr && shards->is_array() && !shards->items.empty()) {
    Table per_shard({"shard", "req/s", "hit_rate", "queue", "p50_ms", "p95_ms",
                     "completed", "rejected", "errors"});
    for (const JsonValue& s : shards->items) {
      if (!s.is_object()) continue;
      const long long shard = static_cast<long long>(s.number_or("shard", -1));
      if (s.find("broken") != nullptr) {
        per_shard.row().add(shard).add(std::string("BROKEN"));
        for (int i = 0; i < 7; ++i) per_shard.add(std::string("-"));
        continue;
      }
      per_shard.row()
          .add(shard)
          .add(format_rate(s.number_or("req_rate", 0.0)))
          .add(format_pct(s.number_or("cache_hit_rate", 0.0)))
          .add(static_cast<long long>(s.number_or("queue_depth", 0.0)))
          .add(format_ms(s.number_or("p50_ms", 0.0)))
          .add(format_ms(s.number_or("p95_ms", 0.0)))
          .add(static_cast<long long>(s.number_or("completed", 0.0)))
          .add(static_cast<long long>(s.number_or("rejected", 0.0)))
          .add(static_cast<long long>(s.number_or("errors", 0.0)));
    }
    out += per_shard.to_ascii();
  } else {
    // A bare soctest-serve has no shard fan-out; show its cache line.
    out += "cache hit rate " +
           format_pct(doc.number_or("cache_hit_rate", 0.0)) + " (" +
           std::to_string(
               static_cast<long long>(doc.number_or("cache_hits", 0.0))) +
           " hits, " +
           std::to_string(
               static_cast<long long>(doc.number_or("cache_misses", 0.0))) +
           " misses)\n";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string connect;
  long long interval_ms = 1000;
  long long count = 0;
  bool json = false;

  std::size_t i = 0;
  auto value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) usage_error(flag + " requires a value");
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--connect") {
      connect = value(arg);
      if (connect.empty()) usage_error("--connect: empty endpoint");
    } else if (arg == "--interval-ms") {
      interval_ms = to_ll(value(arg), arg);
      if (interval_ms < 1) usage_error("--interval-ms must be positive");
    } else if (arg == "--count") {
      count = to_ll(value(arg), arg);
      if (count < 0) usage_error("--count must be >= 0 (0 = forever)");
    } else if (arg == "--once") {
      count = 1;
    } else if (arg == "--json") {
      json = true;
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  if (connect.empty()) usage_error("--connect is required");

  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  long long probes = 0;
  for (long long n = 0; count == 0 || n < count; ++n) {
    if (n > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const std::string probe_id = "top-" + std::to_string(++probes);
    const auto replies = client_roundtrip(connect, {stats_probe_json(probe_id)});
    if (!replies.ok()) {
      std::fprintf(stderr, "soctest-top: %s\n",
                   replies.status().message().c_str());
      return 1;
    }
    std::string reply;
    for (const std::string& line : replies.value()) {
      if (line.find(kStatsSchema) != std::string::npos) reply = line;
    }
    if (reply.empty()) {
      std::fprintf(stderr, "soctest-top: no soctest-stats-v1 reply from %s\n",
                   connect.c_str());
      return 1;
    }
    if (json) {
      std::printf("%s\n", reply.c_str());
      std::fflush(stdout);
      continue;
    }
    std::string error;
    const auto doc = parse_json(reply, &error);
    if (!doc || !doc->is_object()) {
      std::fprintf(stderr, "soctest-top: malformed stats reply: %s\n",
                   error.c_str());
      return 1;
    }
    // In a terminal, repaint in place; piped output keeps every frame.
    if (tty) std::fputs("\x1b[H\x1b[2J", stdout);
    std::fputs(render(*doc).c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}
