// soctest-loadgen: traffic generator and SLO probe for the solve service
// (docs/operations.md).
//
//   $ soctest-loadgen --connect 127.0.0.1:43117 --requests 500
//   $ soctest-loadgen --connect /tmp/soctest.sock --batch batch.jsonl \
//         --mode open --rate 200 --json-out BENCH_solvers.json
//
// Closed loop: each connection keeps exactly one request outstanding —
// latency under no queueing. Open loop: requests are sent on a fixed
// schedule regardless of completions — latency under the arrival rate you
// chose, including queueing and backpressure. Results print as a summary
// line plus p50/p95/p99, and --json-out merges a `service_slo` row into
// the shared bench table the regression gate reads.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_util.hpp"
#include "common/net.hpp"
#include "obs/obs.hpp"
#include "report/json.hpp"
#include "report/run_report.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"

namespace {

using Clock = std::chrono::steady_clock;

const char kUsage[] = R"(usage: soctest-loadgen --connect ENDPOINT [options]

Target:
  --connect EP          server endpoint: HOST:PORT or a Unix socket path
                        (a soctest-serve or soctest-frontdoor listener)

Traffic mix (pick at most one; default: builtin SOCs soc1..soc4 with the
greedy solver — fully cacheable, so warm runs probe service overhead):
  --batch FILE          replay soctest-req-v1 lines (ids are rewritten)
  --from-ledger FILE    derive the mix from a soctest-ledger-v1 file
                        (each record's soc/solver/seed becomes a template)

Load shape:
  --mode closed|open    closed = one outstanding request per connection,
                        open = fixed-rate schedule (default closed)
  --connections N       concurrent connections (default 4)
  --rate R              open-loop target requests/second (default 200)
  --requests N          total requests to send (default 200)
  --seed S              mix-sampling RNG seed (default 1)
  --stream              request soctest-partial-v1 incumbent streaming
  --time-limit-ms T     set time_limit_ms on every generated request

Resilience (closed loop only; docs/robustness.md):
  --retries N           resend budget per request: reconnect on drops,
                        replay the request, honor retry_after_ms on
                        rejections (default 0 = fail fast)
  --retry-backoff-ms T  reconnect backoff base (default 10)
  --response-timeout-ms T
                        drop + reconnect when a response is outstanding and
                        the server is silent for T ms

Observability (docs/observability.md):
  --trace-sample N      stamp a trace context (deterministic trace_id) on
                        every Nth generated request (1 = all, 0 = off), so
                        the fleet records a client/frontdoor/worker span
                        waterfall for the sampled requests
  --trace-dir DIR       record this process's spans and write the
                        soctest-trace-v1 shard DIR/loadgen-<pid>.trace.json
                        at exit, for `soctest-perf trace-merge`

Output:
  --json-out FILE       merge the SLO row into this bench table
  --tag NAME            bench tag for the row (default service_slo)
  --help                this text
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

long long to_ll(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected an integer, got '" + value + "'");
  }
}

double to_dbl(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected a number, got '" + value + "'");
  }
}

struct Options {
  std::string connect;
  std::string batch_path;
  std::string ledger_path;
  bool open_loop = false;
  int connections = 4;
  double rate = 200.0;
  long long requests = 200;
  std::uint64_t seed = 1;
  bool stream = false;
  double time_limit_ms = -1.0;
  int retries = 0;
  double retry_backoff_ms = 10.0;
  double response_timeout_ms = -1.0;
  int trace_sample = 0;
  std::string trace_dir;
  std::string json_out;
  std::string tag = "service_slo";
};

/// xorshift64* — deterministic across platforms, no <random> distribution
/// quirks; good enough to sample a request mix.
struct Rng {
  std::uint64_t state;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
};

std::vector<soctest::ServiceRequest> load_templates(const Options& opt) {
  using soctest::ServiceRequest;
  std::vector<ServiceRequest> pool;
  if (!opt.batch_path.empty()) {
    std::ifstream in(opt.batch_path);
    if (!in) usage_error("--batch: cannot open " + opt.batch_path);
    std::string line;
    long long lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      auto parsed = soctest::parse_request(line);
      if (!parsed.ok()) {
        std::fprintf(stderr, "loadgen: %s:%lld skipped: %s\n",
                     opt.batch_path.c_str(), lineno,
                     parsed.status().message().c_str());
        continue;
      }
      pool.push_back(std::move(parsed).value());
    }
  } else if (!opt.ledger_path.empty()) {
    std::ifstream in(opt.ledger_path);
    if (!in) usage_error("--from-ledger: cannot open " + opt.ledger_path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const auto doc = soctest::parse_json(line);
      if (!doc || !doc->is_object()) continue;
      const std::string soc = doc->string_or("soc", "");
      // Inline-SOC records carry no reproducible input; skip them.
      if (soc.empty() || soc == "<inline>") continue;
      // Round-trip through the parser so solver names and field ranges are
      // validated exactly like a real request would be.
      soctest::JsonWriter w;
      w.begin_object();
      w.key("schema").value(soctest::kRequestSchema);
      w.key("soc").value(soc);
      w.key("solver").value(doc->string_or("solver", "exact"));
      w.key("seed").value(
          static_cast<long long>(doc->number_or("seed", 0.0)));
      w.end_object();
      auto parsed = soctest::parse_request(w.str());
      if (parsed.ok()) pool.push_back(std::move(parsed).value());
    }
  } else {
    // Greedy solves terminate with stop="none", so every outcome is
    // cacheable: warm-cache runs with the default mix measure transport
    // and service overhead, not solver time.
    for (const char* soc : {"soc1", "soc2", "soc3", "soc4"}) {
      ServiceRequest request;
      request.soc = soc;
      request.solver = soctest::InnerSolver::kGreedy;
      pool.push_back(request);
    }
  }
  if (pool.empty()) usage_error("request mix is empty");
  return pool;
}

std::vector<std::string> build_request_lines(
    const Options& opt, const std::vector<soctest::ServiceRequest>& pool) {
  std::vector<std::string> lines;
  lines.reserve(static_cast<std::size_t>(opt.requests));
  Rng rng{opt.seed ? opt.seed : 1};
  for (long long n = 0; n < opt.requests; ++n) {
    soctest::ServiceRequest request =
        pool[static_cast<std::size_t>(rng.next() % pool.size())];
    request.id = "lg-" + std::to_string(n);
    if (opt.stream) request.stream = true;
    if (opt.time_limit_ms >= 0) request.time_limit_ms = opt.time_limit_ms;
    if (opt.trace_sample > 0 && n % opt.trace_sample == 0) {
      // Deterministic trace ids (seed + index, never wall clock) keep
      // fixed-seed chaos-gate trace merges byte-identical across reruns.
      request.trace_id = soctest::trace_span_guid(
          "loadgen-" + std::to_string(opt.seed), std::to_string(n));
      request.trace_parent =
          soctest::trace_span_guid(request.trace_id, "client.request");
    }
    lines.push_back(soctest::request_json(request));
  }
  return lines;
}

/// Shared tally across connection threads.
struct Tally {
  std::mutex mutex;
  std::vector<double> latencies_ms;  ///< finals that arrived, any outcome
  long long sent = 0;
  long long finals = 0;
  long long partials = 0;
  long long ok = 0;
  long long rejected = 0;  ///< resource_exhausted (backpressure)
  long long errors = 0;    ///< every other ok=false final
  long long transport_errors = 0;
  // What the retry layer did (closed loop with --retries; see
  // soctest::RetryStats). A request the client gave up on is a
  // transport_error here, not a final — the exit code must not claim a
  // synthesized error response as an answer.
  long long retry_attempts = 0;
  long long retry_retries = 0;
  long long retry_reconnects = 0;
  double retry_backoff_ms = 0.0;
  long long retry_gave_up = 0;
};

void classify_final(const std::string& line, Tally& tally, double latency_ms) {
  std::lock_guard<std::mutex> lock(tally.mutex);
  ++tally.finals;
  tally.latencies_ms.push_back(latency_ms);
  const auto doc = soctest::parse_json(line);
  bool is_ok = false;
  std::string code;
  if (doc && doc->is_object()) {
    if (const auto* flag = doc->find("ok")) is_ok = flag->boolean;
    if (const auto* error = doc->find("error"))
      code = error->string_or("code", "");
  }
  if (is_ok) {
    ++tally.ok;
  } else if (code == "resource_exhausted") {
    ++tally.rejected;
  } else {
    ++tally.errors;
  }
}

/// One closed-loop connection: at most one request outstanding; the next
/// request goes out only once the previous final arrived. The retrying
/// client keeps one persistent connection, reconnecting and replaying per
/// the policy; with max_attempts=1 the behavior degrades to the old
/// fail-fast loop.
void run_closed(const std::string& endpoint,
                const std::vector<std::string>& lines,
                const soctest::RetryPolicy& policy, Tally& tally) {
  soctest::RetryingClient client(endpoint, policy);
  long long prev_gave_up = 0;
  std::size_t done = 0;
  for (const std::string& line : lines) {
    const auto t0 = Clock::now();
    auto responses = client.run_batch({line});
    if (!responses.ok()) {
      // Never reached the server at all (past max_connect_failures):
      // everything left on this connection is a transport error.
      std::lock_guard<std::mutex> lock(tally.mutex);
      tally.transport_errors += static_cast<long long>(lines.size() - done);
      break;
    }
    ++done;
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const bool gave_up = client.stats().gave_up > prev_gave_up;
    prev_gave_up = client.stats().gave_up;
    {
      std::lock_guard<std::mutex> lock(tally.mutex);
      ++tally.sent;
    }
    for (const std::string& response : responses.value()) {
      const auto doc = soctest::parse_json(response);
      const std::string schema =
          doc && doc->is_object() ? doc->string_or("schema", "") : "";
      if (schema == soctest::kPartialSchema) {
        std::lock_guard<std::mutex> lock(tally.mutex);
        ++tally.partials;
        continue;
      }
      if (gave_up) {
        std::lock_guard<std::mutex> lock(tally.mutex);
        ++tally.transport_errors;
        continue;  // synthesized budget-exhausted final, not an answer
      }
      classify_final(response, tally, ms);
    }
  }
  const soctest::RetryStats& rs = client.stats();
  std::lock_guard<std::mutex> lock(tally.mutex);
  tally.retry_attempts += rs.attempts;
  tally.retry_retries += rs.retries;
  tally.retry_reconnects += rs.reconnects;
  tally.retry_backoff_ms += rs.backoff_ms;
  tally.retry_gave_up += rs.gave_up;
}

/// One open-loop connection: its share of the schedule is sent on time
/// whether or not responses came back; finals are matched by id.
void run_open(const std::string& endpoint,
              const std::vector<std::string>& lines, double interval_ms,
              Tally& tally) {
  const auto parsed = soctest::net::parse_endpoint(endpoint);
  if (!parsed.ok()) return;
  const auto fd_or = soctest::net::connect_endpoint(parsed.value());
  if (!fd_or.ok()) {
    std::lock_guard<std::mutex> lock(tally.mutex);
    tally.transport_errors += static_cast<long long>(lines.size());
    return;
  }
  const int fd = fd_or.value();
  std::map<std::string, Clock::time_point> outstanding;
  std::string inbuf;
  char chunk[65536];
  const auto start = Clock::now();
  std::size_t next = 0;
  bool half_closed = false;
  bool peer_gone = false;

  while (!peer_gone && (next < lines.size() || !outstanding.empty())) {
    const auto now = Clock::now();
    // Send everything whose schedule slot has passed.
    while (next < lines.size()) {
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          interval_ms * static_cast<double>(next)));
      if (due > now) break;
      const std::string wire = lines[next] + "\n";
      if (!soctest::net::write_all(fd, wire.data(), wire.size())) {
        std::lock_guard<std::mutex> lock(tally.mutex);
        tally.transport_errors +=
            static_cast<long long>(lines.size() - next);
        next = lines.size();
        peer_gone = outstanding.empty();
        break;
      }
      const auto doc = soctest::parse_json(lines[next]);
      const std::string id =
          doc && doc->is_object() ? doc->string_or("id", "") : "";
      outstanding.emplace(id, Clock::now());
      {
        std::lock_guard<std::mutex> lock(tally.mutex);
        ++tally.sent;
      }
      ++next;
    }
    if (next >= lines.size() && !half_closed) {
      ::shutdown(fd, SHUT_WR);
      half_closed = true;
    }

    int wait_ms = 10;
    if (next < lines.size()) {
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          interval_ms * static_cast<double>(next)));
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                             due - Clock::now())
                             .count();
      wait_ms = static_cast<int>(std::max<long long>(0, std::min<long long>(until, 10)));
    }
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc <= 0) continue;

    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      std::lock_guard<std::mutex> lock(tally.mutex);
      tally.transport_errors += static_cast<long long>(outstanding.size());
      break;
    }
    inbuf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = inbuf.find('\n')) != std::string::npos) {
      const std::string response = inbuf.substr(0, pos);
      inbuf.erase(0, pos + 1);
      const auto doc = soctest::parse_json(response);
      const std::string schema =
          doc && doc->is_object() ? doc->string_or("schema", "") : "";
      if (schema == soctest::kPartialSchema) {
        std::lock_guard<std::mutex> lock(tally.mutex);
        ++tally.partials;
        continue;
      }
      const std::string id =
          doc && doc->is_object() ? doc->string_or("id", "") : "";
      double ms = 0.0;
      if (const auto it = outstanding.find(id); it != outstanding.end()) {
        ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                       it->second)
                 .count();
        outstanding.erase(it);
      }
      classify_final(response, tally, ms);
    }
  }
  ::close(fd);
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  Options opt;

  std::size_t i = 0;
  auto value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) usage_error(flag + " requires a value");
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--connect") {
      opt.connect = value(arg);
    } else if (arg == "--batch") {
      opt.batch_path = value(arg);
    } else if (arg == "--from-ledger") {
      opt.ledger_path = value(arg);
    } else if (arg == "--mode") {
      const std::string mode = value(arg);
      if (mode == "closed") {
        opt.open_loop = false;
      } else if (mode == "open") {
        opt.open_loop = true;
      } else {
        usage_error("--mode must be 'closed' or 'open'");
      }
    } else if (arg == "--connections") {
      const long long n = to_ll(value(arg), arg);
      if (n < 1) usage_error("--connections must be positive");
      opt.connections = static_cast<int>(n);
    } else if (arg == "--rate") {
      opt.rate = to_dbl(value(arg), arg);
      if (opt.rate <= 0) usage_error("--rate must be positive");
    } else if (arg == "--requests") {
      opt.requests = to_ll(value(arg), arg);
      if (opt.requests < 1) usage_error("--requests must be positive");
    } else if (arg == "--seed") {
      opt.seed = static_cast<std::uint64_t>(to_ll(value(arg), arg));
    } else if (arg == "--stream") {
      opt.stream = true;
    } else if (arg == "--time-limit-ms") {
      opt.time_limit_ms = to_dbl(value(arg), arg);
      if (opt.time_limit_ms < 0) usage_error("--time-limit-ms must be >= 0");
    } else if (arg == "--retries") {
      const long long n = to_ll(value(arg), arg);
      if (n < 0) usage_error("--retries must be >= 0");
      opt.retries = static_cast<int>(n);
    } else if (arg == "--retry-backoff-ms") {
      opt.retry_backoff_ms = to_dbl(value(arg), arg);
      if (opt.retry_backoff_ms < 0)
        usage_error("--retry-backoff-ms must be >= 0");
    } else if (arg == "--response-timeout-ms") {
      opt.response_timeout_ms = to_dbl(value(arg), arg);
      if (opt.response_timeout_ms <= 0)
        usage_error("--response-timeout-ms must be positive");
    } else if (arg == "--trace-sample") {
      const long long n = to_ll(value(arg), arg);
      if (n < 0) usage_error("--trace-sample must be >= 0");
      opt.trace_sample = static_cast<int>(n);
    } else if (arg == "--trace-dir") {
      opt.trace_dir = value(arg);
      if (opt.trace_dir.empty()) usage_error("--trace-dir: empty path");
    } else if (arg == "--json-out") {
      opt.json_out = value(arg);
    } else if (arg == "--tag") {
      opt.tag = value(arg);
      if (opt.tag.empty()) usage_error("--tag: empty name");
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  if (opt.connect.empty()) usage_error("--connect is required");
  if (!opt.batch_path.empty() && !opt.ledger_path.empty())
    usage_error("--batch and --from-ledger are mutually exclusive");
  if (opt.open_loop && (opt.retries > 0 || opt.response_timeout_ms > 0))
    usage_error("--retries/--response-timeout-ms support the closed loop only");

  const auto pool = load_templates(opt);
  const auto lines = build_request_lines(opt, pool);

  // One sink for the process lifetime: the closed-loop RetryingClient
  // threads record client.request/client.attempt spans into it, and the
  // shard is written after every thread has joined.
  std::unique_ptr<soctest::obs::TraceSink> sink;
  std::unique_ptr<soctest::obs::TraceSession> session;
  if (!opt.trace_dir.empty()) {
    sink = std::make_unique<soctest::obs::TraceSink>();
    session = std::make_unique<soctest::obs::TraceSession>(sink.get());
  }

  // Round-robin split keeps each connection's share in send order.
  std::vector<std::vector<std::string>> shares(
      static_cast<std::size_t>(opt.connections));
  for (std::size_t n = 0; n < lines.size(); ++n)
    shares[n % shares.size()].push_back(lines[n]);

  Tally tally;
  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(shares.size());
    const double interval_ms =
        1000.0 / (opt.rate / static_cast<double>(opt.connections));
    for (std::size_t t = 0; t < shares.size(); ++t) {
      auto& share = shares[t];
      if (share.empty()) continue;
      if (opt.open_loop) {
        threads.emplace_back(
            [&] { run_open(opt.connect, share, interval_ms, tally); });
      } else {
        soctest::RetryPolicy policy;
        policy.max_attempts = opt.retries + 1;
        policy.base_backoff_ms = opt.retry_backoff_ms;
        policy.response_timeout_ms = opt.response_timeout_ms;
        // Distinct jitter per connection so reconnect storms desynchronize.
        policy.jitter_seed = opt.seed * 0x9E3779B97F4A7C15ULL + t + 1;
        threads.emplace_back(
            [&, policy] { run_closed(opt.connect, share, policy, tally); });
      }
    }
    for (auto& t : threads) t.join();
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  if (sink != nullptr) {
    const std::string path = opt.trace_dir + "/loadgen-" +
                             std::to_string(::getpid()) + ".trace.json";
    std::ofstream out(path);
    if (out) {
      out << soctest::trace_json(*sink, "client") << "\n";
    } else {
      std::fprintf(stderr, "soctest-loadgen: cannot write %s\n", path.c_str());
    }
  }

  std::sort(tally.latencies_ms.begin(), tally.latencies_ms.end());
  const double p50 = percentile(tally.latencies_ms, 0.50);
  const double p95 = percentile(tally.latencies_ms, 0.95);
  const double p99 = percentile(tally.latencies_ms, 0.99);
  const double rps =
      wall_ms > 0 ? 1000.0 * static_cast<double>(tally.finals) / wall_ms : 0;

  std::printf(
      "soctest-loadgen: mode=%s connections=%d sent=%lld finals=%lld "
      "ok=%lld rejected=%lld errors=%lld partials=%lld transport_errors=%lld\n"
      "soctest-loadgen: wall=%.1fms throughput=%.1f req/s "
      "p50=%.2fms p95=%.2fms p99=%.2fms\n"
      "soctest-loadgen: retry_attempts=%lld retries=%lld reconnects=%lld "
      "backoff_ms=%.0f gave_up=%lld\n",
      opt.open_loop ? "open" : "closed", opt.connections, tally.sent,
      tally.finals, tally.ok, tally.rejected, tally.errors, tally.partials,
      tally.transport_errors, wall_ms, rps, p50, p95, p99,
      tally.retry_attempts, tally.retry_retries, tally.retry_reconnects,
      tally.retry_backoff_ms, tally.retry_gave_up);

  if (!opt.json_out.empty()) {
    soctest::benchutil::JsonLog log(opt.tag);
    auto& row = log.record();
    row.set("mode", opt.open_loop ? "open" : "closed");
    row.set("connections", opt.connections);
    row.set("sent", tally.sent);
    row.set("finals", tally.finals);
    row.set("ok", tally.ok);
    row.set("rejected", tally.rejected);
    row.set("errors", tally.errors);
    row.set("partials", tally.partials);
    row.set("transport_errors", tally.transport_errors);
    row.set("retry_attempts", tally.retry_attempts);
    row.set("retry_retries", tally.retry_retries);
    row.set("retry_reconnects", tally.retry_reconnects);
    row.set("retry_backoff_ms", tally.retry_backoff_ms, 1);
    row.set("retry_gave_up", tally.retry_gave_up);
    row.set("wall_ms", wall_ms, 1);
    row.set("rps", rps, 1);
    row.set("p50_ms", p50, 3);
    row.set("p95_ms", p95, 3);
    row.set("p99_ms", p99, 3);
    log.write(opt.json_out);
  }

  const bool clean = tally.finals == tally.sent && tally.transport_errors == 0;
  return clean ? 0 : 1;
}
