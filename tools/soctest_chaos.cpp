// soctest-chaos: deterministic fault-injecting TCP proxy for robustness
// soaks (docs/robustness.md).
//
//   $ soctest-serve --tcp 127.0.0.1:0 &          # prints its port
//   $ soctest-chaos --listen 127.0.0.1:0 --connect 127.0.0.1:PORT
//       --seed 7 --drop-prob 0.25 --tear-prob 0.3 &
//   # stdout: "soctest-chaos: listening on 127.0.0.1:39251"
//   $ soctest-loadgen --connect 127.0.0.1:39251 --retries 8 ...
//
// Every fault is drawn from a PRNG seeded per (seed, connection index), so
// the same seed reproduces the same fault schedule exactly. SIGTERM exits
// 0 after printing a fault census.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "service/chaos.hpp"
#include "service/transport.hpp"

namespace {

const char kUsage[] = R"(usage: soctest-chaos [options]

Endpoints:
  --listen HOST:PORT    where clients connect (default 127.0.0.1:0; port 0 =
                        ephemeral, announced on stdout)
  --connect HOST:PORT   upstream server or front door (required)

Fault schedule (per-connection probabilities, sampled at accept):
  --seed N              PRNG seed; fixes the whole schedule (default 1)
  --drop-prob P         close both sides after a random relayed byte count
  --tear-prob P         split every server->client write, stalling the tail
  --delay-prob P        delay all forwarded bytes by a fixed latency
  --garbage-prob P      inject one garbage line toward the client at a
                        line boundary (never corrupts a real line)
  --halfopen-prob P     accept the client but never talk to the upstream
  --stall-ms T          torn-write tail latency (default 25)
  --delay-ms T          per-chunk forwarding latency (default 5)
  --help                this text
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

double to_prob(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    if (v < 0.0 || v > 1.0) usage_error(flag + " must be in [0, 1]");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected a probability, got '" + value + "'");
  }
}

double to_dbl(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected a number, got '" + value + "'");
  }
}

long long to_ll(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected an integer, got '" + value + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  soctest::ChaosConfig config;

  std::size_t i = 0;
  auto value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) usage_error(flag + " requires a value");
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--listen") {
      config.listen = value(arg);
      if (config.listen.empty()) usage_error("--listen: empty endpoint");
    } else if (arg == "--connect") {
      config.upstream = value(arg);
      if (config.upstream.empty()) usage_error("--connect: empty endpoint");
    } else if (arg == "--seed") {
      config.seed = static_cast<std::uint64_t>(to_ll(value(arg), arg));
    } else if (arg == "--drop-prob") {
      config.drop_prob = to_prob(value(arg), arg);
    } else if (arg == "--tear-prob") {
      config.tear_prob = to_prob(value(arg), arg);
    } else if (arg == "--delay-prob") {
      config.delay_prob = to_prob(value(arg), arg);
    } else if (arg == "--garbage-prob") {
      config.garbage_prob = to_prob(value(arg), arg);
    } else if (arg == "--halfopen-prob") {
      config.halfopen_prob = to_prob(value(arg), arg);
    } else if (arg == "--stall-ms") {
      config.stall_ms = to_dbl(value(arg), arg);
      if (config.stall_ms < 0) usage_error("--stall-ms must be >= 0");
    } else if (arg == "--delay-ms") {
      config.delay_ms = to_dbl(value(arg), arg);
      if (config.delay_ms < 0) usage_error("--delay-ms must be >= 0");
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  if (config.upstream.empty()) usage_error("--connect is required");

  soctest::install_shutdown_handlers();
  soctest::ChaosProxy proxy(config);
  if (const soctest::Status s = proxy.start(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("soctest-chaos: listening on %s\n", proxy.endpoint().c_str());
  std::fflush(stdout);

  const int exit_code = proxy.serve();

  const soctest::ChaosStats stats = proxy.stats();
  std::fprintf(stderr,
               "soctest-chaos: %lld connections, %lld drops, %lld tears, "
               "%lld delays, %lld garbage, %lld halfopen, %lld/%lld bytes "
               "up/down\n",
               stats.connections, stats.drops, stats.tears, stats.delays,
               stats.garbage, stats.halfopen, stats.bytes_to_upstream,
               stats.bytes_to_client);
  return exit_code;
}
