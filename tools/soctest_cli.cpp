// soctest: command-line front end for the TAM architecture designer.
//
//   $ soctest --soc soc1 --buses 3 --width 48 --pmax 1800 --gantt
//   $ soctest --soc my_chip.soc --widths 16,8 --dmax 20
//
// See --help for the full flag reference.

#include <cstdio>
#include <stdexcept>
#include <vector>

#include "cli/options.hpp"
#include "cli/run.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    const soctest::CliOptions options = soctest::parse_cli(args);
    const soctest::CliResult result = soctest::run_cli(options);
    std::fputs(result.output.c_str(), stdout);
    return result.exit_code;
  } catch (const std::invalid_argument& e) {
    std::fputs(e.what(), stderr);
    std::fputs("\n", stderr);
    return 2;
  }
}
