// soctest-frontdoor: TCP front door for a sharded soctest-serve fleet
// (docs/service.md, docs/operations.md).
//
//   $ soctest-frontdoor --listen 127.0.0.1:0 --workers 2 &
//   # stdout: "soctest-frontdoor: listening on 127.0.0.1:43117"
//   $ soctest --client 127.0.0.1:43117 --batch batch.jsonl
//
// Spawns N soctest-serve workers on private Unix sockets, shards each
// request by SOC content fingerprint (cache affinity), restarts crashed
// workers and resends their in-flight requests, and rejects with
// retry_after_ms once max_inflight requests are outstanding. SIGTERM
// drains: in-flight requests finish, workers are SIGTERMed, exit 0.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "obs/obs.hpp"
#include "report/run_report.hpp"
#include "service/frontdoor.hpp"
#include "service/transport.hpp"

namespace {

const char kUsage[] = R"(usage: soctest-frontdoor [options]

Fleet:
  --listen HOST:PORT    TCP listen endpoint (default 127.0.0.1:0; port 0 =
                        ephemeral, announced on stdout)
  --workers N           soctest-serve worker processes (default 2)
  --serve-bin PATH      worker binary (default: soctest-serve next to this
                        executable)
  --dir PATH            directory for worker sockets and ledgers (default:
                        private temp dir, removed on exit)

Worker configuration (forwarded to each soctest-serve):
  --serial-workers      run workers with --serial (deterministic per-shard
                        response streams)
  --worker-threads N    threads per worker (0 = auto)
  --queue N             per-worker admission bound (default 64)
  --cache N             per-worker result-cache entries (default 512)
  --max-time-limit-ms T cap every request's solve budget at T ms
  --worker-ledgers      one soctest-ledger-v1 file per worker in --dir

Admission and fault handling:
  --max-inflight N      front-door bound on outstanding requests across all
                        clients (default 256)
  --retry-after-ms T    backpressure advice in rejections (default 50)
  --max-restarts N      respawns per crashed worker before its shard is
                        declared broken (default 3)
  --heartbeat-ms T      ping each worker's health connection every T ms and
                        SIGKILL+respawn one silent past the timeout
                        (default 0 = off; see docs/robustness.md)
  --heartbeat-timeout-ms T
                        silence threshold before a worker counts as hung
                        (default 5 * heartbeat interval)
  --idle-timeout-ms T   reap a client connection with nothing in flight and
                        no bytes moved for T ms (default 60000; 0 disables)

Observability:
  --ledger FILE         append one minimal "kind":"rejected" record (id,
                        shard, retry_after_ms, trace_id) per admission
                        rejection; completed solves are recorded by the
                        workers' own ledgers (--worker-ledgers)
  --trace-dir DIR       record relay spans and write the soctest-trace-v1
                        shard DIR/frontdoor-<pid>.trace.json at exit;
                        workers are spawned with the same --trace-dir, so
                        one directory collects the whole fleet for
                        `soctest-perf trace-merge` (docs/observability.md)
  --metrics             print the name-sorted counter/histogram tables to
                        stderr at exit
  --help                this text
)";

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

long long to_ll(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected an integer, got '" + value + "'");
  }
}

double to_dbl(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) usage_error(flag + ": trailing characters");
    return v;
  } catch (const std::exception&) {
    usage_error(flag + ": expected a number, got '" + value + "'");
  }
}

/// soctest-serve sitting next to this binary — the common layout in both
/// the build tree and an installed prefix.
std::string sibling_serve_binary(const char* argv0) {
  std::string self(argv0);
  const auto slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/soctest-serve";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  soctest::FrontDoorConfig config;
  bool metrics = false;

  std::size_t i = 0;
  auto value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) usage_error(flag + " requires a value");
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--listen") {
      config.listen = value(arg);
      if (config.listen.empty()) usage_error("--listen: empty endpoint");
    } else if (arg == "--workers") {
      const long long n = to_ll(value(arg), arg);
      if (n < 1) usage_error("--workers must be positive");
      config.workers = static_cast<int>(n);
    } else if (arg == "--serve-bin") {
      config.serve_binary = value(arg);
      if (config.serve_binary.empty()) usage_error("--serve-bin: empty path");
    } else if (arg == "--dir") {
      config.work_dir = value(arg);
      if (config.work_dir.empty()) usage_error("--dir: empty path");
    } else if (arg == "--serial-workers") {
      config.serial_workers = true;
    } else if (arg == "--worker-threads") {
      const long long n = to_ll(value(arg), arg);
      if (n < 0) usage_error("--worker-threads must be >= 0 (0 = auto)");
      config.worker_threads = static_cast<int>(n);
    } else if (arg == "--queue") {
      const long long n = to_ll(value(arg), arg);
      if (n < 1) usage_error("--queue must be positive");
      config.worker_queue = static_cast<std::size_t>(n);
    } else if (arg == "--cache") {
      const long long n = to_ll(value(arg), arg);
      if (n < 0) usage_error("--cache must be >= 0 (0 = unbounded)");
      config.worker_cache = static_cast<std::size_t>(n);
    } else if (arg == "--max-time-limit-ms") {
      config.max_time_limit_ms = to_dbl(value(arg), arg);
      if (config.max_time_limit_ms < 0) {
        usage_error("--max-time-limit-ms must be >= 0");
      }
    } else if (arg == "--worker-ledgers") {
      config.worker_ledgers = true;
    } else if (arg == "--max-inflight") {
      const long long n = to_ll(value(arg), arg);
      if (n < 1) usage_error("--max-inflight must be positive");
      config.max_inflight = static_cast<std::size_t>(n);
    } else if (arg == "--retry-after-ms") {
      config.retry_after_ms = to_dbl(value(arg), arg);
      if (config.retry_after_ms < 0) {
        usage_error("--retry-after-ms must be >= 0");
      }
    } else if (arg == "--max-restarts") {
      const long long n = to_ll(value(arg), arg);
      if (n < 0) usage_error("--max-restarts must be >= 0");
      config.max_restarts = static_cast<int>(n);
    } else if (arg == "--heartbeat-ms") {
      config.heartbeat_ms = to_dbl(value(arg), arg);
      if (config.heartbeat_ms < 0) {
        usage_error("--heartbeat-ms must be >= 0 (0 disables)");
      }
    } else if (arg == "--heartbeat-timeout-ms") {
      config.heartbeat_timeout_ms = to_dbl(value(arg), arg);
      if (config.heartbeat_timeout_ms < 0) {
        usage_error("--heartbeat-timeout-ms must be >= 0");
      }
    } else if (arg == "--idle-timeout-ms") {
      config.idle_timeout_ms = to_dbl(value(arg), arg);
      if (config.idle_timeout_ms < 0) {
        usage_error("--idle-timeout-ms must be >= 0 (0 disables)");
      }
    } else if (arg == "--ledger") {
      config.ledger_path = value(arg);
      if (config.ledger_path.empty()) usage_error("--ledger: empty path");
    } else if (arg == "--trace-dir") {
      config.trace_dir = value(arg);
      if (config.trace_dir.empty()) usage_error("--trace-dir: empty path");
    } else if (arg == "--metrics") {
      metrics = true;
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }

  if (config.serve_binary.empty())
    config.serve_binary = sibling_serve_binary(argv[0]);
  if (::access(config.serve_binary.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "error: worker binary '%s' is not executable "
                 "(set --serve-bin)\n",
                 config.serve_binary.c_str());
    return 2;
  }

  soctest::install_shutdown_handlers();
  // The session must be live before start() so relay spans and counters
  // cover the whole run; the shard is written after serve() drains.
  std::unique_ptr<soctest::obs::TraceSink> sink;
  std::unique_ptr<soctest::obs::TraceSession> session;
  if (!config.trace_dir.empty()) {
    sink = std::make_unique<soctest::obs::TraceSink>();
    session = std::make_unique<soctest::obs::TraceSession>(sink.get());
  } else if (metrics) {
    session = std::make_unique<soctest::obs::TraceSession>(nullptr);
  }
  soctest::FrontDoor door(config);
  if (const soctest::Status s = door.start(); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("soctest-frontdoor: listening on %s\n", door.endpoint().c_str());
  std::fflush(stdout);

  const int exit_code = door.serve();

  if (sink != nullptr) {
    const std::string path = config.trace_dir + "/frontdoor-" +
                             std::to_string(::getpid()) + ".trace.json";
    std::ofstream out(path);
    if (out) {
      out << soctest::trace_json(*sink, "frontdoor") << "\n";
    } else {
      std::fprintf(stderr, "soctest-frontdoor: cannot write %s\n",
                   path.c_str());
    }
  }
  if (metrics) std::fputs(soctest::metrics_text().c_str(), stderr);

  std::fprintf(stderr, "%s\n",
               soctest::frontdoor_stats_line(door.stats()).c_str());
  return exit_code;
}
