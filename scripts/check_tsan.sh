#!/usr/bin/env bash
# Builds the concurrency-sensitive test suites under ThreadSanitizer and runs
# the ctest targets labeled `tsan` (parallel exact solver, portfolio racing,
# thread pool, shared-incumbent MIP). Opt-in: not part of the default build
# because TSan roughly 10x-es runtime.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DSOCTEST_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j \
  --target parallel_test exact_solver_test heuristics_test architect_test \
           branch_and_bound_test deadline_test fault_injection_test \
           pack_test frontdoor_test transport_test retry_test chaos_test \
           protocol_fuzz_test net_test soctest_perf_tool soctest_serve_tool \
           soctest_frontdoor_tool soctest_loadgen_tool soctest_chaos_tool \
           soctest_tool
# TSan runs 5-20x slower, so the perf gate compares deterministic counters
# only; the injected-slowdown negative pass still exercises the wall gate.
# The chaos soak rides along: fault injection is where transport races live.
SOCTEST_PERF_COUNTERS_ONLY=1 \
  ctest --test-dir "$BUILD_DIR" -L 'tsan|faults|perf|chaos|pack' \
        --output-on-failure -j "$(nproc)"
