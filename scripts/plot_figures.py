#!/usr/bin/env python3
"""Plot the CSV series emitted by the figure benches.

The fig* bench binaries print a "CSV series for plotting:" block after their
ASCII tables. Pipe a bench's output into this script (or pass a file) to get
a PNG per figure. Requires matplotlib; the repo itself never depends on it.

  ./build/bench/fig1_width_curve | scripts/plot_figures.py -o fig1.png
  scripts/plot_figures.py bench_output.txt -o figures/
"""

import argparse
import sys


def extract_csv_blocks(lines):
    """Yields (title, rows) for each CSV block in bench output."""
    title = "figure"
    block = []
    in_csv = False
    for line in lines:
        line = line.rstrip("\n")
        if line.startswith("==== "):
            title = line.strip("= ").strip()
        if in_csv:
            if "," in line:
                block.append(line.split(","))
                continue
            if block:
                yield title, block
            block, in_csv = [], False
        if line.startswith("CSV series for plotting"):
            in_csv = True
    if block:
        yield title, block


def plot_block(title, rows, path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    header, data = rows[0], rows[1:]
    xs, series = [], {name: [] for name in header[1:]}
    for row in data:
        try:
            x = float(row[0])
        except ValueError:
            continue
        xs.append(x)
        for name, cell in zip(header[1:], row[1:]):
            try:
                series[name].append(float(cell))
            except ValueError:
                series[name].append(None)
    fig, ax = plt.subplots(figsize=(7, 4.5))
    for name, ys in series.items():
        pts = [(x, y) for x, y in zip(xs, ys) if y is not None]
        if pts:
            ax.plot([p[0] for p in pts], [p[1] for p in pts], marker="o",
                    markersize=3, label=name)
    ax.set_xlabel(header[0])
    ax.set_title(title, fontsize=10)
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    fig.savefig(path, dpi=150)
    print(f"wrote {path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("input", nargs="?", help="bench output file (default stdin)")
    parser.add_argument("-o", "--output", default="figure.png",
                        help="output PNG, or a directory for multiple blocks")
    args = parser.parse_args()
    lines = open(args.input).readlines() if args.input else sys.stdin.readlines()
    blocks = list(extract_csv_blocks(lines))
    if not blocks:
        sys.exit("no CSV blocks found (run a fig* bench)")
    import os

    if os.path.isdir(args.output):
        for k, (title, rows) in enumerate(blocks):
            plot_block(title, rows, os.path.join(args.output, f"fig_{k}.png"))
    else:
        plot_block(*blocks[0], args.output)


if __name__ == "__main__":
    main()
