#!/usr/bin/env bash
# Fleet SLO gate (docs/operations.md). Run from anywhere:
#
#   scripts/check_slo.sh [repo-root] [soctest-frontdoor-binary] \
#       [soctest-loadgen-binary]
#
# Starts a front door with 2 workers, runs one warm-up pass and one measured
# soctest-loadgen pass with a fixed seed, and gates on *counters only*:
# every request must get a final response and the error, backpressure, and
# transport-failure counts must be zero. Latency percentiles and throughput
# are recorded in the service_slo row of BENCH_solvers.json for trending but
# are deliberately not thresholds — CI machines are too small and too noisy
# to gate on wall-clock (see scripts/check_perf.sh for the calibrated
# wall-time gate).
#
# Wired into ctest as the `perf` label: ctest -L perf

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
frontdoor_bin="${2:-$root/build/tools/soctest-frontdoor}"
loadgen_bin="${3:-$root/build/tools/soctest-loadgen}"

for bin in "$frontdoor_bin" "$loadgen_bin"; do
  if [ ! -x "$bin" ]; then
    echo "check_slo: FAILED ($bin not built)"
    exit 1
  fi
done

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

"$frontdoor_bin" --listen 127.0.0.1:0 --workers 2 --dir "$workdir/fleet" \
  > "$workdir/fd.out" 2> "$workdir/fd.err" &
fd_pid=$!
port=""
for _ in $(seq 100); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
         "$workdir/fd.out")
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "check_slo: FAILED (front door never announced its port)"
  cat "$workdir/fd.err"
  kill "$fd_pid" 2>/dev/null
  exit 1
fi

echo "== warm-up pass (fills every worker cache) =="
"$loadgen_bin" --connect "127.0.0.1:$port" --mode closed --connections 2 \
  --requests 100 --seed 1 > "$workdir/warmup.txt" 2>&1
if [ $? -ne 0 ]; then
  echo "check_slo: FAILED (warm-up pass lost requests)"
  cat "$workdir/warmup.txt"
  kill "$fd_pid" 2>/dev/null
  exit 1
fi

echo "== measured pass (fixed seed, counters-only gate) =="
"$loadgen_bin" --connect "127.0.0.1:$port" --mode closed --connections 4 \
  --requests 400 --seed 42 --json-out "$workdir/slo.json" \
  > "$workdir/measured.txt" 2>&1
code=$?
cat "$workdir/measured.txt"
kill -TERM "$fd_pid"
wait "$fd_pid"
fd_code=$?
if [ "$code" -ne 0 ]; then
  echo "check_slo: FAILED (measured pass: loadgen exited $code — a request" \
       "went unanswered or a connection broke)"
  exit 1
fi
if [ "$fd_code" -ne 0 ]; then
  echo "check_slo: FAILED (front door exited $fd_code after SIGTERM)"
  exit 1
fi
if grep -q '"errors":0' "$workdir/slo.json" \
  && grep -q '"rejected":0' "$workdir/slo.json" \
  && grep -q '"transport_errors":0' "$workdir/slo.json"; then
  :
else
  echo "check_slo: FAILED (non-zero error/backpressure counters)"
  cat "$workdir/slo.json"
  exit 1
fi

echo "check_slo: OK"
