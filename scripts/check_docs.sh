#!/usr/bin/env bash
# Keeps the docs honest against the source tree. Run from anywhere:
#
#   scripts/check_docs.sh [repo-root]
#
# Checks:
#   1. every src/<module> directory is named in docs/architecture.md;
#   2. every `soctest --flag` shown in a fenced code block of README.md,
#      DESIGN.md, or docs/*.md is actually recognized by the CLI parser
#      (src/cli/options.cpp);
#   3. every failpoint site in src/runtime/failpoint.hpp is documented in
#      docs/robustness.md (the catalog is the fault-injection contract);
#   4. every pinned ledger counter (kLedgerCounters in src/obs/ledger.hpp)
#      is documented in docs/observability.md AND actually emitted by the
#      instrumentation (an exact obs::counter("...") literal in src);
#   5. every `layer.component` metric prefix the instrumentation emits is
#      listed in docs/observability.md's naming table;
#   6. every `soctest-serve`/`soctest-frontdoor`/`soctest-loadgen` flag
#      shown in a fenced code block is parsed by that tool's source
#      (tools/soctest_<name>.cpp) — the operations runbook cannot drift
#      from the binaries it drives;
#   7. the service.* AND frontdoor.* metric catalogs in docs/service.md are
#      bidirectional against the emitted literals, and docs/operations.md
#      (the fleet runbook) exists.
#
# Wired into ctest as the `docs` label: ctest -L docs

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
fail=0

for dir in "$root"/src/*/; do
  mod=$(basename "$dir")
  if ! grep -q "src/$mod" "$root/docs/architecture.md"; then
    echo "FAIL: src/$mod is not mentioned in docs/architecture.md"
    fail=1
  fi
done

# Fenced code blocks only, with backslash continuations joined, lines that
# invoke soctest, their --flags.
soctest_flags() {
  awk '/^```/ { inblock = !inblock; next } inblock { print }' "$1" |
    sed -e ':a' -e '/\\$/N; s/\\\n/ /; ta' |
    grep -E '(^|[ /])soctest( |$)' |
    grep -oE '\-\-[a-z][a-z-]*' |
    sort -u
}

for doc in "$root"/README.md "$root"/DESIGN.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  for flag in $(soctest_flags "$doc"); do
    if ! grep -qF "\"$flag\"" "$root/src/cli/options.cpp"; then
      echo "FAIL: $(basename "$doc") documents soctest flag '$flag'," \
           "which src/cli/options.cpp does not parse"
      fail=1
    fi
  done
done

# Same idea for the fleet binaries: a documented flag the tool does not
# parse is a runbook that fails at 3am. $2 is the binary name as invoked.
binary_flags() {
  awk '/^```/ { inblock = !inblock; next } inblock { print }' "$1" |
    sed -e ':a' -e '/\\$/N; s/\\\n/ /; ta' |
    grep -E "(^|[ /])$2( |$)" |
    grep -oE '\-\-[a-z][a-z-]*' |
    sort -u
}

for tool in serve frontdoor loadgen chaos top; do
  tool_src="$root/tools/soctest_${tool}.cpp"
  for doc in "$root"/README.md "$root"/DESIGN.md "$root"/docs/*.md; do
    [ -f "$doc" ] || continue
    for flag in $(binary_flags "$doc" "soctest-$tool"); do
      if ! grep -qF "\"$flag\"" "$tool_src"; then
        echo "FAIL: $(basename "$doc") documents soctest-$tool flag" \
             "'$flag', which tools/soctest_${tool}.cpp does not parse"
        fail=1
      fi
    done
  done
done

if [ ! -f "$root/docs/operations.md" ]; then
  echo "FAIL: docs/operations.md is missing (the fleet runbook)"
  fail=1
fi

for site in $(grep -E '^inline constexpr const char\* k' \
                "$root/src/runtime/failpoint.hpp" |
                grep -oE '"[a-z.]+"' | tr -d '"' | sort -u); do
  if ! grep -qF "$site" "$root/docs/robustness.md"; then
    echo "FAIL: failpoint site '$site' (src/runtime/failpoint.hpp)" \
         "is not documented in docs/robustness.md"
    fail=1
  fi
done

# The ledger's pinned counter set is a cross-run schema: each name must be
# documented AND must match a literal the instrumentation really emits, or
# ledger records silently fill with zeros.
emitted_names=$(grep -rhoE 'obs::(counter|histogram)\("[a-z_.]+' \
                  "$root"/src/*/*.cpp |
                  sed -E 's/obs::(counter|histogram)\("//' | sort -u)
for name in $(sed -n '/kLedgerCounters\[\]/,/};/p' "$root/src/obs/ledger.hpp" |
                grep -oE '"[a-z_.]+"' | tr -d '"' | sort -u); do
  if ! grep -qF "$name" "$root/docs/observability.md"; then
    echo "FAIL: ledger counter '$name' (src/obs/ledger.hpp)" \
         "is not documented in docs/observability.md"
    fail=1
  fi
  if ! printf '%s\n' "$emitted_names" | grep -qxF "$name"; then
    echo "FAIL: ledger counter '$name' (src/obs/ledger.hpp) is not emitted" \
         "by any obs::counter(...) literal in src — records would pin zeros"
    fail=1
  fi
done

# The service metric catalog (docs/service.md) is bidirectional: every
# emitted service.* counter/histogram must be documented there, and every
# documented service.* name must still be emitted (spans count — they are
# instrumentation too, via obs::Span literals).
service_doc="$root/docs/service.md"
if [ -f "$service_doc" ]; then
  service_emitted=$( { printf '%s\n' "$emitted_names" | grep -E '^service\.';
                       grep -rhoE 'obs::Span[^"]*"service\.[a-z_.]+' \
                         "$root"/src/*/*.cpp | grep -oE 'service\.[a-z_.]+'; } |
                     sort -u )
  for name in $service_emitted; do
    if ! grep -qF "\`$name\`" "$service_doc"; then
      echo "FAIL: service metric '$name' is emitted by src/service but not" \
           "documented in docs/service.md"
      fail=1
    fi
  done
  # NB: the backtick is literal inside single quotes and must NOT be
  # backslash-escaped — grep -E would read \` as its start-of-input anchor
  # and the doc-side extraction would silently match nothing.
  for name in $(grep -oE '`service\.[a-z_.]+`' "$service_doc" |
                  tr -d '`' | sort -u); do
    if ! printf '%s\n' "$service_emitted" | grep -qxF "$name"; then
      echo "FAIL: docs/service.md documents service metric '$name', which" \
           "no obs::counter/histogram/Span literal in src emits"
      fail=1
    fi
  done
  # frontdoor.* gets the same bidirectional treatment: the front door's
  # counters are the fleet's only aggregate view, so the catalog in
  # docs/service.md must match the emitted set exactly. Its relay/queue
  # spans are emitted at settle time via obs::emit_span (the poll loop
  # cannot hold Span objects across ticks), so those literals count too.
  frontdoor_emitted=$( { printf '%s\n' "$emitted_names" |
                           grep -E '^frontdoor\.' || true;
                         grep -rhoE 'obs::(Span|emit_span)\("frontdoor\.[a-z_.]+' \
                           "$root"/src/*/*.cpp |
                           grep -oE 'frontdoor\.[a-z_.]+' || true; } |
                       sort -u)
  for name in $frontdoor_emitted; do
    if ! grep -qF "\`$name\`" "$service_doc"; then
      echo "FAIL: front-door metric '$name' is emitted by src/service but" \
           "not documented in docs/service.md"
      fail=1
    fi
  done
  for name in $(grep -oE '`frontdoor\.[a-z_.]+`' "$service_doc" |
                  tr -d '`' | sort -u); do
    if ! printf '%s\n' "$frontdoor_emitted" | grep -qxF "$name"; then
      echo "FAIL: docs/service.md documents front-door metric '$name'," \
           "which no obs::counter literal in src emits"
      fail=1
    fi
  done
  # The soctest-stats-v1 field catalog: kStatsFields (the union of probe,
  # serve-reply, and merged-reply members in src/service/protocol.hpp)
  # must match the delimited schema table in docs/service.md exactly, in
  # both directions — soctest-top renders from these names.
  stats_src=$(sed -n '/kStatsFields\[\]/,/};/p' \
                "$root/src/service/protocol.hpp" |
                grep -oE '"[a-z_0-9]+"' | tr -d '"' | sort -u)
  stats_doc=$(sed -n '/<!-- stats-fields-begin -->/,/<!-- stats-fields-end -->/p' \
                "$service_doc" | grep -oE '`[a-z_0-9]+`' | tr -d '`' |
                sort -u)
  for name in $stats_src; do
    if ! printf '%s\n' "$stats_doc" | grep -qxF "$name"; then
      echo "FAIL: soctest-stats-v1 field '$name' (kStatsFields) is missing" \
           "from the delimited catalog in docs/service.md"
      fail=1
    fi
  done
  for name in $stats_doc; do
    if ! printf '%s\n' "$stats_src" | grep -qxF "$name"; then
      echo "FAIL: docs/service.md documents soctest-stats-v1 field '$name'," \
           "which kStatsFields (src/service/protocol.hpp) does not list"
      fail=1
    fi
  done
  # The accepted --solver names: the CLI parser's dispatch chain
  # (src/cli/options.cpp) vs the delimited catalog in docs/service.md,
  # diffed both ways — a solver the docs do not name is undiscoverable,
  # and a documented name the parser rejects is a lying runbook.
  solver_src=$(sed -n '/arg == "--solver"/,/unknown solver/p' \
                 "$root/src/cli/options.cpp" |
                 grep -oE 'name == "[a-z-]+"' | grep -oE '"[a-z-]+"' |
                 tr -d '"' | sort -u)
  # The markers sit inside one table cell, so extract within the line (a
  # sed address range would run to EOF when begin and end share a line).
  solver_doc=$(sed -n 's/.*<!-- solver-names-begin -->\(.*\)<!-- solver-names-end -->.*/\1/p' \
                 "$service_doc" |
                 grep -oE '`[a-z-]+`' | tr -d '`' | sort -u)
  if [ -z "$solver_doc" ]; then
    echo "FAIL: docs/service.md has no solver-names-begin/end catalog"
    fail=1
  fi
  for name in $solver_src; do
    if ! printf '%s\n' "$solver_doc" | grep -qxF "$name"; then
      echo "FAIL: the CLI parses --solver $name (src/cli/options.cpp) but" \
           "the delimited solver catalog in docs/service.md omits it"
      fail=1
    fi
  done
  for name in $solver_doc; do
    if ! printf '%s\n' "$solver_src" | grep -qxF "$name"; then
      echo "FAIL: docs/service.md documents solver '$name', which" \
           "src/cli/options.cpp does not parse"
      fail=1
    fi
  done
else
  echo "FAIL: docs/service.md is missing (the service metric catalog)"
  fail=1
fi

# The chaos-engineering contract (docs/robustness.md) is bidirectional the
# same way: the fault-injection counters (chaos.faults.*) and the resilient
# client's counters (client.retry.*) are what a soak run is judged by, so
# the doc and the instrumentation must agree exactly in both directions.
robustness_doc="$root/docs/robustness.md"
if [ -f "$robustness_doc" ]; then
  for pat in '^chaos\.faults\.' '^client\.retry\.'; do
    pat_emitted=$(printf '%s\n' "$emitted_names" | grep -E "$pat" || true)
    for name in $pat_emitted; do
      if ! grep -qF "\`$name\`" "$robustness_doc"; then
        echo "FAIL: metric '$name' is emitted by src/service but not" \
             "documented in docs/robustness.md"
        fail=1
      fi
    done
    for name in $(grep -oE "\`${pat#^}[a-z_.]+\`" "$robustness_doc" |
                    tr -d '\`' | sort -u); do
      if ! printf '%s\n' "$pat_emitted" | grep -qxF "$name"; then
        echo "FAIL: docs/robustness.md documents metric '$name', which no" \
             "obs::counter literal in src emits"
        fail=1
      fi
    done
  done
else
  echo "FAIL: docs/robustness.md is missing (the chaos/retry contract)"
  fail=1
fi

# Every emitted layer.component prefix must be in the naming table, so the
# metric catalog cannot rot as instrumentation grows.
for prefix in $(printf '%s\n' "$emitted_names" |
                  sed -E 's/^([a-z]+\.[a-z_]+)\..*/\1/' | sort -u); do
  if ! grep -qF "$prefix." "$root/docs/observability.md"; then
    echo "FAIL: metric prefix '$prefix.*' is emitted by src but missing" \
         "from docs/observability.md's naming table"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"
