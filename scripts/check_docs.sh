#!/usr/bin/env bash
# Keeps the docs honest against the source tree. Run from anywhere:
#
#   scripts/check_docs.sh [repo-root]
#
# Checks:
#   1. every src/<module> directory is named in docs/architecture.md;
#   2. every `soctest --flag` shown in a fenced code block of README.md,
#      DESIGN.md, or docs/*.md is actually recognized by the CLI parser
#      (src/cli/options.cpp);
#   3. every failpoint site in src/runtime/failpoint.hpp is documented in
#      docs/robustness.md (the catalog is the fault-injection contract).
#
# Wired into ctest as the `docs` label: ctest -L docs

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
fail=0

for dir in "$root"/src/*/; do
  mod=$(basename "$dir")
  if ! grep -q "src/$mod" "$root/docs/architecture.md"; then
    echo "FAIL: src/$mod is not mentioned in docs/architecture.md"
    fail=1
  fi
done

# Fenced code blocks only, with backslash continuations joined, lines that
# invoke soctest, their --flags.
soctest_flags() {
  awk '/^```/ { inblock = !inblock; next } inblock { print }' "$1" |
    sed -e ':a' -e '/\\$/N; s/\\\n/ /; ta' |
    grep -E '(^|[ /])soctest( |$)' |
    grep -oE '\-\-[a-z][a-z-]*' |
    sort -u
}

for doc in "$root"/README.md "$root"/DESIGN.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  for flag in $(soctest_flags "$doc"); do
    if ! grep -qF "\"$flag\"" "$root/src/cli/options.cpp"; then
      echo "FAIL: $(basename "$doc") documents soctest flag '$flag'," \
           "which src/cli/options.cpp does not parse"
      fail=1
    fi
  done
done

for site in $(grep -E '^inline constexpr const char\* k' \
                "$root/src/runtime/failpoint.hpp" |
                grep -oE '"[a-z.]+"' | tr -d '"' | sort -u); do
  if ! grep -qF "$site" "$root/docs/robustness.md"; then
    echo "FAIL: failpoint site '$site' (src/runtime/failpoint.hpp)" \
         "is not documented in docs/robustness.md"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: OK"
