#!/usr/bin/env bash
# Chaos soak gate (docs/robustness.md). Run from anywhere:
#
#   scripts/check_chaos.sh [repo-root] [soctest-serve-binary] \
#       [soctest-frontdoor-binary] [soctest-chaos-binary] \
#       [soctest-loadgen-binary] [soctest-binary]
#
# Four passes, all through the deterministic fault-injecting soctest-chaos
# proxy:
#
#   0. fault-free wire fidelity — a batch through an all-probabilities-zero
#      proxy must be byte-identical to a direct connection (the proxy, and
#      the retrying client behind it, are invisible when nothing breaks)
#   1. full-fault soak — drops, torn writes, delays, garbage lines, and
#      half-open connections against a 2-worker fleet; every request must
#      be answered exactly once and the client must never give up
#   2. streaming monotonicity — soctest-partial-v1 streams replayed through
#      connection drops must stay strictly seq-increasing with
#      non-increasing t_cycles per id (resends erase stale partials)
#   3. hung-worker liveness — SIGSTOP a worker mid-soak; the front door's
#      heartbeat must detect it, SIGKILL + respawn the shard, retry the
#      in-flight work, and report `hung >= 1` in its drain stats line
#
# Wired into ctest as the `chaos` label: ctest -L chaos

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
serve_bin="${2:-$root/build/tools/soctest-serve}"
frontdoor_bin="${3:-$root/build/tools/soctest-frontdoor}"
chaos_bin="${4:-$root/build/tools/soctest-chaos}"
loadgen_bin="${5:-$root/build/tools/soctest-loadgen}"
soctest_bin="${6:-$root/build/tools/soctest}"

for bin in "$serve_bin" "$frontdoor_bin" "$chaos_bin" "$loadgen_bin" \
           "$soctest_bin"; do
  if [ ! -x "$bin" ]; then
    echo "check_chaos: FAILED ($bin not built)"
    exit 1
  fi
done

workdir=$(mktemp -d)
pids=""
cleanup() {
  for pid in $pids; do
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

# Waits for "listening on 127.0.0.1:PORT" on $1's stdout; echoes the port.
await_port() {
  local out="$1" port=""
  for _ in $(seq 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$out")
    [ -n "$port" ] && break
    sleep 0.1
  done
  echo "$port"
}

fail() {
  echo "check_chaos: FAILED ($1)"
  shift
  for f in "$@"; do
    echo "---- $f ----"
    cat "$f"
  done
  exit 1
}

# ------------------------------------------------------------------------
echo "== pass 0: fault-free proxy is a byte-identical wire =="
# no_cache pins "cached":false so the direct (cold) and proxied (warm)
# runs against the same serial server compare byte-for-byte.
for i in $(seq 0 7); do
  soc="soc$(( (i % 3) + 1 ))"
  printf '{"schema":"soctest-req-v1","id":"wire-%d","soc":"%s","solver":"greedy","no_cache":true}\n' \
    "$i" "$soc"
done > "$workdir/wire.jsonl"

"$serve_bin" --tcp 127.0.0.1:0 --serial > "$workdir/serve0.out" \
  2> "$workdir/serve0.err" &
serve_pid=$!
pids="$serve_pid"
serve_port=$(await_port "$workdir/serve0.out")
[ -n "$serve_port" ] || fail "serve never announced its port" \
  "$workdir/serve0.err"

"$chaos_bin" --listen 127.0.0.1:0 --connect "127.0.0.1:$serve_port" \
  --seed 1 > "$workdir/chaos0.out" 2> "$workdir/chaos0.err" &
chaos_pid=$!
pids="$pids $chaos_pid"
chaos_port=$(await_port "$workdir/chaos0.out")
[ -n "$chaos_port" ] || fail "fault-free chaos proxy never announced" \
  "$workdir/chaos0.err"

"$soctest_bin" --client "127.0.0.1:$serve_port" --batch "$workdir/wire.jsonl" \
  > "$workdir/direct.out" 2> "$workdir/direct.err" \
  || fail "direct batch failed" "$workdir/direct.err"
"$soctest_bin" --client "127.0.0.1:$chaos_port" --batch "$workdir/wire.jsonl" \
  > "$workdir/proxied.out" 2> "$workdir/proxied.err" \
  || fail "proxied batch failed" "$workdir/proxied.err"
cmp -s "$workdir/direct.out" "$workdir/proxied.out" \
  || fail "fault-free proxy altered the response stream" \
          "$workdir/direct.out" "$workdir/proxied.out"

kill -TERM "$chaos_pid"; wait "$chaos_pid"
kill -TERM "$serve_pid"; wait "$serve_pid" \
  || fail "serve exited non-zero after pass 0" "$workdir/serve0.err"
pids=""

# ------------------------------------------------------------------------
echo "== pass 1: full-fault soak against a 2-worker fleet =="
"$frontdoor_bin" --listen 127.0.0.1:0 --workers 2 --serial-workers \
  --dir "$workdir/fleet1" --heartbeat-ms 200 --heartbeat-timeout-ms 4000 \
  > "$workdir/fd1.out" 2> "$workdir/fd1.err" &
fd_pid=$!
pids="$fd_pid"
fd_port=$(await_port "$workdir/fd1.out")
[ -n "$fd_port" ] || fail "front door never announced its port" \
  "$workdir/fd1.err"

"$chaos_bin" --listen 127.0.0.1:0 --connect "127.0.0.1:$fd_port" --seed 7 \
  --drop-prob 0.25 --tear-prob 0.3 --delay-prob 0.3 --garbage-prob 0.2 \
  --halfopen-prob 0.1 --stall-ms 5 --delay-ms 2 \
  > "$workdir/chaos1.out" 2> "$workdir/chaos1.err" &
chaos_pid=$!
pids="$pids $chaos_pid"
chaos_port=$(await_port "$workdir/chaos1.out")
[ -n "$chaos_port" ] || fail "soak chaos proxy never announced" \
  "$workdir/chaos1.err"

"$loadgen_bin" --connect "127.0.0.1:$chaos_port" --mode closed \
  --connections 4 --requests 300 --seed 42 --retries 8 \
  --retry-backoff-ms 5 --response-timeout-ms 2000 \
  --json-out "$workdir/soak.json" > "$workdir/soak.txt" 2>&1
code=$?
cat "$workdir/soak.txt"
[ "$code" -eq 0 ] \
  || fail "soak loadgen exited $code — a request was lost or duplicated" \
          "$workdir/soak.txt" "$workdir/chaos1.err" "$workdir/fd1.err"
grep -q '"retry_gave_up":0' "$workdir/soak.json" \
  || fail "client gave up under the fault mix" "$workdir/soak.json"
grep -q '"transport_errors":0' "$workdir/soak.json" \
  || fail "soak saw transport errors" "$workdir/soak.json"

kill -TERM "$chaos_pid"; wait "$chaos_pid"
cat "$workdir/chaos1.err"
kill -TERM "$fd_pid"; wait "$fd_pid" \
  || fail "front door exited non-zero after the soak" "$workdir/fd1.err"
pids=""

# ------------------------------------------------------------------------
echo "== pass 2: partial streams stay monotone through drops =="
"$serve_bin" --tcp 127.0.0.1:0 --serial > "$workdir/serve2.out" \
  2> "$workdir/serve2.err" &
serve_pid=$!
pids="$serve_pid"
serve_port=$(await_port "$workdir/serve2.out")
[ -n "$serve_port" ] || fail "stream serve never announced" \
  "$workdir/serve2.err"

"$chaos_bin" --listen 127.0.0.1:0 --connect "127.0.0.1:$serve_port" --seed 5 \
  --drop-prob 0.5 --tear-prob 0.5 --garbage-prob 0.5 --stall-ms 5 \
  > "$workdir/chaos2.out" 2> "$workdir/chaos2.err" &
chaos_pid=$!
pids="$pids $chaos_pid"
chaos_port=$(await_port "$workdir/chaos2.out")
[ -n "$chaos_port" ] || fail "stream chaos proxy never announced" \
  "$workdir/chaos2.err"

"$soctest_bin" --client "127.0.0.1:$chaos_port" \
  --batch "$root/data/chaos_stream.jsonl" --retries 12 \
  --retry-backoff-ms 5 --response-timeout-ms 4000 \
  > "$workdir/stream.out" 2> "$workdir/stream.err" \
  || fail "streaming batch failed through chaos" "$workdir/stream.err" \
          "$workdir/chaos2.err"

finals=$(grep -c '"schema":"soctest-resp-v1"' "$workdir/stream.out")
[ "$finals" -eq 5 ] \
  || fail "expected 5 finals, got $finals" "$workdir/stream.out"
partials=$(grep -c '"schema":"soctest-partial-v1"' "$workdir/stream.out")
[ "$partials" -ge 1 ] \
  || fail "no partials survived the chaos run" "$workdir/stream.out"

# Per id: seq strictly increasing, t_cycles (incumbent cost) non-increasing.
# A replay after a drop must not leak the previous attempt's stale stream.
grep '"schema":"soctest-partial-v1"' "$workdir/stream.out" \
  | sed -n 's/.*"id":"\([^"]*\)".*"seq":\([0-9]*\).*"t_cycles":\([0-9]*\).*/\1 \2 \3/p' \
  | awk '
      ($1 in seq) && $2 <= seq[$1] {
        print "seq regression for " $1 ": " seq[$1] " -> " $2; bad = 1 }
      ($1 in tc) && $3 > tc[$1] {
        print "t_cycles regression for " $1 ": " tc[$1] " -> " $3; bad = 1 }
      { seq[$1] = $2; tc[$1] = $3 }
      END { exit bad }' \
  || fail "partial stream lost monotonicity" "$workdir/stream.out"

kill -TERM "$chaos_pid"; wait "$chaos_pid"
kill -TERM "$serve_pid"; wait "$serve_pid" \
  || fail "serve exited non-zero after pass 2" "$workdir/serve2.err"
pids=""

# ------------------------------------------------------------------------
echo "== pass 3: SIGSTOP'd worker is detected, replaced, and drained =="
"$frontdoor_bin" --listen 127.0.0.1:0 --workers 2 --serial-workers \
  --dir "$workdir/fleet3" --heartbeat-ms 200 --heartbeat-timeout-ms 1000 \
  > "$workdir/fd3.out" 2> "$workdir/fd3.err" &
fd_pid=$!
pids="$fd_pid"
fd_port=$(await_port "$workdir/fd3.out")
[ -n "$fd_port" ] || fail "liveness front door never announced" \
  "$workdir/fd3.err"

# Freeze a worker BEFORE the load starts: every request hashed to its
# shard is in flight against a hung process until the heartbeat notices,
# SIGKILLs it, respawns the shard, and retries the stranded work.
worker_pid=$(pgrep -P "$fd_pid" | head -n 1)
[ -n "$worker_pid" ] || fail "no worker process found to stop" \
  "$workdir/fd3.err"
kill -STOP "$worker_pid"

"$loadgen_bin" --connect "127.0.0.1:$fd_port" --mode closed \
  --connections 4 --requests 400 --seed 9 --retries 8 \
  --retry-backoff-ms 5 --response-timeout-ms 3000 \
  > "$workdir/liveness.txt" 2>&1
code=$?
cat "$workdir/liveness.txt"
[ "$code" -eq 0 ] \
  || fail "loadgen exited $code with a worker frozen — in-flight work lost" \
          "$workdir/liveness.txt" "$workdir/fd3.err"

# Give the heartbeat a chance to flag the frozen worker even if the load
# finished before the silence threshold elapsed.
for _ in $(seq 50); do
  if ! kill -0 "$worker_pid" 2>/dev/null; then break; fi
  sleep 0.1
done

kill -TERM "$fd_pid"; wait "$fd_pid" \
  || fail "front door exited non-zero after the liveness drain" \
          "$workdir/fd3.err"
pids=""
# The drain stats line is name-sorted, so "hung" sits mid-line: "... N
# forwarded, N hung, N partials, ...".
hung=$(sed -n 's/.* \([0-9][0-9]*\) hung,.*/\1/p' "$workdir/fd3.err" | tail -n 1)
[ -n "$hung" ] && [ "$hung" -ge 1 ] \
  || fail "front door never counted the frozen worker as hung" \
          "$workdir/fd3.err"

echo "check_chaos: OK"
