#!/usr/bin/env bash
# Distributed-tracing gate (docs/observability.md). Run from anywhere:
#
#   scripts/check_trace.sh [repo-root] [soctest-serve-binary] \
#       [soctest-frontdoor-binary] [soctest-loadgen-binary] \
#       [soctest-chaos-binary] [soctest-binary] [soctest-perf-binary] \
#       [soctest-top-binary]
#
# Two passes:
#
#   1. waterfall completeness — a fixed-seed fully-sampled loadgen batch
#      through a front door + 2 workers (every process writing its
#      soctest-trace-v1 shard into one directory); `soctest-perf
#      trace-merge` must join the shards with zero dangling parent links,
#      every sampled trace must carry client, frontdoor, AND worker spans,
#      and re-merging the same shards must be byte-identical. While the
#      fleet is still up, `soctest-top --once --json` must return a merged
#      soctest-stats-v1 reply with one entry per worker shard.
#   2. tracing under chaos — a sampled `soctest --client` batch through a
#      dropping soctest-chaos proxy with retries: exactly one final per
#      request, and the merged timeline shows >= 2 sibling client.attempt
#      spans under at least one trace (the retry is visible, not hidden).
#
# Wired into ctest as the `obs` label: ctest -L obs

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
serve_bin="${2:-$root/build/tools/soctest-serve}"
frontdoor_bin="${3:-$root/build/tools/soctest-frontdoor}"
loadgen_bin="${4:-$root/build/tools/soctest-loadgen}"
chaos_bin="${5:-$root/build/tools/soctest-chaos}"
soctest_bin="${6:-$root/build/tools/soctest}"
perf_bin="${7:-$root/build/tools/soctest-perf}"
top_bin="${8:-$root/build/tools/soctest-top}"

for bin in "$serve_bin" "$frontdoor_bin" "$loadgen_bin" "$chaos_bin" \
           "$soctest_bin" "$perf_bin" "$top_bin"; do
  if [ ! -x "$bin" ]; then
    echo "check_trace: FAILED ($bin not built)"
    exit 1
  fi
done

workdir=$(mktemp -d)
pids=""
cleanup() {
  for pid in $pids; do
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
  done
  rm -rf "$workdir"
}
trap cleanup EXIT

await_port() {
  local out="$1" port=""
  for _ in $(seq 100); do
    port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$out")
    [ -n "$port" ] && break
    sleep 0.1
  done
  echo "$port"
}

fail() {
  echo "check_trace: FAILED ($1)"
  shift
  for f in "$@"; do
    echo "---- $f ----"
    cat "$f"
  done
  exit 1
}

# ------------------------------------------------------------------------
echo "== pass 1: every sampled trace spans client, frontdoor, and worker =="
mkdir -p "$workdir/traces1"
"$frontdoor_bin" --listen 127.0.0.1:0 --workers 2 --serial-workers \
  --dir "$workdir/fleet1" --trace-dir "$workdir/traces1" \
  > "$workdir/fd1.out" 2> "$workdir/fd1.err" &
fd_pid=$!
pids="$fd_pid"
fd_port=$(await_port "$workdir/fd1.out")
[ -n "$fd_port" ] || fail "front door never announced its port" \
  "$workdir/fd1.err"

"$loadgen_bin" --connect "127.0.0.1:$fd_port" --mode closed \
  --connections 2 --requests 24 --seed 11 --trace-sample 1 \
  --trace-dir "$workdir/traces1" > "$workdir/lg1.txt" 2>&1 \
  || fail "traced loadgen batch failed" "$workdir/lg1.txt" "$workdir/fd1.err"

# Live scrape before the drain: the merged reply must cover both shards.
"$top_bin" --connect "127.0.0.1:$fd_port" --once --json \
  > "$workdir/top.json" 2> "$workdir/top.err" \
  || fail "soctest-top scrape failed" "$workdir/top.err" "$workdir/fd1.err"
grep -q '"schema":"soctest-stats-v1"' "$workdir/top.json" \
  || fail "soctest-top reply is not soctest-stats-v1" "$workdir/top.json"
grep -q '"role":"frontdoor"' "$workdir/top.json" \
  || fail "soctest-top reply is not the front door's merge" "$workdir/top.json"
for shard in 0 1; do
  grep -q "\"shard\":$shard" "$workdir/top.json" \
    || fail "merged stats miss shard $shard" "$workdir/top.json"
done
for field in req_rate cache_hit_rate p95_ms queue_depth; do
  grep -q "\"$field\":" "$workdir/top.json" \
    || fail "merged stats miss the $field field" "$workdir/top.json"
done
# Scrape totals must reconcile with what loadgen actually sent: all 24
# requests completed inside the 60 s window of a seconds-old fleet.
grep -q '"completed":24' "$workdir/top.json" \
  || fail "front door scrape does not report the 24 completed requests" \
          "$workdir/top.json" "$workdir/lg1.txt"

kill -TERM "$fd_pid"; wait "$fd_pid" \
  || fail "front door exited non-zero" "$workdir/fd1.err"
pids=""

shards=$(ls "$workdir/traces1" | wc -l)
[ "$shards" -eq 4 ] \
  || fail "expected 4 trace shards (loadgen, frontdoor, 2 workers), got $shards" \
          "$workdir/fd1.err"

"$perf_bin" trace-merge "$workdir/traces1" --out "$workdir/merged1.json" \
  > "$workdir/merge1.txt" \
  || fail "trace-merge found dangling parent links" "$workdir/merge1.txt"
cat "$workdir/merge1.txt"
grep -q 'dangling_parents=0' "$workdir/merge1.txt" \
  || fail "merge summary reports dangling parents" "$workdir/merge1.txt"
grep -q 'traces=24' "$workdir/merge1.txt" \
  || fail "expected 24 sampled traces in the merge" "$workdir/merge1.txt"

# Byte-identical re-merge: the timeline is a pure function of the shards.
"$perf_bin" trace-merge "$workdir/traces1" --out "$workdir/merged1b.json" \
  > /dev/null
cmp -s "$workdir/merged1.json" "$workdir/merged1b.json" \
  || fail "re-merging the same shards changed the output"

# Every trace must be complete: client, frontdoor, and worker each
# contributed at least one span (cat = the shard's fleet role).
python3 - "$workdir/merged1.json" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
roles = {}
for e in doc["traceEvents"]:
    if e.get("ph") != "X":
        continue
    tid = e.get("args", {}).get("trace_id")
    if tid:
        roles.setdefault(tid, set()).add(e.get("cat"))
bad = {t: sorted(r) for t, r in roles.items()
       if not {"client", "frontdoor", "serve"} <= r}
if bad:
    print("check_trace: incomplete traces:", bad)
    sys.exit(1)
print(f"check_trace: {len(roles)} traces complete across client/frontdoor/serve")
EOF
[ $? -eq 0 ] || fail "a sampled trace is missing a fleet role" \
  "$workdir/merge1.txt"

# ------------------------------------------------------------------------
echo "== pass 2: retries stay visible as sibling attempt spans =="
mkdir -p "$workdir/traces2"
"$serve_bin" --tcp 127.0.0.1:0 --serial --trace-dir "$workdir/traces2" \
  > "$workdir/serve2.out" 2> "$workdir/serve2.err" &
serve_pid=$!
pids="$serve_pid"
serve_port=$(await_port "$workdir/serve2.out")
[ -n "$serve_port" ] || fail "chaos-pass serve never announced" \
  "$workdir/serve2.err"

"$chaos_bin" --listen 127.0.0.1:0 --connect "127.0.0.1:$serve_port" --seed 5 \
  --drop-prob 0.5 --tear-prob 0.5 --stall-ms 5 > "$workdir/chaos2.out" \
  2> "$workdir/chaos2.err" &
chaos_pid=$!
pids="$pids $chaos_pid"
chaos_port=$(await_port "$workdir/chaos2.out")
[ -n "$chaos_port" ] || fail "chaos proxy never announced" \
  "$workdir/chaos2.err"

for i in $(seq 0 7); do
  soc="soc$(( (i % 3) + 1 ))"
  printf '{"schema":"soctest-req-v1","id":"tr-%d","soc":"%s","solver":"greedy"}\n' \
    "$i" "$soc"
done > "$workdir/batch2.jsonl"

"$soctest_bin" --client "127.0.0.1:$chaos_port" \
  --batch "$workdir/batch2.jsonl" --trace-sample 1 \
  --trace "$workdir/traces2/client.trace.json" --retries 10 \
  --retry-backoff-ms 5 --response-timeout-ms 2000 \
  > "$workdir/client2.out" 2> "$workdir/client2.err" \
  || fail "traced batch through chaos failed" "$workdir/client2.err" \
          "$workdir/chaos2.err"

finals=$(grep -c '"schema":"soctest-resp-v1"' "$workdir/client2.out")
[ "$finals" -eq 8 ] \
  || fail "expected exactly 8 finals through chaos, got $finals" \
          "$workdir/client2.out"

kill -TERM "$chaos_pid"; wait "$chaos_pid"
kill -TERM "$serve_pid"; wait "$serve_pid" \
  || fail "serve exited non-zero after the chaos pass" "$workdir/serve2.err"
pids=""

"$perf_bin" trace-merge "$workdir/traces2" --out "$workdir/merged2.json" \
  > "$workdir/merge2.txt" \
  || fail "chaos-pass trace-merge found dangling links" "$workdir/merge2.txt"
cat "$workdir/merge2.txt"

# One final per trace, and at least one trace with >= 2 sibling attempts:
# drops force resends, and each resend closes a client.attempt span under
# the same client.request parent.
python3 - "$workdir/merged2.json" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
finals, attempts = {}, {}
for e in doc["traceEvents"]:
    if e.get("ph") != "X":
        continue
    tid = e.get("args", {}).get("trace_id")
    if not tid:
        continue
    if e["name"] == "service.request":
        finals[tid] = finals.get(tid, 0) + 1
    if e["name"] == "client.attempt":
        attempts[tid] = attempts.get(tid, 0) + 1
dup = {t: n for t, n in finals.items() if n > 1}
# A dropped-then-replayed request may run on the worker twice; the client
# settles exactly one final, which is what pass-2's finals count pinned.
retried = [t for t, n in attempts.items() if n >= 2]
if not retried:
    print("check_trace: no trace recorded >= 2 client.attempt spans "
          f"(attempts: {attempts})")
    sys.exit(1)
print(f"check_trace: {len(retried)} of {len(attempts)} traces show retry "
      "attempts as sibling spans")
EOF
[ $? -eq 0 ] || fail "retry attempts are not visible in the merged timeline" \
  "$workdir/merge2.txt"

echo "check_trace: OK"
