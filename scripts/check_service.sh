#!/usr/bin/env bash
# End-to-end smoke test of the solve service (docs/service.md). Run from
# anywhere:
#
#   scripts/check_service.sh [repo-root] [soctest-serve-binary] \
#       [soctest-binary] [soctest-frontdoor-binary]
#
# Pass 1 (stdio, serial): fires the 56-request duplicate-heavy fixture
#   data/service_batch.jsonl through `soctest-serve --stdio --serial` twice
#   and asserts every line gets a valid soctest-resp-v1 response, the cache
#   hit share clears 40%, and the two response streams are byte-identical
#   (the serial determinism contract).
# Pass 2 (socket): starts a concurrent socket server, runs the same batch
#   through `soctest --client --batch`, then SIGTERMs the server and asserts
#   a clean drain (exit 0, every request answered).
# Pass 3 (TCP front door): starts `soctest-frontdoor` with 2 serial workers,
#   runs the batch fixture plus the streaming fixture data/service_stream.jsonl
#   over TCP, asserts at least one soctest-partial-v1 record reaches the
#   client, that two warm reruns produce identical sorted response sets
#   (workers interleave, so order is compared after sort), and a clean
#   SIGTERM drain of the whole fleet.
#
# Wired into ctest as the `service` label: ctest -L service

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
serve_bin="${2:-$root/build/tools/soctest-serve}"
cli_bin="${3:-$root/build/tools/soctest}"
frontdoor_bin="${4:-$root/build/tools/soctest-frontdoor}"
fixture="$root/data/service_batch.jsonl"
stream_fixture="$root/data/service_stream.jsonl"

for bin in "$serve_bin" "$cli_bin" "$frontdoor_bin"; do
  if [ ! -x "$bin" ]; then
    echo "check_service: FAILED ($bin not built)"
    exit 1
  fi
done

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

requests=$(wc -l < "$fixture")

echo "== pass 1: stdio serial batch ($requests requests) =="
"$serve_bin" --stdio --serial < "$fixture" > "$workdir/resp1.jsonl" \
  2> "$workdir/stats1.txt"
code=$?
if [ "$code" -ne 0 ]; then
  echo "check_service: FAILED (serial server exited $code)"
  exit 1
fi
responses=$(grep -c '"schema":"soctest-resp-v1"' "$workdir/resp1.jsonl")
if [ "$responses" -ne "$requests" ]; then
  echo "check_service: FAILED ($responses of $requests requests got a" \
       "valid soctest-resp-v1 response)"
  exit 1
fi
hits=$(grep -c '"cached":true' "$workdir/resp1.jsonl")
# >= 40% of the whole batch must be cache hits (the fixture is
# duplicate-heavy by construction; threshold = requests * 2 / 5).
want=$((requests * 2 / 5))
if [ "$hits" -lt "$want" ]; then
  echo "check_service: FAILED (cache hits $hits < $want of $requests)"
  exit 1
fi
echo "   $responses/$requests responses valid, $hits cache hits"

echo "== pass 1b: serial responses are byte-identical across runs =="
"$serve_bin" --stdio --serial < "$fixture" > "$workdir/resp2.jsonl" \
  2> /dev/null
if ! cmp -s "$workdir/resp1.jsonl" "$workdir/resp2.jsonl"; then
  echo "check_service: FAILED (serial mode response streams differ)"
  diff "$workdir/resp1.jsonl" "$workdir/resp2.jsonl" | head -5
  exit 1
fi
echo "   identical"

echo "== pass 2: socket server, client batch, SIGTERM drain =="
sock="$workdir/soctest.sock"
"$serve_bin" --socket "$sock" --workers 2 --ledger "$workdir/runs.jsonl" \
  2> "$workdir/stats2.txt" &
server_pid=$!
for _ in $(seq 50); do
  [ -S "$sock" ] && break
  sleep 0.1
done
if [ ! -S "$sock" ]; then
  echo "check_service: FAILED (socket never appeared)"
  kill "$server_pid" 2>/dev/null
  exit 1
fi
"$cli_bin" --client "$sock" --batch "$fixture" > "$workdir/resp3.jsonl"
client_code=$?
responses=$(grep -c '"schema":"soctest-resp-v1"' "$workdir/resp3.jsonl")
kill -TERM "$server_pid"
wait "$server_pid"
server_code=$?
if [ "$client_code" -ne 0 ]; then
  echo "check_service: FAILED (client exited $client_code)"
  exit 1
fi
if [ "$responses" -ne "$requests" ]; then
  echo "check_service: FAILED (socket pass: $responses of $requests" \
       "requests answered)"
  exit 1
fi
if [ "$server_code" -ne 0 ]; then
  echo "check_service: FAILED (server exited $server_code after SIGTERM;" \
       "expected a clean drain)"
  exit 1
fi
if [ ! -s "$workdir/runs.jsonl" ]; then
  echo "check_service: FAILED (drained server flushed no ledger records)"
  exit 1
fi
echo "   $responses/$requests answered over the socket, clean drain," \
     "$(wc -l < "$workdir/runs.jsonl") ledger records"

echo "== pass 3: TCP front door, 2 workers, streamed partials =="
"$frontdoor_bin" --listen 127.0.0.1:0 --workers 2 --serial-workers \
  --serve-bin "$serve_bin" --dir "$workdir/fleet" \
  > "$workdir/fd.out" 2> "$workdir/fd.err" &
fd_pid=$!
port=""
for _ in $(seq 100); do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
         "$workdir/fd.out")
  [ -n "$port" ] && break
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "check_service: FAILED (front door never announced its port)"
  cat "$workdir/fd.err"
  kill "$fd_pid" 2>/dev/null
  exit 1
fi

"$cli_bin" --client "127.0.0.1:$port" --batch "$fixture" \
  > "$workdir/tcp1.jsonl"
client_code=$?
if [ "$client_code" -ne 0 ]; then
  echo "check_service: FAILED (TCP client exited $client_code)"
  kill "$fd_pid" 2>/dev/null
  exit 1
fi
responses=$(grep -c '"schema":"soctest-resp-v1"' "$workdir/tcp1.jsonl")
if [ "$responses" -ne "$requests" ]; then
  echo "check_service: FAILED (TCP pass: $responses of $requests answered)"
  kill "$fd_pid" 2>/dev/null
  exit 1
fi

stream_requests=$(wc -l < "$stream_fixture")
"$cli_bin" --client "127.0.0.1:$port" --batch "$stream_fixture" \
  > "$workdir/stream.jsonl"
client_code=$?
partials=$(grep -c '"schema":"soctest-partial-v1"' "$workdir/stream.jsonl")
stream_finals=$(grep -c '"schema":"soctest-resp-v1"' "$workdir/stream.jsonl")
if [ "$client_code" -ne 0 ] || [ "$stream_finals" -ne "$stream_requests" ]; then
  echo "check_service: FAILED (streaming batch: exit $client_code," \
       "$stream_finals of $stream_requests finals)"
  kill "$fd_pid" 2>/dev/null
  exit 1
fi
if [ "$partials" -lt 1 ]; then
  echo "check_service: FAILED (no soctest-partial-v1 record reached the" \
       "client through the front door)"
  kill "$fd_pid" 2>/dev/null
  exit 1
fi

# Warm reruns: every outcome is now cached, so two more passes must produce
# the same response *set*. Workers interleave finals across shards, so sort
# before comparing.
"$cli_bin" --client "127.0.0.1:$port" --batch "$fixture" \
  | sort > "$workdir/warm1.jsonl"
"$cli_bin" --client "127.0.0.1:$port" --batch "$fixture" \
  | sort > "$workdir/warm2.jsonl"
if ! cmp -s "$workdir/warm1.jsonl" "$workdir/warm2.jsonl"; then
  echo "check_service: FAILED (warm TCP reruns differ as sorted sets)"
  diff "$workdir/warm1.jsonl" "$workdir/warm2.jsonl" | head -5
  exit 1
fi

kill -TERM "$fd_pid"
wait "$fd_pid"
fd_code=$?
if [ "$fd_code" -ne 0 ]; then
  echo "check_service: FAILED (front door exited $fd_code after SIGTERM;" \
       "expected a clean fleet drain)"
  cat "$workdir/fd.err"
  exit 1
fi
echo "   $responses/$requests over TCP, $partials partials streamed," \
     "warm reruns identical, clean fleet drain"

echo "check_service: OK"
