#!/usr/bin/env bash
# Noise-aware perf regression gate. Run from anywhere:
#
#   scripts/check_perf.sh [repo-root] [soctest-perf-binary]
#
# Two passes over the pinned quick-bench suite (tools/soctest_perf.cpp):
#   1. gate against the checked-in baseline bench/baselines/quick_gate.json —
#      deterministic counters must match exactly, median wall times must stay
#      inside the relative tolerance + absolute floor;
#   2. the same gate with an injected 400 ms slowdown MUST fail — a gate that
#      cannot catch a regression is worse than no gate.
#
# SOCTEST_PERF_COUNTERS_ONLY=1 skips the wall-time comparison in pass 1
# (sanitizer builds run 5-20x slower); pass 2 then clears the env so the
# negative test still proves the wall gate trips.
#
# After an intentional algorithm change, re-baseline deliberately:
#   build/tools/soctest-perf gate --baseline bench/baselines/quick_gate.json --update
#
# Wired into ctest as the `perf` label (RUN_SERIAL — wall times must not race
# the rest of the suite for cores): ctest -L perf

set -u
root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
perf_bin="${2:-$root/build/tools/soctest-perf}"
baseline="$root/bench/baselines/quick_gate.json"

if [ ! -x "$perf_bin" ]; then
  echo "check_perf: FAILED ($perf_bin not built)"
  exit 1
fi

echo "== pass 1: gate vs $baseline =="
if ! "$perf_bin" gate --baseline "$baseline"; then
  echo "check_perf: FAILED (regression against baseline)"
  exit 1
fi

echo "== pass 2: injected 400 ms slowdown must trip the gate =="
if SOCTEST_PERF_COUNTERS_ONLY=0 "$perf_bin" gate --baseline "$baseline" \
     --repeats 1 --inject-slowdown-ms 400 >/dev/null; then
  echo "check_perf: FAILED (gate did not catch an injected slowdown)"
  exit 1
fi

echo "== pass 3: ledger report solver column is open-ended =="
# The report folds on whatever solver name the ledger carries — no
# whitelist. New solve modes (pack today, whatever comes next) must render
# without touching the tool, in deterministic sorted order.
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cat > "$workdir/novel.ledger.jsonl" <<'EOF'
{"schema":"soctest-ledger-v1","soc":"soc2","solver":"pack","wall_ms":1.5,"status":"optimal","gap":0}
{"schema":"soctest-ledger-v1","soc":"soc2","solver":"pack","wall_ms":2.5,"status":"feasible_bounded","gap":0.05}
{"schema":"soctest-ledger-v1","soc":"soc2","solver":"pack-exact","wall_ms":9.0,"status":"optimal","gap":0}
{"schema":"soctest-ledger-v1","soc":"soc1","solver":"never-heard-of-it","wall_ms":4.0,"status":"feasible","gap":0.2}
EOF
report=$("$perf_bin" report "$workdir/novel.ledger.jsonl") || {
  echo "check_perf: FAILED (report rejected a ledger with novel solver names)"
  exit 1
}
for solver in pack pack-exact never-heard-of-it; do
  if ! printf '%s\n' "$report" | grep -q "$solver"; then
    echo "check_perf: FAILED (report dropped solver '$solver')"
    printf '%s\n' "$report"
    exit 1
  fi
done
# Rows sort by (soc, solver): the unknown solver's soc1 row must precede
# the soc2 pack rows.
if [ "$(printf '%s\n' "$report" | grep -nE 'never-heard-of-it' | cut -d: -f1)" \
     -gt "$(printf '%s\n' "$report" | grep -nE '^soc2 *pack ' | cut -d: -f1)" ]; then
  echo "check_perf: FAILED (report rows not sorted by soc/solver)"
  printf '%s\n' "$report"
  exit 1
fi

echo "check_perf: OK"
