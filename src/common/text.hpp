#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace soctest {

/// Splits on any run of whitespace; no empty tokens.
std::vector<std::string> split_ws(std::string_view line);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// ceil(a / b) for positive integers.
constexpr long long ceil_div(long long a, long long b) {
  return (a + b - 1) / b;
}

}  // namespace soctest
