#include "common/parallel.hpp"

#include <cstdlib>
#include <string>
#include <thread>

namespace soctest {

int default_thread_count() {
  if (const char* env = std::getenv("SOCTEST_THREADS")) {
    try {
      const int n = std::stoi(env);
      if (n >= 1) return n;
    } catch (...) {
      // Malformed value: fall through to hardware detection.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int resolve_thread_count(int requested) {
  return requested >= 1 ? requested : default_thread_count();
}

}  // namespace soctest
