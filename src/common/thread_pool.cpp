#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace soctest {

namespace {
std::atomic<void (*)()> g_task_hook{nullptr};
}  // namespace

void set_thread_pool_task_hook(void (*hook)()) {
  g_task_hook.store(hook, std::memory_order_release);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

long long ThreadPool::task_errors() const {
  return task_errors_.load(std::memory_order_relaxed);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      if (auto* hook = g_task_hook.load(std::memory_order_acquire)) hook();
      task();
    } catch (...) {
      // A task failure (including one injected by the hook) must not take
      // the process down; submit() callers see it as a broken promise.
      task_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void run_tasks(ThreadPool& pool, std::vector<std::function<void()>> tasks) {
  for (auto& task : tasks) pool.post(std::move(task));
  pool.wait_all();
}

}  // namespace soctest
