#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include <sys/types.h>

#include "runtime/status.hpp"

namespace soctest::net {

/// A transport endpoint: either a TCP host:port or a Unix-socket path.
/// The textual form is shared by every tool flag that names one
/// (`--socket`, `--listen`, `--client`, `--connect`): a string containing
/// a ':' and no '/' is parsed as HOST:PORT, anything else is a filesystem
/// path. Port 0 asks the kernel for an ephemeral port (the listener
/// reports the bound one).
struct Endpoint {
  bool tcp = false;
  std::string host;  ///< TCP only
  int port = 0;      ///< TCP only
  std::string path;  ///< Unix only
};

StatusOr<Endpoint> parse_endpoint(const std::string& text);

/// Canonical textual form ("127.0.0.1:8347" or "/tmp/x.sock"); for a TCP
/// endpoint `bound_port` (>= 0) overrides the parsed port, so a listener
/// bound to port 0 can report the real one.
std::string endpoint_name(const Endpoint& endpoint, int bound_port = -1);

/// Creates, binds, and listens. Unix paths are unlinked first (stale
/// sockets from a killed process must not block a restart); TCP sockets
/// set SO_REUSEADDR. On success `*bound_port` (when non-null) receives the
/// actual port. The returned fd is blocking; callers that poll it should
/// set_nonblocking() it.
StatusOr<int> listen_endpoint(const Endpoint& endpoint,
                              int* bound_port = nullptr);

/// One blocking connect attempt. Fails fast (ECONNREFUSED/ENOENT) rather
/// than retrying — callers that wait for a server to come up own the retry
/// loop and its deadline.
StatusOr<int> connect_endpoint(const Endpoint& endpoint);

Status set_nonblocking(int fd);

/// Disables Nagle on a TCP socket (no-op on Unix sockets). Every accepted
/// or connected protocol socket needs this: the JSONL protocol writes one
/// small line per request/response, and Nagle + delayed ACK turns each
/// round trip into a ~40 ms stall.
void set_tcp_nodelay(int fd);

/// Writes the whole buffer, retrying on EINTR and polling for POLLOUT on
/// EAGAIN (so it is safe on nonblocking fds too). Returns false once the
/// peer is gone (EPIPE/ECONNRESET); short writes never escape.
bool write_all(int fd, const char* data, std::size_t size);

/// fork+execv. The child inherits stdin/stdout/stderr; argv[0] must be a
/// path (no PATH search, so a spawned worker is exactly the binary the
/// parent chose). Returns the child pid.
StatusOr<pid_t> spawn_process(const std::vector<std::string>& argv);

/// Nonblocking reap: true once `pid` has exited (then `*exit_status` holds
/// the raw waitpid status), false while it is still running.
bool try_reap(pid_t pid, int* exit_status);

/// SIGTERM + blocking waitpid, the graceful-drain shutdown for a spawned
/// worker.
int terminate_and_wait(pid_t pid);

}  // namespace soctest::net
