#include "common/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace soctest {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(std::string cell) {
  assert(!rows_.empty());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::add(double value, int precision) {
  char buf[64];
  if (precision < 0) {
    std::snprintf(buf, sizeof buf, "%g", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  }
  return add(std::string(buf));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << cell << std::string(width[c] - cell.size(), ' ');
      out << (c + 1 == header_.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(width[c], '-') << (c + 1 == header_.size() ? "\n" : "  ");
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      assert(cells[c].find(',') == std::string::npos);
      out << cells[c] << (c + 1 == cells.size() ? "" : ",");
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return out.str();
}

}  // namespace soctest
