#include "common/net.hpp"

#include <cerrno>
#include <cctype>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

namespace soctest::net {

namespace {

// Status factories live in soctest_runtime, which itself links
// soctest_common; constructing Status inline keeps this file free of
// runtime-library symbols (no static-library cycle).
Status errno_error(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

Status bad_argument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

StatusOr<int> tcp_socket_for(const Endpoint& endpoint,
                             struct sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr->sin_addr) != 1) {
    return bad_argument("not an IPv4 address: " + endpoint.host);
  }
  // CLOEXEC: service fds must never leak into spawned worker processes —
  // an inherited duplicate of an accepted connection suppresses the FIN
  // clients rely on for end-of-batch.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_error("socket");
  return fd;
}

StatusOr<int> unix_socket_for(const Endpoint& endpoint,
                              struct sockaddr_un* addr) {
  if (endpoint.path.size() >= sizeof(addr->sun_path)) {
    return bad_argument("socket path too long: " + endpoint.path);
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::strncpy(addr->sun_path, endpoint.path.c_str(),
               sizeof(addr->sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return errno_error("socket");
  return fd;
}

}  // namespace

StatusOr<Endpoint> parse_endpoint(const std::string& text) {
  if (text.empty()) return bad_argument("empty endpoint");
  Endpoint endpoint;
  const auto colon = text.rfind(':');
  if (colon != std::string::npos && text.find('/') == std::string::npos) {
    endpoint.tcp = true;
    endpoint.host = text.substr(0, colon);
    if (endpoint.host.empty()) endpoint.host = "127.0.0.1";
    const std::string port = text.substr(colon + 1);
    if (port.empty()) return bad_argument("missing port: " + text);
    for (char c : port) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return bad_argument("bad port '" + port + "' in " + text);
      }
    }
    const long value = std::strtol(port.c_str(), nullptr, 10);
    if (value < 0 || value > 65535) {
      return bad_argument("port out of range: " + port);
    }
    endpoint.port = static_cast<int>(value);
    return endpoint;
  }
  endpoint.path = text;
  return endpoint;
}

std::string endpoint_name(const Endpoint& endpoint, int bound_port) {
  if (!endpoint.tcp) return endpoint.path;
  const int port = bound_port >= 0 ? bound_port : endpoint.port;
  return endpoint.host + ":" + std::to_string(port);
}

StatusOr<int> listen_endpoint(const Endpoint& endpoint, int* bound_port) {
  int fd = -1;
  if (endpoint.tcp) {
    struct sockaddr_in addr;
    StatusOr<int> sock = tcp_socket_for(endpoint, &addr);
    if (!sock.ok()) return sock.status();
    fd = sock.value();
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const Status st = errno_error("bind " + endpoint_name(endpoint));
      ::close(fd);
      return st;
    }
    if (bound_port != nullptr) {
      struct sockaddr_in actual;
      socklen_t len = sizeof(actual);
      if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&actual),
                        &len) == 0) {
        *bound_port = static_cast<int>(ntohs(actual.sin_port));
      }
    }
  } else {
    struct sockaddr_un addr;
    StatusOr<int> sock = unix_socket_for(endpoint, &addr);
    if (!sock.ok()) return sock.status();
    fd = sock.value();
    ::unlink(endpoint.path.c_str());
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const Status st = errno_error("bind " + endpoint.path);
      ::close(fd);
      return st;
    }
    if (bound_port != nullptr) *bound_port = 0;
  }
  if (::listen(fd, 64) < 0) {
    const Status st = errno_error("listen " + endpoint_name(endpoint));
    ::close(fd);
    return st;
  }
  return fd;
}

StatusOr<int> connect_endpoint(const Endpoint& endpoint) {
  int fd = -1;
  int rc = -1;
  if (endpoint.tcp) {
    struct sockaddr_in addr;
    StatusOr<int> sock = tcp_socket_for(endpoint, &addr);
    if (!sock.ok()) return sock.status();
    fd = sock.value();
    do {
      rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) set_tcp_nodelay(fd);
  } else {
    struct sockaddr_un addr;
    StatusOr<int> sock = unix_socket_for(endpoint, &addr);
    if (!sock.ok()) return sock.status();
    fd = sock.value();
    do {
      rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
  }
  if (rc < 0) {
    const Status st = errno_error("connect " + endpoint_name(endpoint));
    ::close(fd);
    return st;
  }
  return fd;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  // Fails with ENOTSUP/EOPNOTSUPP on Unix sockets, which need no Nagle
  // fix anyway; callers pass every accepted fd through unconditionally.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_error("fcntl(O_NONBLOCK)");
  }
  return Status();
}

bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n >= 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      ::poll(&pfd, 1, /*timeout_ms=*/100);
      continue;
    }
    return false;
  }
  return true;
}

StatusOr<pid_t> spawn_process(const std::vector<std::string>& argv) {
  if (argv.empty()) return bad_argument("spawn: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return errno_error("fork");
  if (pid == 0) {
    // Belt and braces on top of SOCK_CLOEXEC: nothing past the standard
    // streams may survive into the worker. A leaked accepted-connection fd
    // keeps the peer's read() blocked long after the parent closes it.
    if (::syscall(SYS_close_range, 3u, ~0u, 0u) != 0) {
      for (int fd = 3; fd < 1024; ++fd) ::close(fd);
    }
    ::execv(cargv[0], cargv.data());
    // Exec failed; exit without running any atexit handlers of the parent
    // image. 127 matches the shell convention for "command not found".
    std::_Exit(127);
  }
  return pid;
}

bool try_reap(pid_t pid, int* exit_status) {
  int status = 0;
  const pid_t done = ::waitpid(pid, &status, WNOHANG);
  if (done != pid) return false;
  if (exit_status != nullptr) *exit_status = status;
  return true;
}

int terminate_and_wait(pid_t pid) {
  ::kill(pid, SIGTERM);
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

}  // namespace soctest::net
