#include "common/text.hpp"

#include <cctype>
#include <sstream>

namespace soctest {

std::vector<std::string> split_ws(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::ostringstream out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out << sep;
    out << items[i];
  }
  return out.str();
}

}  // namespace soctest
