#pragma once

#include <string>
#include <type_traits>
#include <vector>

namespace soctest {

/// Minimal column-aligned table builder used by the benchmark harness and
/// examples to print paper-style tables. Cells are strings; numeric helpers
/// format with fixed precision. Output styles: aligned ASCII and CSV.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(std::string cell);
  /// Any integer type.
  template <typename T>
    requires std::is_integral_v<T>
  Table& add(T value) {
    return add(std::to_string(value));
  }
  /// Fixed-precision double; precision<0 chooses %g.
  Table& add(double value, int precision = 2);

  std::size_t num_rows() const { return rows_.size(); }

  /// Column-aligned ASCII rendering with a header separator line.
  std::string to_ascii() const;

  /// RFC-4180-ish CSV (no quoting beyond commas -> cells must not contain
  /// commas; asserts in debug builds).
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soctest
