#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace soctest {

/// Hook invoked before every pool task runs, on the worker thread. Installed
/// by the runtime layer's fault-injection facility (common cannot depend on
/// runtime, so the coupling is this one function pointer). A throwing hook
/// makes the task fail: `post` tasks are contained and counted in
/// `task_errors()`, `submit` tasks surface the failure through the returned
/// future as a broken promise. Pass nullptr to uninstall.
void set_thread_pool_task_hook(void (*hook)());

/// Fixed-size thread pool for CPU-bound solver and benchmark work.
///
/// Tasks are run FIFO by `num_threads` workers created in the constructor.
/// `post` enqueues fire-and-forget work; `submit` additionally returns a
/// future for the task's result (exceptions thrown by the task surface
/// through the future). `wait_all` blocks until every task enqueued so far
/// has finished — the pool stays usable afterwards. The destructor drains
/// outstanding tasks before joining, so a pool can be scoped tightly around
/// one parallel region.
///
/// Tasks must not block on other tasks queued in the *same* pool (classic
/// pool deadlock); nested parallelism should use its own pool.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `task`. An exception escaping the task (or thrown by the
  /// installed task hook) is contained by the worker and counted in
  /// `task_errors()` rather than terminating the process.
  void post(std::function<void()> task);

  /// Enqueues `task` and returns a future for its result.
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    post([packaged]() { (*packaged)(); });
    return future;
  }

  /// Blocks until all tasks posted so far have completed.
  void wait_all();

  /// Number of tasks whose exception (own or from the task hook) was
  /// contained by the worker instead of terminating the process.
  long long task_errors() const;

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  bool stopping_ = false;
  std::atomic<long long> task_errors_{0};
  std::vector<std::thread> workers_;
};

/// Convenience: runs every task on `pool` and waits for all of them.
void run_tasks(ThreadPool& pool, std::vector<std::function<void()>> tasks);

}  // namespace soctest
