#pragma once

#include <atomic>

namespace soctest {

/// Cooperative cancellation flag shared between a controller and one or more
/// workers. Workers poll `cancelled()` at convenient points (search nodes,
/// annealing iterations) and unwind; the controller calls `cancel()` once.
/// All operations are lock-free and safe to call from any thread.
class CancellationToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Worker count for parallel components when the caller passes 0 ("auto"):
/// the SOCTEST_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
int default_thread_count();

/// Resolves a user-facing thread-count option: values >= 1 pass through,
/// 0 (or negative) means default_thread_count().
int resolve_thread_count(int requested);

}  // namespace soctest
