#pragma once

#include <cstdint>
#include <vector>

namespace soctest {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All stochastic components of the library (instance generation, simulated
/// annealing, placement) take an explicit Rng so that every experiment is
/// reproducible from a seed. The engine is self-contained to guarantee
/// identical streams across standard-library implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random index into a container of the given size.
  /// Requires size > 0.
  std::size_t index(std::size_t size);

 private:
  std::uint64_t state_[4];
};

}  // namespace soctest
