#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace soctest {

/// Thread-safe sharded LRU cache / memo, shared by the service result cache
/// and the process-wide TestTimeTable memo (src/tam/timing.hpp).
///
/// Locking contract:
///   - The key space is split across `num_shards` independent shards by a
///     hash of the key; every operation takes exactly one shard mutex, so
///     operations on different shards never contend and no operation ever
///     holds two locks (no lock-order cycles are possible).
///   - `get_or_create` runs the factory *outside* any lock. Concurrent
///     misses on the same key may therefore build redundantly; the first
///     insert wins and later builders receive the already-stored value.
///     This is the same "redundant work beats holding a lock through an
///     expensive build" trade the old TestTimeTable memo made.
///   - Values are handed out as shared_ptr: eviction drops the cache's
///     reference but never invalidates a value a caller still holds. With
///     `capacity == 0` (unbounded memo mode) nothing is ever evicted, so
///     `*get_or_create(...)` references stay valid for the cache's lifetime.
///   - Stats counters are relaxed atomics; they are monotonic and may lag
///     a concurrent operation by a moment, which is fine for metrics.
template <typename Value>
class ShardedLruCache {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long evictions = 0;
    std::size_t size = 0;  ///< current entry count across all shards
  };

  /// `capacity` is the total entry budget across shards (0 = unbounded);
  /// each shard gets an equal slice, rounded up.
  explicit ShardedLruCache(std::size_t capacity, std::size_t num_shards = 8)
      : capacity_(capacity), shards_(num_shards == 0 ? 1 : num_shards) {}

  /// Looks up `key`; returns nullptr on miss. A hit refreshes LRU order.
  std::shared_ptr<const Value> get(const std::string& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the shard's least-recently-used
  /// entries beyond its capacity slice. Returns the stored pointer — when
  /// another thread inserted the key first, that earlier value is kept and
  /// returned, so every caller agrees on one canonical value per key.
  std::shared_ptr<const Value> put(const std::string& key,
                                   std::shared_ptr<const Value> value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return it->second->second;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    if (capacity_ > 0) {
      const std::size_t slice =
          (capacity_ + shards_.size() - 1) / shards_.size();
      while (shard.lru.size() > (slice == 0 ? 1 : slice)) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return shard.lru.front().second;
  }

  /// get() falling back to building the value with `make` (called without
  /// any lock held — see the locking contract above).
  template <typename Factory>
  std::shared_ptr<const Value> get_or_create(const std::string& key,
                                             Factory&& make) {
    if (auto hit = get(key)) return hit;
    return put(key, std::shared_ptr<const Value>(
                        std::make_shared<Value>(make())));
  }

  Stats stats() const {
    Stats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.size = size();
    return s;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  std::size_t capacity() const { return capacity_; }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.lru.clear();
      shard.index.clear();
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used. The list owns key copies so eviction can
    /// erase the index entry without a second lookup structure.
    std::list<std::pair<std::string, std::shared_ptr<const Value>>> lru;
    std::unordered_map<
        std::string,
        typename std::list<
            std::pair<std::string, std::shared_ptr<const Value>>>::iterator>
        index;
  };

  Shard& shard_for(const std::string& key) {
    return shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  std::size_t capacity_;
  std::vector<Shard> shards_;
  std::atomic<long long> hits_{0};
  std::atomic<long long> misses_{0};
  std::atomic<long long> evictions_{0};
};

/// FNV-1a 64-bit content hash, used for cache keys built from canonical
/// text (serialized SOC models, request parameter strings).
inline std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace soctest
