#pragma once

#include <vector>

#include "common/rng.hpp"
#include "tam/tam_problem.hpp"

namespace soctest {

/// One core's test session on its bus.
struct ScheduledTest {
  std::size_t core = 0;
  int bus = 0;
  Cycles start = 0;
  Cycles end = 0;  ///< exclusive
};

/// A concrete test schedule realizing a TAM assignment: cores on each bus
/// run back-to-back (no idle insertion); buses run in parallel from time 0.
struct TestSchedule {
  std::vector<ScheduledTest> tests;  ///< sorted by (bus, start)
  Cycles makespan = 0;

  /// Tests on a given bus, in execution order.
  std::vector<ScheduledTest> bus_tests(int bus) const;

  /// Sanity: per-bus tests are contiguous from 0, durations match the
  /// problem's time matrix, each core appears once. Empty string if valid.
  std::string validate(const TamProblem& problem,
                       const std::vector<int>& core_to_bus) const;
};

/// Builds the schedule for an assignment. `orders`, when non-empty, gives an
/// explicit per-bus core order (orders[j] = cores of bus j in run order);
/// otherwise each bus runs its cores in decreasing test-time order.
TestSchedule build_schedule(const TamProblem& problem,
                            const std::vector<int>& core_to_bus,
                            const std::vector<std::vector<std::size_t>>& orders = {});

/// Searches per-bus orderings (random restarts + pairwise swaps) for a
/// schedule whose *instantaneous* peak power is minimal. Used to quantify
/// how pessimistic the paper's pairwise co-assignment constraint is compared
/// to what the realized schedule actually draws (ablation A3).
TestSchedule minimize_peak_order(const TamProblem& problem, const Soc& soc,
                                 const std::vector<int>& core_to_bus, Rng& rng,
                                 int iterations = 2000);

}  // namespace soctest
