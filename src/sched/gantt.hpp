#pragma once

#include <string>

#include "sched/schedule.hpp"
#include "soc/soc.hpp"

namespace soctest {

/// Renders a schedule as an ASCII Gantt chart, one row per bus, time scaled
/// to `width_chars` columns. Each test session is drawn with the first
/// letter of its core's name; boundaries with '|'.
std::string render_gantt(const Soc& soc, const TestSchedule& schedule,
                         int width_chars = 72);

/// Renders the schedule's instantaneous power profile as an ASCII area
/// chart (`height_rows` rows tall, `width_chars` wide), with the optional
/// budget line drawn as '-'. Useful in examples and CLI output.
std::string render_power_profile(const Soc& soc, const TestSchedule& schedule,
                                 double p_max_mw = -1.0, int width_chars = 72,
                                 int height_rows = 10);

}  // namespace soctest
