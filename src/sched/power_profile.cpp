#include "sched/power_profile.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace soctest {

double PowerProfile::peak() const {
  double p = 0.0;
  for (double v : power_mw) p = std::max(p, v);
  return p;
}

double PowerProfile::at(Cycles t) const {
  if (time.empty() || t < time.front()) return 0.0;
  // Last step whose start is <= t.
  auto it = std::upper_bound(time.begin(), time.end(), t);
  const auto idx = static_cast<std::size_t>(it - time.begin()) - 1;
  return power_mw[idx];
}

double PowerProfile::energy() const {
  double e = 0.0;
  for (std::size_t k = 0; k + 1 < time.size(); ++k) {
    e += power_mw[k] * static_cast<double>(time[k + 1] - time[k]);
  }
  return e;
}

PowerProfile compute_power_profile(const Soc& soc,
                                   const TestSchedule& schedule) {
  // Sweep: +power at start, -power at end.
  std::map<Cycles, double> delta;
  for (const auto& t : schedule.tests) {
    if (t.end <= t.start) continue;
    delta[t.start] += soc.core(t.core).test_power_mw;
    delta[t.end] -= soc.core(t.core).test_power_mw;
  }
  PowerProfile profile;
  double level = 0.0;
  for (const auto& [when, d] : delta) {
    level += d;
    // Clamp tiny negative float residue at the tail.
    if (level < 0 && level > -1e-9) level = 0;
    profile.time.push_back(when);
    profile.power_mw.push_back(level);
  }
  return profile;
}

std::string check_power(const Soc& soc, const TestSchedule& schedule,
                        double p_max_mw) {
  if (p_max_mw < 0) return {};
  const PowerProfile profile = compute_power_profile(soc, schedule);
  for (std::size_t k = 0; k < profile.power_mw.size(); ++k) {
    if (profile.power_mw[k] > p_max_mw + 1e-9) {
      std::ostringstream err;
      err << "power " << profile.power_mw[k] << " mW exceeds budget "
          << p_max_mw << " mW at cycle " << profile.time[k];
      return err.str();
    }
  }
  return {};
}

}  // namespace soctest
