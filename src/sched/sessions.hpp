#pragma once

#include <string>
#include <vector>

#include "soc/soc.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {

/// The classic session-based (BIST-style) test scheduling model that
/// predates TAM-based scheduling: cores are partitioned into test
/// *sessions*; all cores of a session start together and the session lasts
/// as long as its slowest member; sessions run back to back. Power
/// constraint: the cores of a session draw power simultaneously, so each
/// session's power sum must fit the budget.
///
///   minimize   Σ_s max_{i∈s} t_i     s.t.  Σ_{i∈s} P_i <= P_max  ∀s
///
/// Unlike the TAM model there is no bus resource: parallelism is bounded
/// only by power. Comparing the two quantifies what dedicated TAM hardware
/// buys (bench fig10).
struct SessionSchedule {
  /// sessions[s] = cores tested concurrently in session s (in order).
  std::vector<std::vector<std::size_t>> sessions;
  Cycles total_time = 0;
};

struct SessionResult {
  bool feasible = false;
  bool proved_optimal = false;
  SessionSchedule schedule;
  long long nodes = 0;
};

/// Validates a session schedule: every core exactly once, per-session
/// power within budget, total time = Σ session maxima. Empty if OK.
std::string check_sessions(const std::vector<Cycles>& times,
                           const std::vector<double>& powers, double p_max_mw,
                           const SessionSchedule& schedule);

/// Exact branch & bound: cores sorted by decreasing time; each core joins
/// an existing session (if power fits) or opens a new one. Admissible
/// bound: opened sessions' maxima are fixed (times sorted descending), so
/// the current sum plus 0 for the rest lower-bounds the objective.
SessionResult schedule_sessions_exact(const std::vector<Cycles>& times,
                                      const std::vector<double>& powers,
                                      double p_max_mw,
                                      long long max_nodes = -1);

/// Greedy first-fit-decreasing baseline.
SessionResult schedule_sessions_greedy(const std::vector<Cycles>& times,
                                       const std::vector<double>& powers,
                                       double p_max_mw);

/// Convenience: per-core times from a SOC at a given wrapper width.
std::vector<Cycles> session_times(const Soc& soc, const TestTimeTable& table,
                                  int width);
std::vector<double> session_powers(const Soc& soc);

}  // namespace soctest
