#include "sched/sessions.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <sstream>

namespace soctest {

namespace {

struct Search {
  const std::vector<Cycles>& times;    // sorted descending (via order)
  const std::vector<double>& powers;
  const std::vector<std::size_t>& order;
  double p_max;
  long long max_nodes;

  std::vector<double> session_power;
  std::vector<int> core_session;  // index into order -> session
  Cycles cost = 0;                // Σ opener times of opened sessions
  Cycles best = std::numeric_limits<Cycles>::max();
  std::vector<int> best_core_session;
  long long nodes = 0;
  bool aborted = false;

  Search(const std::vector<Cycles>& t, const std::vector<double>& p,
         const std::vector<std::size_t>& o, double budget, long long cap)
      : times(t), powers(p), order(o), p_max(budget), max_nodes(cap),
        core_session(o.size(), -1) {}

  void dfs(std::size_t k) {
    if (aborted) return;
    ++nodes;
    if (max_nodes >= 0 && nodes > max_nodes) {
      aborted = true;
      return;
    }
    if (cost >= best) return;
    if (k == order.size()) {
      best = cost;
      best_core_session = core_session;
      return;
    }
    const std::size_t core = order[k];
    // Join an existing session with power headroom. Because cores arrive in
    // decreasing-time order, joining never changes a session's duration.
    for (std::size_t s = 0; s < session_power.size(); ++s) {
      if (session_power[s] + powers[core] > p_max + 1e-9) continue;
      session_power[s] += powers[core];
      core_session[k] = static_cast<int>(s);
      dfs(k + 1);
      core_session[k] = -1;
      session_power[s] -= powers[core];
      if (aborted) return;
    }
    // Open a new session (canonical: always the next index).
    session_power.push_back(powers[core]);
    cost += times[core];
    core_session[k] = static_cast<int>(session_power.size()) - 1;
    dfs(k + 1);
    core_session[k] = -1;
    cost -= times[core];
    session_power.pop_back();
  }
};

SessionResult assemble(const std::vector<std::size_t>& order,
                       const std::vector<int>& core_session, Cycles total,
                       long long nodes, bool proved) {
  SessionResult result;
  result.nodes = nodes;
  if (core_session.empty()) return result;
  int num_sessions = 0;
  for (int s : core_session) num_sessions = std::max(num_sessions, s + 1);
  result.schedule.sessions.resize(static_cast<std::size_t>(num_sessions));
  for (std::size_t k = 0; k < order.size(); ++k) {
    result.schedule.sessions[static_cast<std::size_t>(core_session[k])]
        .push_back(order[k]);
  }
  result.schedule.total_time = total;
  result.feasible = true;
  result.proved_optimal = proved;
  return result;
}

}  // namespace

std::string check_sessions(const std::vector<Cycles>& times,
                           const std::vector<double>& powers, double p_max_mw,
                           const SessionSchedule& schedule) {
  std::ostringstream err;
  std::vector<int> seen(times.size(), 0);
  Cycles total = 0;
  for (const auto& session : schedule.sessions) {
    if (session.empty()) {
      err << "empty session; ";
      continue;
    }
    Cycles session_max = 0;
    double session_power = 0;
    for (std::size_t core : session) {
      if (core >= times.size()) {
        err << "unknown core; ";
        continue;
      }
      ++seen[core];
      session_max = std::max(session_max, times[core]);
      session_power += powers[core];
    }
    if (p_max_mw >= 0 && session_power > p_max_mw + 1e-9) {
      err << "session power " << session_power << " over budget; ";
    }
    total += session_max;
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] != 1) err << "core " << i << " appears " << seen[i] << " times; ";
  }
  if (total != schedule.total_time) {
    err << "total " << schedule.total_time << " != recomputed " << total << "; ";
  }
  return err.str();
}

SessionResult schedule_sessions_exact(const std::vector<Cycles>& times,
                                      const std::vector<double>& powers,
                                      double p_max_mw, long long max_nodes) {
  SessionResult failure;
  if (times.size() != powers.size()) return failure;
  if (p_max_mw >= 0) {
    for (double p : powers) {
      if (p > p_max_mw) return failure;  // untestable core
    }
  }
  const double budget =
      p_max_mw >= 0 ? p_max_mw : std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order(times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return times[a] != times[b] ? times[a] > times[b] : a < b;
  });
  Search search(times, powers, order, budget, max_nodes);
  search.dfs(0);
  if (search.best_core_session.empty()) return failure;
  return assemble(order, search.best_core_session, search.best, search.nodes,
                  !search.aborted);
}

SessionResult schedule_sessions_greedy(const std::vector<Cycles>& times,
                                       const std::vector<double>& powers,
                                       double p_max_mw) {
  SessionResult failure;
  if (times.size() != powers.size()) return failure;
  if (p_max_mw >= 0) {
    for (double p : powers) {
      if (p > p_max_mw) return failure;
    }
  }
  const double budget =
      p_max_mw >= 0 ? p_max_mw : std::numeric_limits<double>::infinity();
  std::vector<std::size_t> order(times.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return times[a] != times[b] ? times[a] > times[b] : a < b;
  });
  std::vector<int> core_session(order.size(), -1);
  std::vector<double> session_power;
  Cycles total = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    const std::size_t core = order[k];
    bool placed = false;
    for (std::size_t s = 0; s < session_power.size() && !placed; ++s) {
      if (session_power[s] + powers[core] <= budget + 1e-9) {
        session_power[s] += powers[core];
        core_session[k] = static_cast<int>(s);
        placed = true;
      }
    }
    if (!placed) {
      session_power.push_back(powers[core]);
      total += times[core];
      core_session[k] = static_cast<int>(session_power.size()) - 1;
    }
  }
  auto result = assemble(order, core_session, total,
                         static_cast<long long>(order.size()), false);
  return result;
}

std::vector<Cycles> session_times(const Soc& soc, const TestTimeTable& table,
                                  int width) {
  std::vector<Cycles> times;
  times.reserve(soc.num_cores());
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    times.push_back(table.time(i, width));
  }
  return times;
}

std::vector<double> session_powers(const Soc& soc) {
  std::vector<double> powers;
  powers.reserve(soc.num_cores());
  for (const auto& c : soc.cores()) powers.push_back(c.test_power_mw);
  return powers;
}

}  // namespace soctest
