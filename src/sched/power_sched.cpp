#include "sched/power_sched.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "obs/obs.hpp"
#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

}  // namespace

PowerScheduleResult build_power_aware_schedule(
    const TamProblem& problem, const Soc& soc,
    const std::vector<int>& core_to_bus, const PowerScheduleOptions& options) {
  obs::Span span("sched.power.schedule",
                 {{"cores", problem.num_cores()},
                  {"pmax_mw", options.p_max_mw}});
  PowerScheduleResult result;
  if (core_to_bus.size() != problem.num_cores() ||
      soc.num_cores() != problem.num_cores()) {
    result.error = "assignment/SOC size mismatch";
    return result;
  }
  for (const auto& [a, b] : options.precedences) {
    if (a >= problem.num_cores() || b >= problem.num_cores() || a == b) {
      result.error = "invalid precedence edge";
      return result;
    }
  }
  for (const auto& [a, b] : options.mutex_pairs) {
    if (a >= problem.num_cores() || b >= problem.num_cores() || a == b) {
      result.error = "invalid mutex pair";
      return result;
    }
  }
  if (options.p_max_mw >= 0) {
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      if (soc.core(i).test_power_mw > options.p_max_mw) {
        result.error = "core " + soc.core(i).name + " alone exceeds the budget";
        return result;
      }
    }
  }

  // Per-bus queues, longest test first (stable across runs).
  const std::size_t num_buses = problem.num_buses();
  std::vector<std::vector<std::size_t>> queue(num_buses);
  for (std::size_t i = 0; i < problem.num_cores(); ++i) {
    queue[static_cast<std::size_t>(core_to_bus[i])].push_back(i);
  }
  for (std::size_t j = 0; j < num_buses; ++j) {
    std::sort(queue[j].begin(), queue[j].end(),
              [&](std::size_t a, std::size_t b) {
                const Cycles ta = problem.time[a][j];
                const Cycles tb = problem.time[b][j];
                return ta != tb ? ta > tb : a < b;
              });
  }
  std::vector<std::size_t> next_in_queue(num_buses, 0);
  std::vector<Cycles> remaining_work(num_buses, 0);
  for (std::size_t j = 0; j < num_buses; ++j) {
    for (std::size_t core : queue[j]) remaining_work[j] += problem.time[core][j];
  }

  std::vector<Cycles> busy_until(num_buses, 0);      // bus free time
  std::vector<Cycles> core_end(problem.num_cores(), kNever);
  std::vector<char> core_done(problem.num_cores(), 0);
  double power_in_use = 0.0;
  Cycles now = 0;
  std::size_t scheduled = 0;
  Cycles busy_total = 0;

  // Active set: (end_time, core) of currently running tests.
  std::multimap<Cycles, std::size_t> running;

  auto predecessors_done = [&](std::size_t core) {
    for (const auto& [a, b] : options.precedences) {
      if (b == core && !core_done[a]) return false;
    }
    return true;
  };
  std::vector<char> core_running(problem.num_cores(), 0);
  auto mutex_free = [&](std::size_t core) {
    for (const auto& [a, b] : options.mutex_pairs) {
      if (a == core && core_running[b]) return false;
      if (b == core && core_running[a]) return false;
    }
    return true;
  };

  // Rejection bookkeeping (only when observability is on). The inner start
  // loop re-scans the queue heads repeatedly at the same cycle, so a blocked
  // core would be reported many times per tick; dedup per (core, reason)
  // until time advances.
  long long rejected_power = 0;
  long long rejected_mutex = 0;
  long long rejected_precedence = 0;
  std::vector<std::pair<std::size_t, char>> rejected_this_tick;
  auto note_reject = [&](std::size_t core, char code) {
    if (!obs::enabled()) return;
    const std::pair<std::size_t, char> key{core, code};
    for (const auto& seen : rejected_this_tick) {
      if (seen == key) return;
    }
    rejected_this_tick.push_back(key);
    const char* reason = "precedence";
    if (code == 'p') {
      reason = "power";
      ++rejected_power;
    } else if (code == 'm') {
      reason = "mutex";
      ++rejected_mutex;
    } else {
      ++rejected_precedence;
    }
    obs::instant("sched.power.reject", {{"core", core},
                                        {"reason", reason},
                                        {"cycle", static_cast<long long>(now)}});
  };

  StopCheck stop_check(options.deadline, options.cancel,
                       failpoint::sites::kPowerTick);
  while (scheduled < problem.num_cores() || !running.empty()) {
    if (stop_check.should_stop()) {
      // A truncated schedule would violate coverage, so drop it entirely.
      result.error = "power scheduling interrupted at cycle " +
                     std::to_string(now);
      result.stop = stop_check.reason();
      result.schedule = TestSchedule{};
      return result;
    }
    // Retire tests finishing at `now`.
    while (!running.empty() && running.begin()->first <= now) {
      const auto [end, core] = *running.begin();
      running.erase(running.begin());
      core_done[core] = 1;
      core_running[core] = 0;
      power_in_use -= soc.core(core).test_power_mw;
      if (power_in_use < 0 && power_in_use > -1e-9) power_in_use = 0;
      (void)end;
    }
    // Start everything startable at `now`. Priority: largest remaining bus
    // workload first (classic makespan heuristic under resource ceilings).
    bool started = true;
    while (started) {
      started = false;
      int best_bus = -1;
      for (std::size_t j = 0; j < num_buses; ++j) {
        if (next_in_queue[j] >= queue[j].size()) continue;
        if (busy_until[j] > now) continue;
        const std::size_t core = queue[j][next_in_queue[j]];
        if (!predecessors_done(core)) {
          note_reject(core, 'c');
          continue;
        }
        if (!mutex_free(core)) {
          note_reject(core, 'm');
          continue;
        }
        if (options.p_max_mw >= 0 &&
            power_in_use + soc.core(core).test_power_mw >
                options.p_max_mw + 1e-9) {
          note_reject(core, 'p');
          continue;
        }
        if (best_bus < 0 ||
            remaining_work[j] > remaining_work[static_cast<std::size_t>(best_bus)]) {
          best_bus = static_cast<int>(j);
        }
      }
      if (best_bus >= 0) {
        const auto j = static_cast<std::size_t>(best_bus);
        const std::size_t core = queue[j][next_in_queue[j]++];
        const Cycles duration = problem.time[core][j];
        result.schedule.tests.push_back(
            ScheduledTest{core, best_bus, now, now + duration});
        busy_until[j] = now + duration;
        busy_total += duration;
        remaining_work[j] -= duration;
        core_end[core] = now + duration;
        power_in_use += soc.core(core).test_power_mw;
        core_running[core] = 1;
        running.emplace(now + duration, core);
        ++scheduled;
        started = true;
      }
    }
    if (scheduled == problem.num_cores() && running.empty()) break;
    // Advance time to the next interesting event: a completion, or a bus
    // becoming free.
    Cycles next_event = kNever;
    if (!running.empty()) next_event = running.begin()->first;
    for (std::size_t j = 0; j < num_buses; ++j) {
      if (next_in_queue[j] < queue[j].size() && busy_until[j] > now) {
        next_event = std::min(next_event, busy_until[j]);
      }
    }
    if (next_event == kNever || next_event <= now) {
      // Nothing running and nothing startable: power and mutex blocks both
      // clear when nothing runs, so this is a precedence cycle/deadlock.
      result.error = "precedence deadlock: no startable core at cycle " +
                     std::to_string(now);
      result.schedule = TestSchedule{};
      return result;
    }
    now = next_event;
    rejected_this_tick.clear();
  }

  for (const auto& t : result.schedule.tests) {
    result.schedule.makespan = std::max(result.schedule.makespan, t.end);
  }
  std::sort(result.schedule.tests.begin(), result.schedule.tests.end(),
            [](const ScheduledTest& a, const ScheduledTest& b) {
              return a.bus != b.bus ? a.bus < b.bus : a.start < b.start;
            });
  result.idle_inserted =
      static_cast<Cycles>(num_buses) * result.schedule.makespan - busy_total;
  result.feasible = true;
  if (obs::enabled()) {
    obs::counter("sched.power.schedules").add(1);
    obs::counter("sched.power.starts").add(static_cast<long long>(scheduled));
    obs::counter("sched.power.rejected_power").add(rejected_power);
    obs::counter("sched.power.rejected_mutex").add(rejected_mutex);
    obs::counter("sched.power.rejected_precedence").add(rejected_precedence);
    obs::counter("sched.power.idle_cycles")
        .add(static_cast<long long>(result.idle_inserted));
  }
  if (span.active()) {
    span.arg({"makespan", static_cast<long long>(result.schedule.makespan)});
    span.arg({"idle_inserted", static_cast<long long>(result.idle_inserted)});
  }
  return result;
}

std::string check_schedule_with_gaps(
    const TamProblem& problem, const std::vector<int>& core_to_bus,
    const TestSchedule& schedule,
    const std::vector<std::pair<std::size_t, std::size_t>>& precedences,
    const std::vector<std::pair<std::size_t, std::size_t>>& mutex_pairs) {
  std::ostringstream err;
  if (schedule.tests.size() != problem.num_cores()) {
    err << "schedule covers " << schedule.tests.size() << " of "
        << problem.num_cores() << " cores; ";
  }
  std::vector<int> seen(problem.num_cores(), 0);
  std::vector<Cycles> start(problem.num_cores(), 0), end(problem.num_cores(), 0);
  for (const auto& t : schedule.tests) {
    if (t.core >= problem.num_cores()) {
      err << "unknown core; ";
      continue;
    }
    ++seen[t.core];
    start[t.core] = t.start;
    end[t.core] = t.end;
    if (t.bus != core_to_bus.at(t.core)) {
      err << "core " << t.core << " on wrong bus; ";
    }
    if (t.start < 0) err << "core " << t.core << " starts before 0; ";
    const Cycles expect = problem.time[t.core][static_cast<std::size_t>(t.bus)];
    if (t.end - t.start != expect) {
      err << "core " << t.core << " has wrong duration; ";
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] != 1) err << "core " << i << " appears " << seen[i] << " times; ";
  }
  for (std::size_t j = 0; j < problem.num_buses(); ++j) {
    const auto on_bus = schedule.bus_tests(static_cast<int>(j));
    for (std::size_t k = 1; k < on_bus.size(); ++k) {
      if (on_bus[k].start < on_bus[k - 1].end) {
        err << "bus " << j << " sessions overlap; ";
        break;
      }
    }
  }
  for (const auto& [a, b] : precedences) {
    if (a < seen.size() && b < seen.size() && seen[a] == 1 && seen[b] == 1 &&
        start[b] < end[a]) {
      err << "precedence " << a << " -> " << b << " violated; ";
    }
  }
  for (const auto& [a, b] : mutex_pairs) {
    if (a < seen.size() && b < seen.size() && seen[a] == 1 && seen[b] == 1 &&
        start[a] < end[b] && start[b] < end[a]) {
      err << "mutex pair " << a << "/" << b << " overlaps; ";
    }
  }
  return err.str();
}

}  // namespace soctest
