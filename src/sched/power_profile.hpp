#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "soc/soc.hpp"

namespace soctest {

/// Instantaneous test power as a right-continuous step function of time:
/// power(t) = power_mw[k] for time[k] <= t < time[k+1]. The last step runs
/// to the schedule makespan at power 0 (or the residual tail).
struct PowerProfile {
  std::vector<Cycles> time;      ///< step start times, strictly increasing
  std::vector<double> power_mw;  ///< power during [time[k], time[k+1])

  double peak() const;
  /// Power at an arbitrary instant (0 outside the schedule span).
  double at(Cycles t) const;
  /// Energy in mW-cycles over the whole schedule.
  double energy() const;
};

/// Computes the profile of a schedule given per-core test powers. A core
/// dissipates its test power over its whole [start, end) session.
PowerProfile compute_power_profile(const Soc& soc, const TestSchedule& schedule);

/// Empty string if the schedule's instantaneous power never exceeds
/// p_max_mw, else a description of the first violation interval.
std::string check_power(const Soc& soc, const TestSchedule& schedule,
                        double p_max_mw);

}  // namespace soctest
