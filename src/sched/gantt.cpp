#include "sched/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sched/power_profile.hpp"

namespace soctest {

std::string render_gantt(const Soc& soc, const TestSchedule& schedule,
                         int width_chars) {
  std::ostringstream out;
  if (schedule.makespan <= 0 || schedule.tests.empty()) {
    return "(empty schedule)\n";
  }
  int max_bus = 0;
  for (const auto& t : schedule.tests) max_bus = std::max(max_bus, t.bus);
  const double scale =
      static_cast<double>(width_chars) / static_cast<double>(schedule.makespan);
  for (int j = 0; j <= max_bus; ++j) {
    std::string lane(static_cast<std::size_t>(width_chars), ' ');
    for (const auto& t : schedule.bus_tests(j)) {
      const auto from = static_cast<std::size_t>(
          static_cast<double>(t.start) * scale);
      auto to = static_cast<std::size_t>(static_cast<double>(t.end) * scale);
      to = std::min(to, static_cast<std::size_t>(width_chars));
      const char mark = soc.core(t.core).name.empty()
                            ? '?'
                            : soc.core(t.core).name[0];
      for (std::size_t c = from; c < to; ++c) lane[c] = mark;
      if (from < lane.size()) lane[from] = '|';
    }
    out << "bus " << j << " [" << lane << "]\n";
  }
  out << "0" << std::string(static_cast<std::size_t>(std::max(0, width_chars - 2)), ' ')
      << schedule.makespan << " cycles\n";
  return out.str();
}

std::string render_power_profile(const Soc& soc, const TestSchedule& schedule,
                                 double p_max_mw, int width_chars,
                                 int height_rows) {
  if (schedule.makespan <= 0 || schedule.tests.empty()) {
    return "(empty schedule)\n";
  }
  const PowerProfile profile = compute_power_profile(soc, schedule);
  const double top = std::max(profile.peak(), p_max_mw) * 1.05;
  if (top <= 0) return "(zero power)\n";

  // Sample the profile per column.
  std::vector<double> column(static_cast<std::size_t>(width_chars), 0.0);
  for (int c = 0; c < width_chars; ++c) {
    const auto t = static_cast<Cycles>(static_cast<double>(schedule.makespan) *
                                       c / width_chars);
    column[static_cast<std::size_t>(c)] = profile.at(t);
  }
  const int budget_row =
      p_max_mw >= 0
          ? static_cast<int>(std::lround(p_max_mw / top * height_rows))
          : -1;
  std::ostringstream out;
  for (int row = height_rows; row >= 1; --row) {
    const double threshold = top * row / height_rows;
    char label[16];
    std::snprintf(label, sizeof label, "%6.0f |", threshold);
    out << label;
    for (int c = 0; c < width_chars; ++c) {
      const bool filled = column[static_cast<std::size_t>(c)] >= threshold - 1e-9;
      if (filled) {
        out << '#';
      } else if (row == budget_row) {
        out << '-';
      } else {
        out << ' ';
      }
    }
    out << (row == budget_row ? "  <- budget" : "") << "\n";
  }
  out << "  [mW] +" << std::string(static_cast<std::size_t>(width_chars), '-')
      << "\n        0" << std::string(static_cast<std::size_t>(std::max(0, width_chars - 10)), ' ')
      << schedule.makespan << " cycles\n";
  return out.str();
}

}  // namespace soctest
