#pragma once

#include <vector>

#include "runtime/deadline.hpp"
#include "sched/schedule.hpp"
#include "soc/soc.hpp"

namespace soctest {

/// Options for the idle-insertion power-aware scheduler.
struct PowerScheduleOptions {
  /// Instantaneous power ceiling in mW; < 0 disables (plain back-to-back).
  double p_max_mw = -1.0;
  /// Precedence constraints: (a, b) means core b may not start before core
  /// a's test completes (cross-bus allowed).
  std::vector<std::pair<std::size_t, std::size_t>> precedences;
  /// Mutual-exclusion constraints: (a, b) means the two cores may never be
  /// under test simultaneously — e.g. they share a BIST engine, a test
  /// clock, or an analog supply. Order-free (unlike precedences).
  std::vector<std::pair<std::size_t, std::size_t>> mutex_pairs;
  /// Optional cooperative cancellation / wall-clock deadline, checked once
  /// per event tick. An interrupted run returns infeasible with
  /// `stop` recording why (a partial schedule is never returned).
  const CancellationToken* cancel = nullptr;
  Deadline deadline;
};

/// Result of power-aware scheduling.
struct PowerScheduleResult {
  bool feasible = false;
  /// Human-readable reason when infeasible (power deadlock, precedence
  /// cycle, core alone over budget).
  std::string error;
  TestSchedule schedule;
  Cycles idle_inserted = 0;  ///< total bus-cycles of inserted idle time
  /// Why the scheduler stopped early; kNone for a run to completion.
  StopReason stop = StopReason::kNone;
};

/// Event-driven list scheduler that realizes a TAM assignment while keeping
/// the *instantaneous* power at or below p_max_mw by delaying test starts
/// (idle insertion) instead of re-assigning cores. This is the
/// schedule-level alternative to the DAC 2000 pairwise serialization
/// constraint: the assignment (and hence TAM wiring) is untouched; only
/// start times move.
///
/// Per-bus core order defaults to longest-test-first; the scheduler then
/// greedily starts, at every event time, the ready core with the largest
/// remaining bus workload that fits in the power headroom and whose
/// predecessors are done. Deterministic.
PowerScheduleResult build_power_aware_schedule(
    const TamProblem& problem, const Soc& soc,
    const std::vector<int>& core_to_bus,
    const PowerScheduleOptions& options = {});

/// Schedule validity for schedules that may contain idle gaps: per-bus
/// sessions must not overlap and must follow the assignment and durations;
/// precedence edges must be honored. Empty string if valid.
std::string check_schedule_with_gaps(
    const TamProblem& problem, const std::vector<int>& core_to_bus,
    const TestSchedule& schedule,
    const std::vector<std::pair<std::size_t, std::size_t>>& precedences = {},
    const std::vector<std::pair<std::size_t, std::size_t>>& mutex_pairs = {});

}  // namespace soctest
