#include "sched/preemptive.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <sstream>

namespace soctest {

std::vector<TestSegment> PreemptiveSchedule::bus_segments(int bus) const {
  std::vector<TestSegment> out;
  for (const auto& s : segments) {
    if (s.bus == bus) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const TestSegment& a, const TestSegment& b) {
    return a.start < b.start;
  });
  return out;
}

Cycles PreemptiveSchedule::core_total(std::size_t core) const {
  Cycles total = 0;
  for (const auto& s : segments) {
    if (s.core == core) total += s.end - s.start;
  }
  return total;
}

PreemptiveResult build_preemptive_schedule(const TamProblem& problem,
                                           const Soc& soc,
                                           const std::vector<int>& core_to_bus,
                                           double p_max_mw) {
  PreemptiveResult result;
  if (core_to_bus.size() != problem.num_cores() ||
      soc.num_cores() != problem.num_cores()) {
    result.error = "assignment/SOC size mismatch";
    return result;
  }
  if (p_max_mw >= 0) {
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      if (soc.core(i).test_power_mw > p_max_mw) {
        result.error = "core " + soc.core(i).name + " alone exceeds the budget";
        return result;
      }
    }
  }
  const std::size_t num_buses = problem.num_buses();
  std::vector<Cycles> remaining(problem.num_cores());
  std::vector<std::vector<std::size_t>> bus_cores(num_buses);
  for (std::size_t i = 0; i < problem.num_cores(); ++i) {
    const auto j = static_cast<std::size_t>(core_to_bus[i]);
    remaining[i] = problem.time[i][j];
    bus_cores[j].push_back(i);
  }

  Cycles now = 0;
  std::vector<TestSegment> raw;
  // Sticky policy: a bus keeps its running core while that core still fits,
  // so preemption happens only when the power budget forces a swap. Pure
  // LRPT would churn segments without improving the makespan.
  std::vector<long long> current(num_buses, -1);
  auto any_remaining = [&] {
    for (Cycles r : remaining) {
      if (r > 0) return true;
    }
    return false;
  };
  while (any_remaining()) {
    // Select at most one unfinished core per bus, LRPT-first, power-checked.
    // Buses are visited in order of their best candidate's remaining work.
    struct Choice {
      std::size_t bus;
      std::size_t core;
      Cycles remaining;
    };
    std::vector<Choice> selected;
    double power = 0.0;
    std::vector<std::pair<Cycles, std::size_t>> bus_order;  // (-best remaining, bus)
    for (std::size_t j = 0; j < num_buses; ++j) {
      Cycles best = 0;
      for (std::size_t core : bus_cores[j]) best = std::max(best, remaining[core]);
      if (best > 0) bus_order.emplace_back(-best, j);
    }
    std::sort(bus_order.begin(), bus_order.end());
    for (const auto& [neg, j] : bus_order) {
      (void)neg;
      // Candidates on this bus, most remaining first.
      std::vector<std::size_t> candidates;
      for (std::size_t core : bus_cores[j]) {
        if (remaining[core] > 0) candidates.push_back(core);
      }
      std::sort(candidates.begin(), candidates.end(),
                [&](std::size_t a, std::size_t b) {
                  // The bus's incumbent core first, then LRPT.
                  const bool a_cur = current[j] == static_cast<long long>(a);
                  const bool b_cur = current[j] == static_cast<long long>(b);
                  if (a_cur != b_cur) return a_cur;
                  return remaining[a] != remaining[b] ? remaining[a] > remaining[b]
                                                      : a < b;
                });
      for (std::size_t core : candidates) {
        if (p_max_mw >= 0 &&
            power + soc.core(core).test_power_mw > p_max_mw + 1e-9) {
          continue;
        }
        selected.push_back(Choice{j, core, remaining[core]});
        power += soc.core(core).test_power_mw;
        break;
      }
    }
    if (selected.empty()) {
      // Cannot happen: every single core fits the budget.
      result.error = "scheduler stalled at cycle " + std::to_string(now);
      return result;
    }
    // Run the selection until the earliest completion among it.
    Cycles delta = std::numeric_limits<Cycles>::max();
    for (const auto& choice : selected) delta = std::min(delta, choice.remaining);
    for (auto& cur : current) cur = -1;
    for (const auto& choice : selected) {
      raw.push_back(TestSegment{choice.core, static_cast<int>(choice.bus), now,
                                now + delta});
      remaining[choice.core] -= delta;
      if (remaining[choice.core] > 0) {
        current[choice.bus] = static_cast<long long>(choice.core);
      }
    }
    now += delta;
  }

  // Merge back-to-back segments of the same core on the same bus.
  std::sort(raw.begin(), raw.end(), [](const TestSegment& a, const TestSegment& b) {
    return a.bus != b.bus ? a.bus < b.bus : a.start < b.start;
  });
  for (const auto& s : raw) {
    auto& segments = result.schedule.segments;
    if (!segments.empty() && segments.back().bus == s.bus &&
        segments.back().core == s.core && segments.back().end == s.start) {
      segments.back().end = s.end;
    } else {
      segments.push_back(s);
    }
    result.schedule.makespan = std::max(result.schedule.makespan, s.end);
  }
  std::map<std::size_t, int> per_core;
  for (const auto& s : result.schedule.segments) ++per_core[s.core];
  for (const auto& [core, count] : per_core) {
    (void)core;
    result.preemptions += count - 1;
  }
  result.feasible = true;
  return result;
}

std::string render_preemptive_gantt(const Soc& soc,
                                    const PreemptiveSchedule& schedule,
                                    int width_chars) {
  if (schedule.makespan <= 0 || schedule.segments.empty()) {
    return "(empty schedule)\n";
  }
  int max_bus = 0;
  for (const auto& s : schedule.segments) max_bus = std::max(max_bus, s.bus);
  const double scale =
      static_cast<double>(width_chars) / static_cast<double>(schedule.makespan);
  std::ostringstream out;
  for (int j = 0; j <= max_bus; ++j) {
    std::string lane(static_cast<std::size_t>(width_chars), ' ');
    for (const auto& s : schedule.bus_segments(j)) {
      const auto from = static_cast<std::size_t>(static_cast<double>(s.start) * scale);
      auto to = static_cast<std::size_t>(static_cast<double>(s.end) * scale);
      to = std::min(to, static_cast<std::size_t>(width_chars));
      const char mark =
          soc.core(s.core).name.empty() ? '?' : soc.core(s.core).name[0];
      for (std::size_t c = from; c < to; ++c) lane[c] = mark;
      if (from < lane.size()) lane[from] = '|';
    }
    out << "bus " << j << " [" << lane << "]\n";
  }
  out << "0" << std::string(static_cast<std::size_t>(std::max(0, width_chars - 2)), ' ')
      << schedule.makespan << " cycles\n";
  return out.str();
}

std::string check_preemptive_schedule(const TamProblem& problem,
                                      const Soc& soc,
                                      const std::vector<int>& core_to_bus,
                                      const PreemptiveSchedule& schedule,
                                      double p_max_mw) {
  std::ostringstream err;
  for (std::size_t i = 0; i < problem.num_cores(); ++i) {
    const auto j = static_cast<std::size_t>(core_to_bus.at(i));
    if (schedule.core_total(i) != problem.time[i][j]) {
      err << "core " << i << " scheduled " << schedule.core_total(i)
          << " of " << problem.time[i][j] << " cycles; ";
    }
  }
  for (const auto& s : schedule.segments) {
    if (s.core >= problem.num_cores()) {
      err << "unknown core; ";
      continue;
    }
    if (s.bus != core_to_bus[s.core]) err << "segment on wrong bus; ";
    if (s.end <= s.start) err << "empty/negative segment; ";
  }
  for (std::size_t j = 0; j < problem.num_buses(); ++j) {
    const auto on_bus = schedule.bus_segments(static_cast<int>(j));
    for (std::size_t k = 1; k < on_bus.size(); ++k) {
      if (on_bus[k].start < on_bus[k - 1].end) {
        err << "bus " << j << " segments overlap; ";
        break;
      }
    }
  }
  if (p_max_mw >= 0) {
    // Sweep the power profile over segment boundaries.
    std::map<Cycles, double> delta;
    for (const auto& s : schedule.segments) {
      delta[s.start] += soc.core(s.core).test_power_mw;
      delta[s.end] -= soc.core(s.core).test_power_mw;
    }
    double level = 0.0;
    for (const auto& [when, d] : delta) {
      level += d;
      if (level > p_max_mw + 1e-9) {
        err << "power " << level << " exceeds budget at cycle " << when << "; ";
        break;
      }
    }
  }
  return err.str();
}

}  // namespace soctest
