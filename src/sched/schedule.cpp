#include "sched/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "sched/power_profile.hpp"

namespace soctest {

std::vector<ScheduledTest> TestSchedule::bus_tests(int bus) const {
  std::vector<ScheduledTest> out;
  for (const auto& t : tests) {
    if (t.bus == bus) out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const ScheduledTest& a, const ScheduledTest& b) {
              return a.start < b.start;
            });
  return out;
}

std::string TestSchedule::validate(const TamProblem& problem,
                                   const std::vector<int>& core_to_bus) const {
  std::ostringstream err;
  if (tests.size() != problem.num_cores()) {
    err << "schedule covers " << tests.size() << " of " << problem.num_cores()
        << " cores; ";
  }
  std::vector<int> seen(problem.num_cores(), 0);
  for (const auto& t : tests) {
    if (t.core >= problem.num_cores()) {
      err << "unknown core in schedule; ";
      continue;
    }
    ++seen[t.core];
    if (t.bus != core_to_bus.at(t.core)) {
      err << "core " << t.core << " scheduled on wrong bus; ";
    }
    const Cycles expect = problem.time[t.core][static_cast<std::size_t>(t.bus)];
    if (t.end - t.start != expect) {
      err << "core " << t.core << " duration " << (t.end - t.start)
          << " != test time " << expect << "; ";
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] != 1) err << "core " << i << " appears " << seen[i] << " times; ";
  }
  for (std::size_t j = 0; j < problem.num_buses(); ++j) {
    const auto on_bus = bus_tests(static_cast<int>(j));
    Cycles cursor = 0;
    for (const auto& t : on_bus) {
      if (t.start != cursor) {
        err << "bus " << j << " has a gap/overlap at " << t.start << "; ";
        break;
      }
      cursor = t.end;
    }
  }
  return err.str();
}

TestSchedule build_schedule(const TamProblem& problem,
                            const std::vector<int>& core_to_bus,
                            const std::vector<std::vector<std::size_t>>& orders) {
  if (core_to_bus.size() != problem.num_cores()) {
    throw std::invalid_argument("assignment size mismatch");
  }
  TestSchedule schedule;
  for (std::size_t j = 0; j < problem.num_buses(); ++j) {
    std::vector<std::size_t> cores;
    if (!orders.empty()) {
      cores = orders.at(j);
      for (std::size_t core : cores) {
        if (core_to_bus.at(core) != static_cast<int>(j)) {
          throw std::invalid_argument("explicit order contradicts assignment");
        }
      }
      std::size_t expected = 0;
      for (std::size_t i = 0; i < problem.num_cores(); ++i) {
        if (core_to_bus[i] == static_cast<int>(j)) ++expected;
      }
      if (cores.size() != expected) {
        throw std::invalid_argument("explicit order misses cores of bus " +
                                    std::to_string(j));
      }
    } else {
      for (std::size_t i = 0; i < problem.num_cores(); ++i) {
        if (core_to_bus[i] == static_cast<int>(j)) cores.push_back(i);
      }
      std::sort(cores.begin(), cores.end(), [&](std::size_t a, std::size_t b) {
        return problem.time[a][j] > problem.time[b][j];
      });
    }
    Cycles cursor = 0;
    for (std::size_t core : cores) {
      const Cycles duration = problem.time[core][j];
      schedule.tests.push_back(
          ScheduledTest{core, static_cast<int>(j), cursor, cursor + duration});
      cursor += duration;
    }
    schedule.makespan = std::max(schedule.makespan, cursor);
  }
  std::sort(schedule.tests.begin(), schedule.tests.end(),
            [](const ScheduledTest& a, const ScheduledTest& b) {
              return a.bus != b.bus ? a.bus < b.bus : a.start < b.start;
            });
  return schedule;
}

TestSchedule minimize_peak_order(const TamProblem& problem, const Soc& soc,
                                 const std::vector<int>& core_to_bus, Rng& rng,
                                 int iterations) {
  // Current per-bus orders, seeded with the default (longest first).
  std::vector<std::vector<std::size_t>> orders(problem.num_buses());
  {
    const TestSchedule seed = build_schedule(problem, core_to_bus);
    for (std::size_t j = 0; j < problem.num_buses(); ++j) {
      for (const auto& t : seed.bus_tests(static_cast<int>(j))) {
        orders[j].push_back(t.core);
      }
    }
  }
  auto peak_of = [&](const std::vector<std::vector<std::size_t>>& o) {
    const TestSchedule s = build_schedule(problem, core_to_bus, o);
    return compute_power_profile(soc, s).peak();
  };
  double best_peak = peak_of(orders);
  auto best_orders = orders;
  for (int it = 0; it < iterations; ++it) {
    // Swap two tests on a random bus with >= 2 tests.
    std::vector<std::size_t> eligible;
    for (std::size_t j = 0; j < orders.size(); ++j) {
      if (orders[j].size() >= 2) eligible.push_back(j);
    }
    if (eligible.empty()) break;
    const std::size_t j = eligible[rng.index(eligible.size())];
    auto candidate = orders;
    const std::size_t a = rng.index(candidate[j].size());
    std::size_t b = rng.index(candidate[j].size());
    if (a == b) b = (b + 1) % candidate[j].size();
    std::swap(candidate[j][a], candidate[j][b]);
    const double peak = peak_of(candidate);
    if (peak <= best_peak) {  // accept sideways moves to escape plateaus
      if (peak < best_peak) {
        best_peak = peak;
        best_orders = candidate;
      }
      orders = std::move(candidate);
    }
  }
  return build_schedule(problem, core_to_bus, best_orders);
}

}  // namespace soctest
