#pragma once

#include <string>
#include <vector>

#include "sched/schedule.hpp"
#include "soc/soc.hpp"

namespace soctest {

/// One contiguous slice of a (possibly preempted) core test.
struct TestSegment {
  std::size_t core = 0;
  int bus = 0;
  Cycles start = 0;
  Cycles end = 0;  ///< exclusive
};

/// A preemptive test schedule: a core's test may be split into several
/// segments on its bus (pattern-boundary preemption: scan state is held in
/// the wrapper, so a test can pause and resume at no cycle cost — the model
/// used by the preemptive SOC test scheduling literature).
struct PreemptiveSchedule {
  std::vector<TestSegment> segments;  ///< sorted by (bus, start)
  Cycles makespan = 0;

  std::vector<TestSegment> bus_segments(int bus) const;
  /// Total scheduled cycles of one core.
  Cycles core_total(std::size_t core) const;
};

struct PreemptiveResult {
  bool feasible = false;
  std::string error;
  PreemptiveSchedule schedule;
  int preemptions = 0;  ///< segments beyond one per core
};

/// Power-aware preemptive scheduler: at every event instant, runs on each
/// bus the unfinished core with the most remaining work whose power fits
/// under the budget (LRPT rule; cores pause mid-test and resume later,
/// unlike the non-preemptive idle-insertion scheduler). Preemption relaxes
/// the problem, and the greedy typically — though, both schedulers being
/// heuristics, not provably always — produces shorter schedules than idle
/// insertion at tight budgets (quantified in bench/fig9_preemption).
PreemptiveResult build_preemptive_schedule(const TamProblem& problem,
                                           const Soc& soc,
                                           const std::vector<int>& core_to_bus,
                                           double p_max_mw);

/// Renders a preemptive schedule as an ASCII Gantt chart (one row per bus;
/// each segment drawn with the first letter of its core's name, '|' at
/// segment starts — resumed fragments of a core reuse its letter).
std::string render_preemptive_gantt(const Soc& soc,
                                    const PreemptiveSchedule& schedule,
                                    int width_chars = 72);

/// Validates a preemptive schedule: per-core totals match the time matrix,
/// per-bus segments never overlap, power stays under the budget. Empty
/// string when valid.
std::string check_preemptive_schedule(const TamProblem& problem,
                                      const Soc& soc,
                                      const std::vector<int>& core_to_bus,
                                      const PreemptiveSchedule& schedule,
                                      double p_max_mw);

}  // namespace soctest
