#include "soc/core.hpp"

#include <numeric>
#include <sstream>

namespace soctest {

int Core::total_scan_flops() const {
  return soft_scan_flops +
         std::accumulate(scan_chain_lengths.begin(), scan_chain_lengths.end(), 0);
}

int Core::scan_in_elements() const {
  return total_scan_flops() + num_inputs + num_bidirs;
}

int Core::scan_out_elements() const {
  return total_scan_flops() + num_outputs + num_bidirs;
}

std::string Core::validate() const {
  std::ostringstream err;
  if (name.empty()) err << "core has empty name; ";
  if (num_inputs < 0 || num_outputs < 0 || num_bidirs < 0)
    err << name << ": negative terminal count; ";
  if (num_patterns < 0) err << name << ": negative pattern count; ";
  if (num_patterns == 0) err << name << ": no test patterns; ";
  if (test_power_mw < 0) err << name << ": negative test power; ";
  if (width <= 0 || height <= 0) err << name << ": non-positive footprint; ";
  for (int len : scan_chain_lengths) {
    if (len <= 0) {
      err << name << ": non-positive scan chain length; ";
      break;
    }
  }
  if (soft_scan_flops < 0) err << name << ": negative soft scan flop count; ";
  if (soft_scan_flops > 0 && !scan_chain_lengths.empty()) {
    err << name << ": soft scan flops combined with fixed scan chains; ";
  }
  if (num_inputs + num_bidirs + total_scan_flops() == 0)
    err << name << ": core has no scannable input-side elements; ";
  return err.str();
}

}  // namespace soctest
