#include "soc/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace soctest {

Soc generate_soc(const SocGeneratorOptions& options, Rng& rng) {
  if (options.num_cores <= 0) {
    throw std::invalid_argument("num_cores must be positive");
  }
  Soc soc("random", 1, 1);
  for (int i = 0; i < options.num_cores; ++i) {
    Core core;
    core.name = "core" + std::to_string(i);
    core.num_inputs = static_cast<int>(
        rng.uniform_int(options.min_inputs, options.max_inputs));
    core.num_outputs = static_cast<int>(
        rng.uniform_int(options.min_outputs, options.max_outputs));
    core.num_patterns = static_cast<int>(
        rng.uniform_int(options.min_patterns, options.max_patterns));
    core.test_power_mw = rng.uniform(options.min_power_mw, options.max_power_mw);
    if (!rng.bernoulli(options.combinational_fraction)) {
      const int chains = static_cast<int>(
          rng.uniform_int(options.min_chains, options.max_chains));
      if (rng.bernoulli(options.soft_core_fraction)) {
        int flops = 0;
        for (int c = 0; c < chains; ++c) {
          flops += static_cast<int>(rng.uniform_int(
              options.min_chain_length, options.max_chain_length));
        }
        core.soft_scan_flops = flops;
      } else {
        for (int c = 0; c < chains; ++c) {
          core.scan_chain_lengths.push_back(static_cast<int>(rng.uniform_int(
              options.min_chain_length, options.max_chain_length)));
        }
      }
    }
    // Footprint grows with the core's scan volume so big cores block more of
    // the die, as in a real floorplan.
    const int volume = core.total_scan_flops() + core.num_inputs + core.num_outputs;
    const int side = std::max(3, static_cast<int>(std::lround(std::sqrt(volume / 12.0))));
    core.width = side;
    core.height = std::max(3, side + static_cast<int>(rng.uniform_int(-1, 1)));
    soc.add_core(std::move(core));
  }
  if (options.place) shelf_place(soc, options.channel);
  const std::string err = soc.validate();
  if (!err.empty()) throw std::logic_error("generator produced invalid SOC: " + err);
  return soc;
}

void shelf_place(Soc& soc, int channel) {
  const std::size_t n = soc.num_cores();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return soc.core(a).height > soc.core(b).height;
  });

  // Target a roughly square die: shelf width ~ sqrt(total area) * 1.4.
  long long total_area = 0;
  for (const auto& c : soc.cores()) {
    total_area += static_cast<long long>(c.width + channel) * (c.height + channel);
  }
  const int max_row_width =
      std::max(static_cast<int>(std::lround(std::sqrt(static_cast<double>(total_area)) * 1.4)),
               soc.core(order[0]).width + 2 * channel);

  std::vector<Placement> placements(n);
  int x = channel, y = channel, row_height = 0, die_w = 0;
  for (std::size_t idx : order) {
    const Core& c = soc.core(idx);
    if (x + c.width + channel > max_row_width && x > channel) {
      x = channel;
      y += row_height + channel;
      row_height = 0;
    }
    placements[idx] = Placement{{x, y}};
    x += c.width + channel;
    row_height = std::max(row_height, c.height);
    die_w = std::max(die_w, x);
  }
  const int die_h = y + row_height + channel;
  soc.set_die(die_w + channel, die_h);
  soc.set_placements(std::move(placements));
}

}  // namespace soctest
