#pragma once

#include <string>
#include <vector>

namespace soctest {

/// An embedded core delivered with its test set, as modeled by the DAC 2000
/// TAM-design formulation: functional terminal counts, internal scan
/// structure, pattern count, and the physical attributes (footprint, test
/// power) consumed by the place-and-route and power constraints.
struct Core {
  std::string name;

  // Functional terminals wrapped by the test wrapper (P1500-style).
  int num_inputs = 0;   ///< functional input terminals
  int num_outputs = 0;  ///< functional output terminals
  int num_bidirs = 0;   ///< bidirectional terminals (count as input and output)

  /// Lengths of the core-internal scan chains. Empty for combinational cores.
  /// Internal chains are fixed by the core provider and cannot be split when
  /// forming wrapper chains.
  std::vector<int> scan_chain_lengths;

  /// Soft cores expose their flip-flops before scan stitching: the wrapper
  /// designer may form internal chains freely (Aerts & Marinissen-style scan
  /// chain design). When soft_scan_flops > 0, scan_chain_lengths must be
  /// empty and the flops are distributed as unit items.
  int soft_scan_flops = 0;

  /// Number of test patterns in the core's test set.
  int num_patterns = 0;

  /// Peak power dissipated while this core is under test, in milliwatts.
  /// Used by the power constraint: concurrently tested cores must sum below
  /// the system test power budget.
  double test_power_mw = 0.0;

  /// Physical footprint in floorplan grid units (rectangular macro).
  int width = 1;
  int height = 1;

  int total_scan_flops() const;

  /// Total scan elements on the input side: internal flops + input wrapper
  /// cells (bidirs included).
  int scan_in_elements() const;

  /// Total scan elements on the output side: internal flops + output wrapper
  /// cells (bidirs included).
  int scan_out_elements() const;

  /// Validates invariants (non-negative counts, positive footprint, chains
  /// have positive length). Returns an error message, empty if valid.
  std::string validate() const;
};

}  // namespace soctest
