#pragma once

#include "soc/soc.hpp"

namespace soctest {

/// The representative 10-core SOC used throughout the experiments: an
/// ISCAS-85/89 mix in the style of the academic SOC evaluated by the
/// DAC 2000 paper (and later standardized as the d695 class in the ITC'02
/// SOC benchmarks). Terminal, scan, and pattern counts are representative
/// published figures; power values follow the figures used in the
/// power-constrained SOC test scheduling literature. Placed on a 64x64
/// floorplan grid with routing channels.
Soc builtin_soc1();

/// A smaller 6-core SOC (ISCAS mix) for quick experiments and as a second
/// evaluation point. Placed on a 40x40 grid.
Soc builtin_soc2();

/// A larger 14-core SOC: the soc1 core mix with duplicated CPU/DSP-class
/// cores, in the spirit of the bigger ITC'02 system chips. Shelf-placed
/// with 2-cell routing channels. Stresses the solvers' scaling.
Soc builtin_soc3();

/// A 20-core SOC: soc3's mix plus a second memory/IO cluster and two soft
/// cores (unstitched flops). The largest built-in instance; used by the
/// scaling benches. Shelf-placed.
Soc builtin_soc4();

}  // namespace soctest
