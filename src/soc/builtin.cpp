#include "soc/builtin.hpp"

#include <stdexcept>
#include <vector>

#include "soc/generator.hpp"

namespace soctest {

namespace {

Core make_core(std::string name, int inputs, int outputs, int patterns,
               double power_mw, int width, int height,
               std::vector<int> chains = {}) {
  Core c;
  c.name = std::move(name);
  c.num_inputs = inputs;
  c.num_outputs = outputs;
  c.num_patterns = patterns;
  c.test_power_mw = power_mw;
  c.width = width;
  c.height = height;
  c.scan_chain_lengths = std::move(chains);
  return c;
}

/// n chains totalling `flops`, lengths as balanced as integers allow.
std::vector<int> balanced_chains(int n, int flops) {
  std::vector<int> chains(n, flops / n);
  for (int i = 0; i < flops % n; ++i) ++chains[i];
  return chains;
}

void check(const Soc& soc) {
  const std::string err = soc.validate();
  if (!err.empty()) throw std::logic_error("builtin SOC invalid: " + err);
}

}  // namespace

Soc builtin_soc1() {
  Soc soc("soc1", 64, 64);
  soc.add_core(make_core("c6288", 32, 32, 12, 660.0, 6, 6));
  soc.add_core(make_core("c7552", 207, 108, 73, 602.0, 8, 8));
  soc.add_core(make_core("s838", 34, 1, 75, 823.0, 5, 5, balanced_chains(1, 32)));
  soc.add_core(make_core("s9234", 36, 39, 105, 275.0, 8, 8, balanced_chains(4, 228)));
  soc.add_core(make_core("s38584", 38, 304, 110, 690.0, 12, 12, balanced_chains(32, 1426)));
  soc.add_core(make_core("s13207", 62, 152, 234, 354.0, 10, 10, balanced_chains(16, 669)));
  soc.add_core(make_core("s15850", 77, 150, 95, 530.0, 10, 10, balanced_chains(16, 534)));
  soc.add_core(make_core("s5378", 35, 49, 97, 753.0, 7, 7, balanced_chains(4, 179)));
  soc.add_core(make_core("s35932", 35, 320, 12, 641.0, 12, 12, balanced_chains(32, 1728)));
  soc.add_core(make_core("s38417", 28, 106, 68, 1144.0, 12, 12, balanced_chains(32, 1636)));
  soc.set_placements({
      Placement{{2, 2}},    // c6288
      Placement{{12, 2}},   // c7552
      Placement{{35, 2}},   // s838
      Placement{{44, 2}},   // s9234
      Placement{{30, 14}},  // s38584
      Placement{{2, 14}},   // s13207
      Placement{{16, 14}},  // s15850
      Placement{{24, 2}},   // s5378
      Placement{{2, 30}},   // s35932
      Placement{{18, 30}},  // s38417
  });
  check(soc);
  return soc;
}

Soc builtin_soc2() {
  Soc soc("soc2", 40, 40);
  soc.add_core(make_core("c880", 60, 26, 59, 340.0, 4, 4));
  soc.add_core(make_core("c2670", 233, 140, 107, 410.0, 6, 6));
  soc.add_core(make_core("s953", 16, 23, 76, 285.0, 4, 4, balanced_chains(1, 29)));
  soc.add_core(make_core("s1196", 14, 14, 113, 305.0, 4, 4, balanced_chains(1, 18)));
  soc.add_core(make_core("s5378", 35, 49, 97, 753.0, 7, 7, balanced_chains(4, 179)));
  soc.add_core(make_core("s838", 34, 1, 75, 823.0, 5, 5, balanced_chains(1, 32)));
  soc.set_placements({
      Placement{{2, 2}},    // c880
      Placement{{10, 2}},   // c2670
      Placement{{20, 2}},   // s953
      Placement{{28, 2}},   // s1196
      Placement{{2, 12}},   // s5378
      Placement{{14, 12}},  // s838
  });
  check(soc);
  return soc;
}

Soc builtin_soc3() {
  Soc soc("soc3", 1, 1);
  soc.add_core(make_core("cpu0", 28, 106, 68, 1144.0, 12, 12, balanced_chains(32, 1636)));
  soc.add_core(make_core("cpu1", 28, 106, 68, 1098.0, 12, 12, balanced_chains(32, 1636)));
  soc.add_core(make_core("dsp0", 38, 304, 110, 690.0, 12, 12, balanced_chains(32, 1426)));
  soc.add_core(make_core("dsp1", 38, 304, 110, 705.0, 12, 12, balanced_chains(32, 1426)));
  soc.add_core(make_core("mem0", 35, 320, 12, 641.0, 12, 12, balanced_chains(32, 1728)));
  soc.add_core(make_core("ctl0", 62, 152, 234, 354.0, 10, 10, balanced_chains(16, 669)));
  soc.add_core(make_core("ctl1", 77, 150, 95, 530.0, 10, 10, balanced_chains(16, 534)));
  soc.add_core(make_core("io0", 35, 49, 97, 753.0, 7, 7, balanced_chains(4, 179)));
  soc.add_core(make_core("io1", 36, 39, 105, 275.0, 8, 8, balanced_chains(4, 228)));
  soc.add_core(make_core("glue0", 34, 1, 75, 823.0, 5, 5, balanced_chains(1, 32)));
  soc.add_core(make_core("glue1", 16, 23, 76, 285.0, 4, 4, balanced_chains(1, 29)));
  soc.add_core(make_core("comb0", 207, 108, 73, 602.0, 8, 8));
  soc.add_core(make_core("comb1", 32, 32, 12, 660.0, 6, 6));
  soc.add_core(make_core("comb2", 233, 140, 107, 410.0, 6, 6));
  shelf_place(soc, 2);
  check(soc);
  return soc;
}

Soc builtin_soc4() {
  Soc soc("soc4", 1, 1);
  soc.add_core(make_core("cpu0", 28, 106, 68, 1144.0, 12, 12, balanced_chains(32, 1636)));
  soc.add_core(make_core("cpu1", 28, 106, 68, 1098.0, 12, 12, balanced_chains(32, 1636)));
  soc.add_core(make_core("dsp0", 38, 304, 110, 690.0, 12, 12, balanced_chains(32, 1426)));
  soc.add_core(make_core("dsp1", 38, 304, 110, 705.0, 12, 12, balanced_chains(32, 1426)));
  soc.add_core(make_core("mem0", 35, 320, 12, 641.0, 12, 12, balanced_chains(32, 1728)));
  soc.add_core(make_core("mem1", 35, 320, 12, 655.0, 12, 12, balanced_chains(32, 1728)));
  soc.add_core(make_core("ctl0", 62, 152, 234, 354.0, 10, 10, balanced_chains(16, 669)));
  soc.add_core(make_core("ctl1", 77, 150, 95, 530.0, 10, 10, balanced_chains(16, 534)));
  soc.add_core(make_core("ctl2", 62, 152, 234, 349.0, 10, 10, balanced_chains(16, 669)));
  soc.add_core(make_core("io0", 35, 49, 97, 753.0, 7, 7, balanced_chains(4, 179)));
  soc.add_core(make_core("io1", 36, 39, 105, 275.0, 8, 8, balanced_chains(4, 228)));
  soc.add_core(make_core("io2", 35, 49, 97, 748.0, 7, 7, balanced_chains(4, 179)));
  soc.add_core(make_core("glue0", 34, 1, 75, 823.0, 5, 5, balanced_chains(1, 32)));
  soc.add_core(make_core("glue1", 16, 23, 76, 285.0, 4, 4, balanced_chains(1, 29)));
  soc.add_core(make_core("comb0", 207, 108, 73, 602.0, 8, 8));
  soc.add_core(make_core("comb1", 32, 32, 12, 660.0, 6, 6));
  soc.add_core(make_core("comb2", 233, 140, 107, 410.0, 6, 6));
  soc.add_core(make_core("comb3", 60, 26, 59, 340.0, 4, 4));
  // Two soft cores: flops delivered unstitched.
  Core soft0 = make_core("soft0", 40, 44, 120, 512.0, 9, 9);
  soft0.soft_scan_flops = 880;
  soc.add_core(std::move(soft0));
  Core soft1 = make_core("soft1", 24, 30, 85, 433.0, 8, 8);
  soft1.soft_scan_flops = 512;
  soc.add_core(std::move(soft1));
  shelf_place(soc, 2);
  check(soc);
  return soc;
}

}  // namespace soctest
