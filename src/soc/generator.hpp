#pragma once

#include "common/rng.hpp"
#include "soc/soc.hpp"

namespace soctest {

/// Parameters for random SOC instance generation. Defaults give instances in
/// the size class of the paper's representative SOC (ISCAS-85/89 mix).
struct SocGeneratorOptions {
  int num_cores = 10;
  /// Fraction of cores that are combinational (no internal scan chains).
  double combinational_fraction = 0.2;
  /// Fraction of the *sequential* cores that are soft (flops delivered
  /// unstitched; the wrapper designer forms the chains).
  double soft_core_fraction = 0.0;
  int min_inputs = 10, max_inputs = 240;
  int min_outputs = 1, max_outputs = 320;
  int min_chains = 1, max_chains = 32;
  int min_chain_length = 8, max_chain_length = 60;
  int min_patterns = 10, max_patterns = 240;
  double min_power_mw = 200.0, max_power_mw = 1200.0;
  /// When true, cores are placed with a shelf packer and the die is sized to
  /// fit with routing channels.
  bool place = true;
  /// Free grid units left between shelf-packed cores for routing.
  int channel = 2;
};

/// Generates a random, valid SOC instance. With options.place, all cores are
/// placed without overlap and the die is sized to enclose them.
Soc generate_soc(const SocGeneratorOptions& options, Rng& rng);

/// Shelf-packs the SOC's cores (sorted by decreasing height) into rows and
/// assigns placements; resizes the die to fit. Deterministic.
void shelf_place(Soc& soc, int channel);

}  // namespace soctest
