#include "soc/soc.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace soctest {

int manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

Soc::Soc(std::string name, int die_width, int die_height)
    : name_(std::move(name)), die_width_(die_width), die_height_(die_height) {}

void Soc::set_die(int width, int height) {
  die_width_ = width;
  die_height_ = height;
}

std::size_t Soc::add_core(Core core) {
  if (!placements_.empty()) {
    throw std::logic_error("cannot add cores after placements are set");
  }
  cores_.push_back(std::move(core));
  return cores_.size() - 1;
}

std::optional<std::size_t> Soc::find_core(const std::string& name) const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].name == name) return i;
  }
  return std::nullopt;
}

void Soc::set_placements(std::vector<Placement> placements) {
  if (placements.size() != cores_.size()) {
    throw std::invalid_argument("placement count does not match core count");
  }
  placements_ = std::move(placements);
}

double Soc::total_test_power() const {
  double total = 0.0;
  for (const auto& c : cores_) total += c.test_power_mw;
  return total;
}

std::string Soc::validate() const {
  std::ostringstream err;
  if (die_width_ <= 0 || die_height_ <= 0) err << "non-positive die size; ";
  if (cores_.empty()) err << "SOC has no cores; ";
  for (const auto& c : cores_) err << c.validate();
  // Duplicate names break the text format round trip.
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    for (std::size_t j = i + 1; j < cores_.size(); ++j) {
      if (cores_[i].name == cores_[j].name) {
        err << "duplicate core name " << cores_[i].name << "; ";
      }
    }
  }
  if (!placements_.empty()) {
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      const auto& p = placements_[i].origin;
      const auto& c = cores_[i];
      if (p.x < 0 || p.y < 0 || p.x + c.width > die_width_ ||
          p.y + c.height > die_height_) {
        err << c.name << ": placed outside die; ";
      }
    }
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      for (std::size_t j = i + 1; j < cores_.size(); ++j) {
        const auto& a = placements_[i].origin;
        const auto& b = placements_[j].origin;
        const bool overlap_x = a.x < b.x + cores_[j].width &&
                               b.x < a.x + cores_[i].width;
        const bool overlap_y = a.y < b.y + cores_[j].height &&
                               b.y < a.y + cores_[i].height;
        if (overlap_x && overlap_y) {
          err << "cores " << cores_[i].name << " and " << cores_[j].name
              << " overlap; ";
        }
      }
    }
  }
  return err.str();
}

}  // namespace soctest
