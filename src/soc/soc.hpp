#pragma once

#include <optional>
#include <string>
#include <vector>

#include "soc/core.hpp"

namespace soctest {

/// Grid coordinate on the die (floorplan units).
struct Point {
  int x = 0;
  int y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

/// Manhattan distance between two points.
int manhattan(const Point& a, const Point& b);

/// Placement of one core: lower-left corner of its rectangular footprint.
struct Placement {
  Point origin;
  friend bool operator==(const Placement&, const Placement&) = default;
};

/// A system-on-chip: the set of embedded cores plus die geometry and an
/// optional placement. This is the primary input to the TAM architecture
/// optimizer; the placement feeds the place-and-route constraint extraction.
class Soc {
 public:
  Soc() = default;
  Soc(std::string name, int die_width, int die_height);

  const std::string& name() const { return name_; }
  int die_width() const { return die_width_; }
  int die_height() const { return die_height_; }
  void set_die(int width, int height);

  std::size_t num_cores() const { return cores_.size(); }
  const Core& core(std::size_t i) const { return cores_.at(i); }
  Core& mutable_core(std::size_t i) { return cores_.at(i); }
  const std::vector<Core>& cores() const { return cores_; }

  /// Appends a core; returns its index.
  std::size_t add_core(Core core);

  /// Index of the core with the given name, if present.
  std::optional<std::size_t> find_core(const std::string& name) const;

  bool has_placement() const { return !placements_.empty(); }
  const Placement& placement(std::size_t i) const { return placements_.at(i); }
  /// Sets placements for all cores at once (size must equal num_cores()).
  void set_placements(std::vector<Placement> placements);

  /// Sum of core test powers — an upper bound on any instantaneous power.
  double total_test_power() const;

  /// Validates all cores, die geometry, and (when present) that placements
  /// are inside the die and pairwise non-overlapping. Empty string if valid.
  std::string validate() const;

 private:
  std::string name_;
  int die_width_ = 0;
  int die_height_ = 0;
  std::vector<Core> cores_;
  std::vector<Placement> placements_;  // empty or one per core
};

}  // namespace soctest
