#include "soc/soc_format.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

/// Internal control-flow exception; converted to a Status at the parse_soc
/// boundary so the deep recursive-descent helpers stay free of plumbing.
struct ParseFail {
  Status status;
};

/// A token plus the 1-based column where it starts, so every diagnostic can
/// point at the exact field: "<source>:<line>:<col>: <message>".
struct Tok {
  std::string text;
  int col = 1;
};

std::vector<Tok> tokenize(const std::string& line) {
  std::vector<Tok> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    const std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) {
      toks.push_back(Tok{line.substr(start, i - start), static_cast<int>(start) + 1});
    }
  }
  return toks;
}

struct LineContext {
  std::string_view source;
  int line_no = 0;
};

[[noreturn]] void fail(const LineContext& ctx, int col, const std::string& msg) {
  throw ParseFail{parse_error(std::string(ctx.source) + ":" +
                              std::to_string(ctx.line_no) + ":" +
                              std::to_string(col) + ": " + msg)};
}

[[noreturn]] void fail(const LineContext& ctx, const std::string& msg) {
  fail(ctx, 1, msg);
}

int parse_int(const Tok& tok, const LineContext& ctx) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(tok.text, &pos);
    if (pos != tok.text.size())
      fail(ctx, tok.col, "trailing characters in integer '" + tok.text + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(ctx, tok.col, "expected integer, got '" + tok.text + "'");
  } catch (const std::out_of_range&) {
    fail(ctx, tok.col, "integer out of range: '" + tok.text + "'");
  }
}

double parse_double(const Tok& tok, const LineContext& ctx) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok.text, &pos);
    if (pos != tok.text.size())
      fail(ctx, tok.col, "trailing characters in number '" + tok.text + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(ctx, tok.col, "expected number, got '" + tok.text + "'");
  } catch (const std::out_of_range&) {
    fail(ctx, tok.col, "number out of range: '" + tok.text + "'");
  }
}

Soc parse_soc_impl(std::istream& in, std::string_view source,
                   const SocParseLimits& limits) {
  Soc soc;
  bool saw_soc = false;
  bool saw_end = false;
  std::map<std::string, Placement> placements;
  std::string line;
  std::size_t bytes_read = 0;
  LineContext ctx{source, 0};
  while (std::getline(in, line)) {
    ++ctx.line_no;
    bytes_read += line.size() + 1;
    if (bytes_read > limits.max_bytes) {
      throw ParseFail{resource_exhausted_error(
          std::string(source) + ":" + std::to_string(ctx.line_no) +
          ": input exceeds " + std::to_string(limits.max_bytes) +
          "-byte SOC size cap")};
    }
    if (failpoint::armed()) {
      if (const auto action = failpoint::hit(failpoint::sites::kSocParseLine)) {
        if (*action == failpoint::Action::kBadAlloc) {
          throw ParseFail{resource_exhausted_error(
              std::string(source) + ":" + std::to_string(ctx.line_no) +
              ": injected allocation failure")};
        }
        fail(ctx, "injected parse fault");
      }
    }
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto toks = tokenize(line);
    if (toks.empty()) continue;
    if (saw_end) fail(ctx, toks[0].col, "content after 'end'");
    const std::string& kw = toks[0].text;
    if (kw == "soc") {
      if (saw_soc) fail(ctx, toks[0].col, "duplicate 'soc' line");
      if (toks.size() != 4) fail(ctx, "expected: soc <name> <w> <h>");
      soc = Soc(toks[1].text, parse_int(toks[2], ctx), parse_int(toks[3], ctx));
      saw_soc = true;
    } else if (kw == "core") {
      if (!saw_soc) fail(ctx, toks[0].col, "'core' before 'soc'");
      Core core;
      if (toks.size() < 2) fail(ctx, "core line missing name");
      core.name = toks[1].text;
      std::size_t i = 2;
      while (i < toks.size()) {
        const Tok& key = toks[i];
        auto need = [&](std::size_t n) {
          if (i + n >= toks.size())
            fail(ctx, key.col, "core attribute '" + key.text + "' missing value");
        };
        if (key.text == "inputs") {
          need(1); core.num_inputs = parse_int(toks[i + 1], ctx); i += 2;
        } else if (key.text == "outputs") {
          need(1); core.num_outputs = parse_int(toks[i + 1], ctx); i += 2;
        } else if (key.text == "bidirs") {
          need(1); core.num_bidirs = parse_int(toks[i + 1], ctx); i += 2;
        } else if (key.text == "patterns") {
          need(1); core.num_patterns = parse_int(toks[i + 1], ctx); i += 2;
        } else if (key.text == "power") {
          need(1); core.test_power_mw = parse_double(toks[i + 1], ctx); i += 2;
        } else if (key.text == "size") {
          need(2);
          core.width = parse_int(toks[i + 1], ctx);
          core.height = parse_int(toks[i + 2], ctx);
          i += 3;
        } else {
          fail(ctx, key.col, "unknown core attribute '" + key.text + "'");
        }
      }
      soc.add_core(std::move(core));
    } else if (kw == "scan") {
      if (toks.size() < 3) fail(ctx, "expected: scan <core> <len>...");
      const auto idx = soc.find_core(toks[1].text);
      if (!idx)
        fail(ctx, toks[1].col, "scan line for unknown core '" + toks[1].text + "'");
      std::vector<int> lengths;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        lengths.push_back(parse_int(toks[i], ctx));
      }
      soc.mutable_core(*idx).scan_chain_lengths = std::move(lengths);
    } else if (kw == "softscan") {
      if (toks.size() != 3) fail(ctx, "expected: softscan <core> <flops>");
      const auto idx = soc.find_core(toks[1].text);
      if (!idx)
        fail(ctx, toks[1].col,
             "softscan line for unknown core '" + toks[1].text + "'");
      soc.mutable_core(*idx).soft_scan_flops = parse_int(toks[2], ctx);
    } else if (kw == "place") {
      if (toks.size() != 4) fail(ctx, "expected: place <core> <x> <y>");
      if (!soc.find_core(toks[1].text))
        fail(ctx, toks[1].col,
             "place line for unknown core '" + toks[1].text + "'");
      placements[toks[1].text] = Placement{
          {parse_int(toks[2], ctx), parse_int(toks[3], ctx)}};
    } else if (kw == "end") {
      saw_end = true;
    } else {
      fail(ctx, toks[0].col, "unknown keyword '" + kw + "'");
    }
  }
  if (!saw_soc) fail(ctx, "missing 'soc' header line");
  if (!saw_end) fail(ctx, "missing 'end' line");
  if (!placements.empty()) {
    if (placements.size() != soc.num_cores()) {
      fail(ctx, "placement lines must cover all cores or none");
    }
    std::vector<Placement> ordered(soc.num_cores());
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      ordered[i] = placements.at(soc.core(i).name);
    }
    soc.set_placements(std::move(ordered));
  }
  const std::string err = soc.validate();
  if (!err.empty()) {
    throw ParseFail{parse_error(std::string(source) + ": invalid SOC: " + err)};
  }
  return soc;
}

}  // namespace

StatusOr<Soc> parse_soc(std::istream& in, std::string_view source,
                        const SocParseLimits& limits) {
  if (failpoint::armed()) {
    if (const auto action = failpoint::hit(failpoint::sites::kSocParseOpen)) {
      if (*action == failpoint::Action::kBadAlloc) {
        return resource_exhausted_error(std::string(source) +
                                        ": injected allocation failure");
      }
      return io_error(std::string(source) + ": injected open failure");
    }
  }
  try {
    return parse_soc_impl(in, source, limits);
  } catch (const ParseFail& pf) {
    return pf.status;
  } catch (const std::bad_alloc&) {
    return resource_exhausted_error(std::string(source) +
                                    ": out of memory while parsing");
  } catch (const std::exception& ex) {
    return internal_error(std::string(source) + ": " + ex.what());
  }
}

StatusOr<Soc> parse_soc_string(const std::string& text, std::string_view source,
                               const SocParseLimits& limits) {
  if (text.size() > limits.max_bytes) {
    return resource_exhausted_error(
        std::string(source) + ": input exceeds " +
        std::to_string(limits.max_bytes) + "-byte SOC size cap");
  }
  std::istringstream in(text);
  return parse_soc(in, source, limits);
}

StatusOr<Soc> parse_soc_file(const std::string& path,
                             const SocParseLimits& limits) {
  std::ifstream in(path);
  if (!in) return not_found_error("cannot open SOC file: " + path);
  return parse_soc(in, path, limits);
}

Soc read_soc(std::istream& in) {
  auto result = parse_soc(in);
  if (!result.ok()) throw std::runtime_error(result.status().message());
  return result.take();
}

Soc read_soc_string(const std::string& text) {
  auto result = parse_soc_string(text);
  if (!result.ok()) throw std::runtime_error(result.status().message());
  return result.take();
}

Soc read_soc_file(const std::string& path) {
  auto result = parse_soc_file(path);
  if (!result.ok()) throw std::runtime_error(result.status().message());
  return result.take();
}

std::string write_soc(const Soc& soc) {
  std::ostringstream out;
  out << "soc " << soc.name() << " " << soc.die_width() << " "
      << soc.die_height() << "\n";
  for (const auto& c : soc.cores()) {
    out << "core " << c.name << " inputs " << c.num_inputs << " outputs "
        << c.num_outputs << " bidirs " << c.num_bidirs << " patterns "
        << c.num_patterns << " power " << c.test_power_mw << " size "
        << c.width << " " << c.height << "\n";
    if (!c.scan_chain_lengths.empty()) {
      out << "scan " << c.name;
      for (int len : c.scan_chain_lengths) out << " " << len;
      out << "\n";
    }
    if (c.soft_scan_flops > 0) {
      out << "softscan " << c.name << " " << c.soft_scan_flops << "\n";
    }
  }
  if (soc.has_placement()) {
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      out << "place " << soc.core(i).name << " " << soc.placement(i).origin.x
          << " " << soc.placement(i).origin.y << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

void write_soc_file(const Soc& soc, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SOC file: " + path);
  out << write_soc(soc);
}

}  // namespace soctest
