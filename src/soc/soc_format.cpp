#include "soc/soc_format.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/text.hpp"

namespace soctest {

namespace {

[[noreturn]] void fail(int line_no, const std::string& msg) {
  throw std::runtime_error("soc format error at line " +
                           std::to_string(line_no) + ": " + msg);
}

int parse_int(const std::string& tok, int line_no) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(tok, &pos);
    if (pos != tok.size()) fail(line_no, "trailing characters in integer '" + tok + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line_no, "expected integer, got '" + tok + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, "integer out of range: '" + tok + "'");
  }
}

double parse_double(const std::string& tok, int line_no) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) fail(line_no, "trailing characters in number '" + tok + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line_no, "expected number, got '" + tok + "'");
  } catch (const std::out_of_range&) {
    fail(line_no, "number out of range: '" + tok + "'");
  }
}

}  // namespace

Soc read_soc(std::istream& in) {
  Soc soc;
  bool saw_soc = false;
  bool saw_end = false;
  std::map<std::string, Placement> placements;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto toks = split_ws(line);
    if (toks.empty()) continue;
    if (saw_end) fail(line_no, "content after 'end'");
    const std::string& kw = toks[0];
    if (kw == "soc") {
      if (saw_soc) fail(line_no, "duplicate 'soc' line");
      if (toks.size() != 4) fail(line_no, "expected: soc <name> <w> <h>");
      soc = Soc(toks[1], parse_int(toks[2], line_no), parse_int(toks[3], line_no));
      saw_soc = true;
    } else if (kw == "core") {
      if (!saw_soc) fail(line_no, "'core' before 'soc'");
      Core core;
      if (toks.size() < 2) fail(line_no, "core line missing name");
      core.name = toks[1];
      std::size_t i = 2;
      while (i < toks.size()) {
        const std::string& key = toks[i];
        auto need = [&](std::size_t n) {
          if (i + n >= toks.size())
            fail(line_no, "core attribute '" + key + "' missing value");
        };
        if (key == "inputs") {
          need(1); core.num_inputs = parse_int(toks[i + 1], line_no); i += 2;
        } else if (key == "outputs") {
          need(1); core.num_outputs = parse_int(toks[i + 1], line_no); i += 2;
        } else if (key == "bidirs") {
          need(1); core.num_bidirs = parse_int(toks[i + 1], line_no); i += 2;
        } else if (key == "patterns") {
          need(1); core.num_patterns = parse_int(toks[i + 1], line_no); i += 2;
        } else if (key == "power") {
          need(1); core.test_power_mw = parse_double(toks[i + 1], line_no); i += 2;
        } else if (key == "size") {
          need(2);
          core.width = parse_int(toks[i + 1], line_no);
          core.height = parse_int(toks[i + 2], line_no);
          i += 3;
        } else {
          fail(line_no, "unknown core attribute '" + key + "'");
        }
      }
      soc.add_core(std::move(core));
    } else if (kw == "scan") {
      if (toks.size() < 3) fail(line_no, "expected: scan <core> <len>...");
      const auto idx = soc.find_core(toks[1]);
      if (!idx) fail(line_no, "scan line for unknown core '" + toks[1] + "'");
      std::vector<int> lengths;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        lengths.push_back(parse_int(toks[i], line_no));
      }
      soc.mutable_core(*idx).scan_chain_lengths = std::move(lengths);
    } else if (kw == "softscan") {
      if (toks.size() != 3) fail(line_no, "expected: softscan <core> <flops>");
      const auto idx = soc.find_core(toks[1]);
      if (!idx) fail(line_no, "softscan line for unknown core '" + toks[1] + "'");
      soc.mutable_core(*idx).soft_scan_flops = parse_int(toks[2], line_no);
    } else if (kw == "place") {
      if (toks.size() != 4) fail(line_no, "expected: place <core> <x> <y>");
      if (!soc.find_core(toks[1]))
        fail(line_no, "place line for unknown core '" + toks[1] + "'");
      placements[toks[1]] = Placement{
          {parse_int(toks[2], line_no), parse_int(toks[3], line_no)}};
    } else if (kw == "end") {
      saw_end = true;
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
  }
  if (!saw_soc) fail(line_no, "missing 'soc' header line");
  if (!saw_end) fail(line_no, "missing 'end' line");
  if (!placements.empty()) {
    if (placements.size() != soc.num_cores()) {
      fail(line_no, "placement lines must cover all cores or none");
    }
    std::vector<Placement> ordered(soc.num_cores());
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      ordered[i] = placements.at(soc.core(i).name);
    }
    soc.set_placements(std::move(ordered));
  }
  const std::string err = soc.validate();
  if (!err.empty()) throw std::runtime_error("invalid SOC: " + err);
  return soc;
}

Soc read_soc_string(const std::string& text) {
  std::istringstream in(text);
  return read_soc(in);
}

Soc read_soc_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open SOC file: " + path);
  return read_soc(in);
}

std::string write_soc(const Soc& soc) {
  std::ostringstream out;
  out << "soc " << soc.name() << " " << soc.die_width() << " "
      << soc.die_height() << "\n";
  for (const auto& c : soc.cores()) {
    out << "core " << c.name << " inputs " << c.num_inputs << " outputs "
        << c.num_outputs << " bidirs " << c.num_bidirs << " patterns "
        << c.num_patterns << " power " << c.test_power_mw << " size "
        << c.width << " " << c.height << "\n";
    if (!c.scan_chain_lengths.empty()) {
      out << "scan " << c.name;
      for (int len : c.scan_chain_lengths) out << " " << len;
      out << "\n";
    }
    if (c.soft_scan_flops > 0) {
      out << "softscan " << c.name << " " << c.soft_scan_flops << "\n";
    }
  }
  if (soc.has_placement()) {
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      out << "place " << soc.core(i).name << " " << soc.placement(i).origin.x
          << " " << soc.placement(i).origin.y << "\n";
    }
  }
  out << "end\n";
  return out.str();
}

void write_soc_file(const Soc& soc, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write SOC file: " + path);
  out << write_soc(soc);
}

}  // namespace soctest
