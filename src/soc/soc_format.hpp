#pragma once

#include <iosfwd>
#include <string>

#include "soc/soc.hpp"

namespace soctest {

/// Line-oriented text format for SOC descriptions (ITC'02-flavored).
///
/// ```
/// # comment
/// soc <name> <die_width> <die_height>
/// core <name> inputs <n> outputs <n> bidirs <n> patterns <n> power <mw> size <w> <h>
/// scan <core_name> <len1> <len2> ...
/// softscan <core_name> <flops>
/// place <core_name> <x> <y>
/// end
/// ```
///
/// `scan` and `place` lines refer to previously declared cores. `place` lines
/// are all-or-nothing: either every core is placed or none is. Parsing errors
/// throw std::runtime_error with a line number.
Soc read_soc(std::istream& in);
Soc read_soc_string(const std::string& text);
Soc read_soc_file(const std::string& path);

std::string write_soc(const Soc& soc);
void write_soc_file(const Soc& soc, const std::string& path);

}  // namespace soctest
