#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "runtime/status.hpp"
#include "soc/soc.hpp"

namespace soctest {

/// Line-oriented text format for SOC descriptions (ITC'02-flavored).
///
/// ```
/// # comment
/// soc <name> <die_width> <die_height>
/// core <name> inputs <n> outputs <n> bidirs <n> patterns <n> power <mw> size <w> <h>
/// scan <core_name> <len1> <len2> ...
/// softscan <core_name> <flops>
/// place <core_name> <x> <y>
/// end
/// ```
///
/// `scan` and `place` lines refer to previously declared cores. `place` lines
/// are all-or-nothing: either every core is placed or none is.

/// Guard rails applied while parsing untrusted input.
struct SocParseLimits {
  /// Inputs larger than this are rejected with kResourceExhausted before
  /// they can balloon the in-memory model (docs/robustness.md).
  std::size_t max_bytes = 16u * 1024u * 1024u;
};

/// Status-returning parser entry points. Failures carry the source name and
/// the 1-based line:column of the offending token in a single message, e.g.
/// "camchip.soc:12:7: expected integer, got 'x'". File-open failures map to
/// kNotFound, oversized inputs to kResourceExhausted, malformed content to
/// kParseError.
StatusOr<Soc> parse_soc(std::istream& in, std::string_view source = "<stream>",
                        const SocParseLimits& limits = {});
StatusOr<Soc> parse_soc_string(const std::string& text,
                               std::string_view source = "<string>",
                               const SocParseLimits& limits = {});
StatusOr<Soc> parse_soc_file(const std::string& path,
                             const SocParseLimits& limits = {});

/// Throwing wrappers kept for call sites without a Status channel; they
/// raise std::runtime_error carrying the same diagnostic message.
Soc read_soc(std::istream& in);
Soc read_soc_string(const std::string& text);
Soc read_soc_file(const std::string& path);

std::string write_soc(const Soc& soc);
void write_soc_file(const Soc& soc, const std::string& path);

}  // namespace soctest
