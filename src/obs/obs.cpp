#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace soctest::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

std::atomic<TraceSink*> g_sink{nullptr};

/// Open-span stack of the current thread (ids); the back is the parent of
/// any span/instant created next on this thread.
thread_local std::vector<std::uint64_t> t_span_stack;

struct Registry {
  std::mutex mu;
  // std::map: node-based, so value addresses are stable across inserts and
  // the snapshot comes out name-sorted for free.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Histogram, std::less<>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: counters outlive every user
  return *r;
}

}  // namespace

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  int bucket = 0;
  if (value >= 1.0) {
    bucket = std::min(kNumBuckets - 1,
                      1 + static_cast<int>(std::floor(std::log2(value))));
  }
  ++buckets_[bucket];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  int last = -1;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] != 0) last = i;
  }
  snap.buckets.assign(buckets_, buckets_ + last + 1);
  return snap;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
}

RateCounter::RateCounter(int window_seconds)
    : window_(window_seconds < 1 ? 1 : window_seconds),
      slots_(static_cast<std::size_t>(window_), 0),
      slot_sec_(static_cast<std::size_t>(window_), -1),
      origin_(std::chrono::steady_clock::now()) {}

std::int64_t RateCounter::seconds_now() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void RateCounter::add(long long delta) {
  const std::int64_t now = seconds_now();
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = static_cast<std::size_t>(now % window_);
  if (slot_sec_[idx] != now) {  // slot is a stale lap of the ring
    slot_sec_[idx] = now;
    slots_[idx] = 0;
  }
  slots_[idx] += delta;
}

long long RateCounter::sum() const {
  const std::int64_t now = seconds_now();
  std::lock_guard<std::mutex> lock(mu_);
  long long total = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slot_sec_[i] >= 0 && now - slot_sec_[i] < window_) total += slots_[i];
  }
  return total;
}

double RateCounter::rate() const {
  const std::int64_t lived = seconds_now() + 1;  // current partial second
  const double span = static_cast<double>(
      lived < window_ ? (lived < 1 ? 1 : lived) : window_);
  return static_cast<double>(sum()) / span;
}

void RateCounter::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(slots_.begin(), slots_.end(), 0);
  std::fill(slot_sec_.begin(), slot_sec_.end(), std::int64_t{-1});
}

WindowedHistogram::WindowedHistogram(int window_seconds)
    : window_(window_seconds < 1 ? 1 : window_seconds),
      slots_(static_cast<std::size_t>(window_)),
      origin_(std::chrono::steady_clock::now()) {}

std::int64_t WindowedHistogram::seconds_now() const {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void WindowedHistogram::observe(double value) {
  const std::int64_t now = seconds_now();
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[static_cast<std::size_t>(now % window_)];
  if (slot.sec != now) {
    slot.sec = now;
    slot.count = 0;
    slot.sum = 0.0;
    std::fill(std::begin(slot.buckets), std::end(slot.buckets), 0);
  }
  ++slot.count;
  slot.sum += value;
  int bucket = 0;
  if (value >= 1.0) {
    bucket = std::min(kNumBuckets - 1,
                      1 + static_cast<int>(std::floor(std::log2(value))));
  }
  ++slot.buckets[bucket];
}

WindowedHistogram::Snapshot WindowedHistogram::snapshot() const {
  const std::int64_t now = seconds_now();
  std::lock_guard<std::mutex> lock(mu_);
  long long merged[kNumBuckets] = {};
  Snapshot snap;
  for (const Slot& slot : slots_) {
    if (slot.sec < 0 || now - slot.sec >= window_) continue;
    snap.count += slot.count;
    snap.sum += slot.sum;
    for (int i = 0; i < kNumBuckets; ++i) merged[i] += slot.buckets[i];
  }
  int last = -1;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (merged[i] != 0) last = i;
  }
  snap.buckets.assign(merged, merged + last + 1);
  return snap;
}

double WindowedHistogram::percentile_of(const Snapshot& snap, double p) {
  if (snap.count <= 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // The observation with (1-based) rank ceil(p * count), walked through the
  // cumulative bucket counts; linear interpolation inside the bucket.
  const double rank = p * static_cast<double>(snap.count);
  long long seen = 0;
  for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
    const long long in_bucket = snap.buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= rank) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double hi = i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac);
    }
    seen += in_bucket;
  }
  return std::ldexp(1.0, static_cast<int>(snap.buckets.size()));
}

double WindowedHistogram::percentile(double p) const {
  return percentile_of(snapshot(), p);
}

void WindowedHistogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) slot = Slot{};
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.try_emplace(std::string(name)).first;
  }
  return it->second;
}

// Name-sorted order is a documented contract, not a container accident:
// `--metrics` golden tests and `soctest-perf diff` line up snapshots from
// different runs by position. The sort below stays correct even if the
// registry ever moves to an unordered container.

std::vector<CounterValue> counter_values() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<CounterValue> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.push_back({name, c.value()});
  std::sort(out.begin(), out.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<HistogramValue> histogram_values() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<HistogramValue> out;
  out.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    out.push_back({name, h.snapshot()});
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramValue& a, const HistogramValue& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c.reset();
  for (auto& [name, h] : r.histograms) h.reset();
}

TraceSink::TraceSink() : start_(std::chrono::steady_clock::now()) {
  const char* fake = std::getenv("SOCTEST_OBS_FAKE_CLOCK");
  fake_clock_ = fake != nullptr && std::string_view(fake) != "0";
}

double TraceSink::now_us() const {
  if (fake_clock_) {
    return static_cast<double>(
        fake_ticks_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

int TraceSink::thread_index(std::thread::id id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      threads_.try_emplace(id, static_cast<int>(threads_.size()));
  return it->second;
}

void TraceSink::append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceSink::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

TraceSink* current_sink() noexcept {
  return g_sink.load(std::memory_order_acquire);
}

TraceSession::TraceSession(TraceSink* sink) {
  reset_metrics();
  g_sink.store(sink, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() {
  detail::g_enabled.store(false, std::memory_order_release);
  g_sink.store(nullptr, std::memory_order_release);
}

Span::Span(std::string_view name, std::initializer_list<Arg> args) {
  TraceSink* sink = current_sink();
  if (sink == nullptr) return;
  sink_ = sink;
  name_ = name;
  args_ = args;
  id_ = sink->next_id();
  parent_ = t_span_stack.empty() ? 0 : t_span_stack.back();
  t_span_stack.push_back(id_);
  start_us_ = sink->now_us();
}

Span::~Span() {
  if (sink_ == nullptr) return;
  if (!t_span_stack.empty() && t_span_stack.back() == id_) {
    t_span_stack.pop_back();
  }
  TraceEvent event;
  event.id = id_;
  event.parent = parent_;
  event.kind = TraceEvent::Kind::kSpan;
  event.name = std::move(name_);
  event.thread = sink_->thread_index(std::this_thread::get_id());
  event.start_us = start_us_;
  event.dur_us = sink_->now_us() - start_us_;
  event.args = std::move(args_);
  sink_->append(std::move(event));
}

void Span::arg(Arg a) {
  if (sink_ == nullptr) return;
  args_.push_back(std::move(a));
}

void emit_span(std::string_view name, double start_us, double dur_us,
               std::vector<Arg> args) {
  TraceSink* sink = current_sink();
  if (sink == nullptr) return;
  TraceEvent event;
  event.id = sink->next_id();
  event.parent = 0;  // the logical parent is in another process's shard
  event.kind = TraceEvent::Kind::kSpan;
  event.name = name;
  event.thread = sink->thread_index(std::this_thread::get_id());
  event.start_us = start_us;
  event.dur_us = dur_us;
  event.args = std::move(args);
  sink->append(std::move(event));
}

void emit_span(std::string_view name, double start_us, double dur_us,
               std::initializer_list<Arg> args) {
  if (current_sink() == nullptr) return;
  emit_span(name, start_us, dur_us, std::vector<Arg>(args));
}

void instant(std::string_view name) { instant(name, {}); }

void instant(std::string_view name, std::initializer_list<Arg> args) {
  TraceSink* sink = current_sink();
  if (sink == nullptr) return;
  TraceEvent event;
  event.id = sink->next_id();
  event.parent = t_span_stack.empty() ? 0 : t_span_stack.back();
  event.kind = TraceEvent::Kind::kInstant;
  event.name = name;
  event.thread = sink->thread_index(std::this_thread::get_id());
  event.start_us = sink->now_us();
  event.args = args;
  sink->append(std::move(event));
}

}  // namespace soctest::obs
