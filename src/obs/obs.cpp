#include "obs/obs.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace soctest::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

std::atomic<TraceSink*> g_sink{nullptr};

/// Open-span stack of the current thread (ids); the back is the parent of
/// any span/instant created next on this thread.
thread_local std::vector<std::uint64_t> t_span_stack;

struct Registry {
  std::mutex mu;
  // std::map: node-based, so value addresses are stable across inserts and
  // the snapshot comes out name-sorted for free.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Histogram, std::less<>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: counters outlive every user
  return *r;
}

}  // namespace

void Histogram::observe(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  int bucket = 0;
  if (value >= 1.0) {
    bucket = std::min(kNumBuckets - 1,
                      1 + static_cast<int>(std::floor(std::log2(value))));
  }
  ++buckets_[bucket];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  int last = -1;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] != 0) last = i;
  }
  snap.buckets.assign(buckets_, buckets_ + last + 1);
  return snap;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Histogram& histogram(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.try_emplace(std::string(name)).first;
  }
  return it->second;
}

// Name-sorted order is a documented contract, not a container accident:
// `--metrics` golden tests and `soctest-perf diff` line up snapshots from
// different runs by position. The sort below stays correct even if the
// registry ever moves to an unordered container.

std::vector<CounterValue> counter_values() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<CounterValue> out;
  out.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) out.push_back({name, c.value()});
  std::sort(out.begin(), out.end(),
            [](const CounterValue& a, const CounterValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<HistogramValue> histogram_values() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<HistogramValue> out;
  out.reserve(r.histograms.size());
  for (const auto& [name, h] : r.histograms) {
    out.push_back({name, h.snapshot()});
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramValue& a, const HistogramValue& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c.reset();
  for (auto& [name, h] : r.histograms) h.reset();
}

TraceSink::TraceSink() : start_(std::chrono::steady_clock::now()) {
  const char* fake = std::getenv("SOCTEST_OBS_FAKE_CLOCK");
  fake_clock_ = fake != nullptr && std::string_view(fake) != "0";
}

double TraceSink::now_us() const {
  if (fake_clock_) {
    return static_cast<double>(
        fake_ticks_.fetch_add(1, std::memory_order_relaxed) + 1);
  }
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

int TraceSink::thread_index(std::thread::id id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      threads_.try_emplace(id, static_cast<int>(threads_.size()));
  return it->second;
}

void TraceSink::append(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceSink::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t TraceSink::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

TraceSink* current_sink() noexcept {
  return g_sink.load(std::memory_order_acquire);
}

TraceSession::TraceSession(TraceSink* sink) {
  reset_metrics();
  g_sink.store(sink, std::memory_order_release);
  detail::g_enabled.store(true, std::memory_order_release);
}

TraceSession::~TraceSession() {
  detail::g_enabled.store(false, std::memory_order_release);
  g_sink.store(nullptr, std::memory_order_release);
}

Span::Span(std::string_view name, std::initializer_list<Arg> args) {
  TraceSink* sink = current_sink();
  if (sink == nullptr) return;
  sink_ = sink;
  name_ = name;
  args_ = args;
  id_ = sink->next_id();
  parent_ = t_span_stack.empty() ? 0 : t_span_stack.back();
  t_span_stack.push_back(id_);
  start_us_ = sink->now_us();
}

Span::~Span() {
  if (sink_ == nullptr) return;
  if (!t_span_stack.empty() && t_span_stack.back() == id_) {
    t_span_stack.pop_back();
  }
  TraceEvent event;
  event.id = id_;
  event.parent = parent_;
  event.kind = TraceEvent::Kind::kSpan;
  event.name = std::move(name_);
  event.thread = sink_->thread_index(std::this_thread::get_id());
  event.start_us = start_us_;
  event.dur_us = sink_->now_us() - start_us_;
  event.args = std::move(args_);
  sink_->append(std::move(event));
}

void Span::arg(Arg a) {
  if (sink_ == nullptr) return;
  args_.push_back(std::move(a));
}

void instant(std::string_view name) { instant(name, {}); }

void instant(std::string_view name, std::initializer_list<Arg> args) {
  TraceSink* sink = current_sink();
  if (sink == nullptr) return;
  TraceEvent event;
  event.id = sink->next_id();
  event.parent = t_span_stack.empty() ? 0 : t_span_stack.back();
  event.kind = TraceEvent::Kind::kInstant;
  event.name = name;
  event.thread = sink->thread_index(std::this_thread::get_id());
  event.start_us = sink->now_us();
  event.args = args;
  sink->append(std::move(event));
}

}  // namespace soctest::obs
