#include "obs/ledger.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"
#include "report/json.hpp"

namespace soctest::obs {

void fill_ledger_counters(LedgerRecord& record) {
  record.counters.clear();
  // counter_values() is name-sorted and kLedgerCounters is kept sorted, so
  // one merge pass pins the set; a pinned name that was never registered
  // this run records as 0 (absence is itself a signal worth diffing).
  const auto values = counter_values();
  for (const char* name : kLedgerCounters) {
    long long value = 0;
    for (const auto& c : values) {
      if (c.name == name) {
        value = c.value;
        break;
      }
    }
    record.counters.emplace_back(name, value);
  }
}

std::string ledger_record_json(const LedgerRecord& record) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("soctest-ledger-v1");
  w.key("soc").value(record.soc);
  w.key("widths").begin_array();
  for (int width : record.widths) w.value(width);
  w.end_array();
  w.key("solver").value(record.solver);
  w.key("seed").value(static_cast<long long>(record.seed));
  w.key("threads_configured").value(record.threads_configured);
  w.key("threads_effective").value(record.threads_effective);
  w.key("feasible").value(record.feasible);
  w.key("status").value(record.status);
  w.key("gap").value(record.gap);
  w.key("t_cycles").value(record.t_cycles);
  w.key("solve_mode").value(record.solve_mode);
  w.key("wall_ms").value(record.wall_ms);
  if (!record.trace_id.empty()) w.key("trace_id").value(record.trace_id);
  w.key("exit_code").value(record.exit_code);
  w.key("counters").begin_object();
  for (const auto& [name, value] : record.counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.end_object();
  return w.str();
}

namespace {

bool append_ledger_line(const std::string& path, const std::string& line,
                        std::string* error) {
  // "a" opens O_APPEND: concurrent writers interleave whole lines, not
  // bytes, for writes this size on POSIX filesystems.
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    if (error != nullptr) {
      *error = path + ": " + std::strerror(errno);
    }
    return false;
  }
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), file) == line.size() &&
      std::fflush(file) == 0;
  if (!ok && error != nullptr) {
    *error = path + ": " + std::strerror(errno);
  }
  std::fclose(file);
  return ok;
}

}  // namespace

bool append_ledger_record(const std::string& path, const LedgerRecord& record,
                          std::string* error) {
  return append_ledger_line(path, ledger_record_json(record) + "\n", error);
}

std::string rejection_record_json(const RejectionRecord& record) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("soctest-ledger-v1");
  w.key("kind").value("rejected");
  w.key("id").value(record.id);
  w.key("shard").value(record.shard);
  w.key("retry_after_ms").value(record.retry_after_ms);
  if (!record.trace_id.empty()) w.key("trace_id").value(record.trace_id);
  w.end_object();
  return w.str();
}

bool append_rejection_record(const std::string& path,
                             const RejectionRecord& record,
                             std::string* error) {
  return append_ledger_line(path, rejection_record_json(record) + "\n",
                            error);
}

std::string ledger_path_from_env() {
  const char* env = std::getenv("SOCTEST_LEDGER");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace soctest::obs
