#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace soctest::obs {

// Lightweight solver-observability layer: named counters and histograms,
// RAII span timers with parent/child nesting, and an in-memory per-run
// TraceSink. Everything is inert until a TraceSession is live, and the
// disabled-mode hot path is a single relaxed atomic load — instrumented
// code guards any work beyond that with `if (obs::enabled())` and batches
// per-node tallies into one counter add at the end of a search.
//
// Serialization lives in src/report/run_report.hpp (this library stays a
// leaf so every solver layer can link it without cycles). Naming
// conventions and the trace-file schema are documented in
// docs/observability.md.

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// True while a TraceSession is live. The one check instrumented code is
/// allowed to pay on a hot path when observability is off.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Monotonically increasing named value. add() is lock-free and safe from
/// any thread; use plain local tallies inside tight search loops and one
/// add() when the loop exits.
class Counter {
 public:
  void add(long long delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// Summary histogram: count/sum/min/max plus power-of-two magnitude
/// buckets (bucket k counts observations in [2^(k-1), 2^k), bucket 0 is
/// everything below 1). Mutex-guarded — meant for per-solve statistics,
/// not per-node ones.
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  struct Snapshot {
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<long long> buckets;  ///< trailing all-zero buckets trimmed
  };

  void observe(double value);
  Snapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mu_;
  long long count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  long long buckets_[kNumBuckets] = {};
};

/// Registry lookup; the name is interned on first use and the returned
/// reference stays valid for the process lifetime. The lookup takes a lock,
/// so hot paths cache it: `static obs::Counter& c = obs::counter("x");`.
Counter& counter(std::string_view name);
Histogram& histogram(std::string_view name);

/// Sliding-window event counter: a ring of per-second slots (default 60)
/// over an internal steady clock, so rate() answers "events per second,
/// recently" rather than "since process start". Mutex-guarded; meant for
/// request-granularity accounting (the soctest-stats-v1 scrape answers),
/// not per-node tallies. Not registry-interned — owners hold instances
/// directly because the window semantics are per-owner, not global.
class RateCounter {
 public:
  explicit RateCounter(int window_seconds = 60);

  void add(long long delta = 1);
  /// Events observed within the trailing window.
  long long sum() const;
  /// sum() divided by the lived-in window span: min(window, seconds since
  /// construction, floored at 1) — a freshly started process reports its
  /// real short-horizon rate instead of diluting over an empty minute.
  double rate() const;
  void reset();

 private:
  std::int64_t seconds_now() const;
  mutable std::mutex mu_;
  int window_;
  std::vector<long long> slots_;
  std::vector<std::int64_t> slot_sec_;  ///< second each slot last counted
  std::chrono::steady_clock::time_point origin_;
};

/// Sliding-window histogram: per-second slots each holding count/sum plus
/// the same power-of-two magnitude buckets as Histogram, merged on
/// snapshot. percentile() estimates from the merged buckets with linear
/// interpolation inside the winning bucket — coarse (bucket-resolution)
/// but windowed, which is what a live p95 needs. Mutex-guarded.
class WindowedHistogram {
 public:
  static constexpr int kNumBuckets = Histogram::kNumBuckets;

  struct Snapshot {
    long long count = 0;
    double sum = 0.0;
    std::vector<long long> buckets;  ///< trailing all-zero buckets trimmed
  };

  explicit WindowedHistogram(int window_seconds = 60);

  void observe(double value);
  Snapshot snapshot() const;
  /// Windowed percentile estimate, p in [0, 1]; 0 when the window is empty.
  double percentile(double p) const;
  /// The same estimator over an already-merged snapshot (tests, tools that
  /// receive buckets over the wire).
  static double percentile_of(const Snapshot& snap, double p);
  void reset();

 private:
  struct Slot {
    std::int64_t sec = -1;  ///< -1 = never used
    long long count = 0;
    double sum = 0.0;
    long long buckets[kNumBuckets] = {};
  };

  std::int64_t seconds_now() const;
  mutable std::mutex mu_;
  int window_;
  std::vector<Slot> slots_;
  std::chrono::steady_clock::time_point origin_;
};

struct CounterValue {
  std::string name;
  long long value = 0;
};
struct HistogramValue {
  std::string name;
  Histogram::Snapshot stats;
};

/// All registered counters/histograms, sorted by name. Zero-valued entries
/// are included (a registered counter that never fired is itself a signal).
std::vector<CounterValue> counter_values();
std::vector<HistogramValue> histogram_values();

/// Zeroes every registered counter and histogram (the names stay
/// registered). TraceSession does this on entry so a run's snapshot covers
/// only that run.
void reset_metrics();

/// One key/value attachment on a span or instant event. Numeric kinds are
/// preserved so the JSON serializer can emit them unquoted.
struct Arg {
  enum class Kind { kString, kInt, kFloat, kBool };

  Arg(std::string_view key, std::string_view value)
      : key(key), kind(Kind::kString), text(value) {}
  Arg(std::string_view key, const char* value)
      : Arg(key, std::string_view(value)) {}
  Arg(std::string_view key, const std::string& value)
      : Arg(key, std::string_view(value)) {}
  Arg(std::string_view key, long long value)
      : key(key), kind(Kind::kInt), int_value(value) {}
  Arg(std::string_view key, int value)
      : Arg(key, static_cast<long long>(value)) {}
  Arg(std::string_view key, std::size_t value)
      : Arg(key, static_cast<long long>(value)) {}
  Arg(std::string_view key, double value)
      : key(key), kind(Kind::kFloat), float_value(value) {}
  Arg(std::string_view key, bool value)
      : key(key), kind(Kind::kBool), bool_value(value) {}

  std::string key;
  Kind kind = Kind::kString;
  std::string text;
  long long int_value = 0;
  double float_value = 0.0;
  bool bool_value = false;
};

/// One recorded event. Spans carry a duration; instants are points in time.
/// `parent` is the id of the span that was open on the emitting thread when
/// the event began (0 = root). Timestamps are microseconds since the sink
/// was created.
struct TraceEvent {
  enum class Kind { kSpan, kInstant };

  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  Kind kind = Kind::kSpan;
  std::string name;
  int thread = 0;  ///< dense per-sink thread index (0 = first seen)
  double start_us = 0.0;
  double dur_us = 0.0;  ///< 0 for instants
  std::vector<Arg> args;
};

/// Per-run event collector. Thread-safe appends; events are stored in
/// completion order (a child span finishes before its parent). The sink
/// must outlive every Span created while it was installed.
///
/// Setting the SOCTEST_OBS_FAKE_CLOCK environment variable (any value but
/// "0") at sink construction replaces the steady clock with a per-sink tick
/// counter: every now_us() call returns the next integer microsecond. A
/// serial fixed-seed run then produces bit-identical traces — and therefore
/// byte-identical `--profile` tables — across invocations, which is what
/// the profile golden tests pin.
class TraceSink {
 public:
  TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  std::vector<TraceEvent> events() const;
  std::size_t num_events() const;

  /// Microseconds since the sink was created (the event time base).
  double now_us() const;

  /// True when SOCTEST_OBS_FAKE_CLOCK replaced the steady clock with the
  /// per-sink tick counter. Trace-shard writers check this to zero the
  /// realtime clock anchor — a wall-clock stamp would break the
  /// byte-identical reruns the fake clock exists to provide.
  bool fake_clock() const noexcept { return fake_clock_; }

  // Internal hooks used by Span/instant.
  std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  int thread_index(std::thread::id id);
  void append(TraceEvent event);

 private:
  std::chrono::steady_clock::time_point start_;
  bool fake_clock_ = false;
  mutable std::atomic<std::uint64_t> fake_ticks_{0};
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::thread::id, int> threads_;
};

/// The sink events currently go to, or nullptr when tracing is off (metrics
/// may still be enabled — see TraceSession).
TraceSink* current_sink() noexcept;

/// Scoped enablement of the observability layer. At most one session may be
/// live at a time (sessions are per-run, created at the CLI/bench top
/// level). Counters/histograms are reset on entry; with a sink, spans and
/// instants are recorded too; with nullptr only counters run (--metrics
/// without --trace).
class TraceSession {
 public:
  explicit TraceSession(TraceSink* sink);
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
};

/// RAII span timer. Construction is a no-op (no allocation, no clock read)
/// unless a sink is installed; destruction records the completed event.
/// Spans nest per thread: a span opened while another is open on the same
/// thread records it as its parent. Create and destroy on the same thread.
class Span {
 public:
  explicit Span(std::string_view name) : Span(name, {}) {}
  Span(std::string_view name, std::initializer_list<Arg> args);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when the span is being recorded (cheaper than enabled() +
  /// re-checking the sink when attaching result args).
  bool active() const noexcept { return sink_ != nullptr; }

  /// Attaches a result argument (no-op when inactive).
  void arg(Arg a);

 private:
  TraceSink* sink_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  double start_us_ = 0.0;
  std::string name_;
  std::vector<Arg> args_;
};

/// Records a point event under the current thread's open span. Callers with
/// argument lists should guard with `if (obs::enabled())` so the Arg
/// construction is not paid when observability is off.
void instant(std::string_view name);
void instant(std::string_view name, std::initializer_list<Arg> args);

/// Appends an already-timed root span (start/duration in the sink's time
/// base, microseconds). For event-loop code that cannot hold a Span object
/// across callbacks — the front door's relay/queue spans start when a
/// request line arrives and end when its final settles, possibly after a
/// worker respawn. Cross-process links ride in string args (`trace_id`,
/// `span_guid`, `parent_guid`); `parent` stays 0 because the parent lives
/// in another process's shard. No-op without a sink. Guard Arg
/// construction with `if (obs::enabled())`.
void emit_span(std::string_view name, double start_us, double dur_us,
               std::vector<Arg> args);
void emit_span(std::string_view name, double start_us, double dur_us,
               std::initializer_list<Arg> args);

}  // namespace soctest::obs
