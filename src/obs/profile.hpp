#pragma once

#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace soctest::obs {

// Span-profile aggregation: folds the event list of a completed
// TraceSession into a per-span-name profile with self-time attribution,
// plus a collapsed-stack ("folded") export loadable by flamegraph.pl and
// speedscope. Pure post-processing — nothing here runs while a solve is
// being traced, so it adds zero cost to the instrumented hot paths.
// Serializers (text table, soctest-profile-v1 JSON) live in
// src/report/run_report.hpp with the other obs serializers.

/// Aggregated statistics of every span that shared one name.
struct SpanProfile {
  std::string name;
  long long count = 0;
  /// Wall time summed over all calls (children included).
  double total_us = 0.0;
  /// Wall time minus the time spent in same-thread child spans. Spans
  /// started on other threads are roots (the nesting stack is
  /// thread-local), so cross-thread work attributes to its own root, never
  /// double-counted here.
  double self_us = 0.0;
  /// Per-call duration distribution (nearest-rank percentiles; with one
  /// call all four collapse to that call's duration).
  double min_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double max_us = 0.0;
  /// Child attribution: wall time of direct children by child span name,
  /// sorted by attributed time descending (ties: name ascending).
  std::vector<std::pair<std::string, double>> children;
};

/// A whole trace folded per span name. Ordering is deterministic: spans
/// sorted by self time descending, ties broken by name ascending, so equal
/// inputs always render byte-identical tables.
struct Profile {
  std::vector<SpanProfile> spans;
  /// Sum of root-span durations (the traced wall clock).
  double wall_us = 0.0;
  /// Total span events folded (instants are not part of the profile).
  long long num_spans = 0;
};

/// Folds completed span events into a Profile. Events from a still-open
/// parent fold as roots (their parent id has no recorded event).
Profile build_profile(const std::vector<TraceEvent>& events);
Profile build_profile(const TraceSink& sink);

/// Collapsed-stack export: one line per unique same-thread stack,
/// "root;child;leaf <self-microseconds>", lines sorted lexicographically.
/// Feed to flamegraph.pl or drop into speedscope. Values are integer
/// microseconds of *self* time, so the flame graph's widths add up.
std::string folded_stacks(const std::vector<TraceEvent>& events);
std::string folded_stacks(const TraceSink& sink);

}  // namespace soctest::obs
