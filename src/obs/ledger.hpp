#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace soctest::obs {

// Cross-run solve ledger: one append-only JSONL record per solve
// ("soctest-ledger-v1"), written to the file named by --ledger or the
// SOCTEST_LEDGER environment variable. The ledger is what turns single-run
// observability into a trajectory: `soctest-perf report` folds it into
// per-soc×solver percentiles, and `soctest-perf diff` compares ledgers
// across PRs. Schema is documented in docs/observability.md.

/// The pinned counter set every ledger record carries (name-sorted). Keep
/// each name on its own line: scripts/check_docs.sh greps this array and
/// cross-checks it against docs/observability.md and against the names the
/// instrumentation actually emits. Only deterministic, serial-solve-stable
/// counters belong here — the ledger is diffed across runs.
inline constexpr const char* kLedgerCounters[] = {
    "ilp.bb.nodes",
    "ilp.simplex.pivots",
    "sched.power.idle_cycles",
    "tam.exact.nodes",
    "tam.exact.pruned_bound",
    "tam.portfolio.races",
    "tam.sa.moves",
};

/// One solve, as the ledger records it. Counter values are filled from the
/// live metrics registry by fill_ledger_counters(); everything else comes
/// from the caller (the CLI driver, a bench harness, a service loop).
struct LedgerRecord {
  std::string soc;
  std::vector<int> widths;
  std::string solver;
  /// Generator/heuristic seed when the workload is synthetic; 0 for solves
  /// of concrete .soc inputs (which are seedless).
  std::uint64_t seed = 0;
  /// Requested worker threads (--threads as given, 0 = auto) and the count
  /// the run actually resolved to.
  int threads_configured = 1;
  int threads_effective = 1;
  bool feasible = false;
  /// solve_status_name() of the certificate, e.g. "optimal".
  std::string status;
  /// Certificate gap; -1 when unknown (see SolveCertificate::gap).
  double gap = -1.0;
  /// Makespan in cycles; -1 when the solve produced no architecture.
  long long t_cycles = -1;
  /// Execution strategy of the winning solve: "serial" / "parallel" for the
  /// exact search (see SearchMode), "-" for heuristic solvers.
  std::string solve_mode = "-";
  double wall_ms = 0.0;
  /// Distributed-trace id of the request that caused this solve (empty =
  /// untraced; field omitted). Joins ledger rows to soctest-trace-v1
  /// shards, so `soctest-perf trace-merge` timelines and `soctest-perf
  /// report` percentiles can be cross-referenced per request.
  std::string trace_id;
  int exit_code = 0;
  /// Pinned counters, in kLedgerCounters order.
  std::vector<std::pair<std::string, long long>> counters;
};

/// Snapshots the kLedgerCounters set from the metrics registry into
/// `record`. Call inside the run's TraceSession, after the solve.
void fill_ledger_counters(LedgerRecord& record);

/// The record as one soctest-ledger-v1 JSON line (no trailing newline).
std::string ledger_record_json(const LedgerRecord& record);

/// Appends `record` as one line to the JSONL file at `path`. Crash-safe by
/// construction: the line is serialized first and handed to the OS as a
/// single O_APPEND write, so a crash can only ever truncate the *last*
/// line — readers skip a torn tail and every earlier record stays intact.
/// Returns false (with the OS error in `error` when non-null) on I/O
/// failure.
bool append_ledger_record(const std::string& path, const LedgerRecord& record,
                          std::string* error = nullptr);

/// The ledger path from SOCTEST_LEDGER, or empty when unset.
std::string ledger_path_from_env();

/// A request refused by admission control before any solve ran. Ordinary
/// ledger records only exist for completed solves, so backpressured
/// requests were invisible offline — loadgen's rejected count could not be
/// reconciled against any ledger. Serialized as a soctest-ledger-v1 line
/// with `"kind":"rejected"` and a minimal field set; readers that fold
/// solve records (soctest-perf report/diff) skip rejected lines by kind.
struct RejectionRecord {
  std::string id;           ///< request id (may be empty)
  int shard = -1;           ///< worker shard it would have gone to; -1 n/a
  double retry_after_ms = 0.0;
  std::string trace_id;     ///< empty = untraced; field omitted
};

/// The record as one soctest-ledger-v1 JSON line (no trailing newline).
std::string rejection_record_json(const RejectionRecord& record);

/// Appends `record` to the JSONL file at `path`; same crash-safe
/// single-write contract as append_ledger_record.
bool append_rejection_record(const std::string& path,
                             const RejectionRecord& record,
                             std::string* error = nullptr);

}  // namespace soctest::obs
