#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace soctest::obs {

namespace {

/// Nearest-rank percentile of a sorted sample (q in [0, 1]).
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  const std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct NameAccumulator {
  long long count = 0;
  double total_us = 0.0;
  double child_us = 0.0;  ///< same-thread children of this name's spans
  std::vector<double> durations;
  std::map<std::string, double> children;  ///< map: deterministic iteration
};

}  // namespace

Profile build_profile(const std::vector<TraceEvent>& events) {
  // Pass 1: index span events by id so children can attribute upward.
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  by_id.reserve(events.size());
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kSpan) by_id.emplace(e.id, &e);
  }

  std::map<std::string, NameAccumulator> names;
  Profile profile;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::kSpan) continue;
    ++profile.num_spans;
    NameAccumulator& acc = names[e.name];
    ++acc.count;
    acc.total_us += e.dur_us;
    acc.durations.push_back(e.dur_us);
    const auto parent = by_id.find(e.parent);
    if (parent != by_id.end()) {
      NameAccumulator& up = names[parent->second->name];
      up.child_us += e.dur_us;
      up.children[e.name] += e.dur_us;
    } else {
      profile.wall_us += e.dur_us;
    }
  }

  profile.spans.reserve(names.size());
  for (auto& [name, acc] : names) {
    SpanProfile span;
    span.name = name;
    span.count = acc.count;
    span.total_us = acc.total_us;
    span.self_us = acc.total_us - acc.child_us;
    std::sort(acc.durations.begin(), acc.durations.end());
    span.min_us = acc.durations.front();
    span.max_us = acc.durations.back();
    span.p50_us = percentile(acc.durations, 0.50);
    span.p95_us = percentile(acc.durations, 0.95);
    span.children.assign(acc.children.begin(), acc.children.end());
    std::sort(span.children.begin(), span.children.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    profile.spans.push_back(std::move(span));
  }
  std::sort(profile.spans.begin(), profile.spans.end(),
            [](const SpanProfile& a, const SpanProfile& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });
  return profile;
}

Profile build_profile(const TraceSink& sink) {
  return build_profile(sink.events());
}

std::string folded_stacks(const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint64_t, const TraceEvent*> by_id;
  std::unordered_map<std::uint64_t, double> child_us;
  by_id.reserve(events.size());
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::kSpan) continue;
    by_id.emplace(e.id, &e);
  }
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::kSpan) continue;
    if (by_id.count(e.parent) != 0) child_us[e.parent] += e.dur_us;
  }

  // Aggregate self time per name path; std::map keys the output order.
  std::map<std::string, long long> stacks;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::kSpan) continue;
    std::vector<const TraceEvent*> chain{&e};
    for (auto it = by_id.find(e.parent); it != by_id.end();
         it = by_id.find(it->second->parent)) {
      chain.push_back(it->second);
      if (chain.size() > events.size()) break;  // corrupt parent cycle guard
    }
    std::string path;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!path.empty()) path += ';';
      path += (*it)->name;
    }
    const auto child = child_us.find(e.id);
    const double self =
        e.dur_us - (child != child_us.end() ? child->second : 0.0);
    stacks[path] += std::llround(std::max(0.0, self));
  }

  std::string out;
  for (const auto& [path, value] : stacks) {
    out += path;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

std::string folded_stacks(const TraceSink& sink) {
  return folded_stacks(sink.events());
}

}  // namespace soctest::obs
