#include "cli/options.hpp"

#include <sstream>
#include <stdexcept>

namespace soctest {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument(msg + "\n" + cli_usage());
}

int to_int(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const int v = std::stoi(value, &pos);
    if (pos != value.size()) fail(flag + ": trailing characters in '" + value + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(flag + ": expected an integer, got '" + value + "'");
  } catch (const std::out_of_range&) {
    fail(flag + ": value out of range");
  }
}

double to_double(const std::string& value, const std::string& flag) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) fail(flag + ": trailing characters in '" + value + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(flag + ": expected a number, got '" + value + "'");
  } catch (const std::out_of_range&) {
    fail(flag + ": value out of range");
  }
}

std::vector<int> to_int_list(const std::string& value, const std::string& flag) {
  std::vector<int> out;
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, ',')) {
    if (item.empty()) fail(flag + ": empty element in list");
    out.push_back(to_int(item, flag));
  }
  if (out.empty()) fail(flag + ": empty list");
  return out;
}

}  // namespace

CliOptions parse_cli(const std::vector<std::string>& args) {
  CliOptions options;
  std::size_t i = 0;
  auto value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= args.size()) fail(flag + " requires a value");
    return args[++i];
  };
  for (; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
    } else if (arg == "--soc") {
      options.soc = value(arg);
    } else if (arg == "--widths") {
      options.widths = to_int_list(value(arg), arg);
      for (int w : options.widths) {
        if (w < 1) fail("--widths: widths must be positive");
      }
    } else if (arg == "--buses") {
      options.buses = to_int(value(arg), arg);
      if (options.buses < 1) fail("--buses must be positive");
    } else if (arg == "--width") {
      options.total_width = to_int(value(arg), arg);
      if (options.total_width < 1) fail("--width must be positive");
    } else if (arg == "--dmax") {
      options.d_max = to_int(value(arg), arg);
    } else if (arg == "--wire-budget") {
      options.wire_budget = to_int(value(arg), arg);
    } else if (arg == "--pmax") {
      options.p_max = to_double(value(arg), arg);
    } else if (arg == "--ate-depth") {
      options.ate_depth = to_int(value(arg), arg);
      if (options.ate_depth < 1) fail("--ate-depth must be positive");
    } else if (arg == "--solver") {
      const std::string name = value(arg);
      if (name == "exact") {
        options.solver = InnerSolver::kExact;
      } else if (name == "ilp") {
        options.solver = InnerSolver::kIlp;
      } else if (name == "greedy") {
        options.solver = InnerSolver::kGreedy;
      } else if (name == "sa") {
        options.solver = InnerSolver::kSa;
      } else if (name == "portfolio") {
        options.solver = InnerSolver::kPortfolio;
      } else if (name == "pack") {
        options.solver = InnerSolver::kPack;
      } else if (name == "pack-exact") {
        options.solver = InnerSolver::kPackExact;
      } else {
        fail("--solver: unknown solver '" + name + "'");
      }
    } else if (arg == "--threads") {
      options.threads = to_int(value(arg), arg);
      if (options.threads < 0) fail("--threads must be >= 0 (0 = auto)");
    } else if (arg == "--power-mode") {
      const std::string name = value(arg);
      if (name == "pairwise") {
        options.power_mode = PowerConstraintMode::kPairwiseSerialization;
      } else if (name == "busmax") {
        options.power_mode = PowerConstraintMode::kBusMaxSum;
      } else {
        fail("--power-mode: expected pairwise or busmax, got '" + name + "'");
      }
    } else if (arg == "--gantt") {
      options.gantt = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--svg") {
      options.svg_path = value(arg);
    } else if (arg == "--idle-insertion") {
      options.idle_insertion = true;
    } else if (arg == "--trace") {
      options.trace_path = value(arg);
    } else if (arg == "--trace-chrome") {
      options.trace_chrome_path = value(arg);
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--profile-top") {
      options.profile_top = to_int(value(arg), arg);
    } else if (arg == "--profile-json") {
      options.profile_json_path = value(arg);
    } else if (arg == "--profile-folded") {
      options.profile_folded_path = value(arg);
    } else if (arg == "--ledger") {
      options.ledger_path = value(arg);
      if (options.ledger_path.empty()) fail("--ledger: empty path");
    } else if (arg == "--time-limit-ms") {
      options.time_limit_ms = to_double(value(arg), arg);
      if (options.time_limit_ms < 0) fail("--time-limit-ms must be >= 0");
    } else if (arg == "--failpoints") {
      options.failpoints = value(arg);
      if (options.failpoints.empty()) fail("--failpoints: empty spec");
    } else if (arg == "--client") {
      options.client_socket = value(arg);
      if (options.client_socket.empty()) fail("--client: empty endpoint");
    } else if (arg == "--batch") {
      options.batch_path = value(arg);
      if (options.batch_path.empty()) fail("--batch: empty path");
    } else if (arg == "--stream") {
      options.stream = true;
    } else if (arg == "--retries") {
      options.retries = to_int(value(arg), arg);
      if (options.retries < 0) fail("--retries must be >= 0");
    } else if (arg == "--retry-backoff-ms") {
      options.retry_backoff_ms = to_double(value(arg), arg);
      if (options.retry_backoff_ms < 0) {
        fail("--retry-backoff-ms must be >= 0");
      }
    } else if (arg == "--response-timeout-ms") {
      options.response_timeout_ms = to_double(value(arg), arg);
      if (options.response_timeout_ms <= 0) {
        fail("--response-timeout-ms must be positive");
      }
    } else if (arg == "--trace-sample") {
      options.trace_sample = to_int(value(arg), arg);
      if (options.trace_sample < 0) fail("--trace-sample must be >= 0");
    } else {
      fail("unknown argument '" + arg + "'");
    }
  }
  if (options.widths.empty() && options.total_width < options.buses) {
    fail("--width must be at least --buses (one wire per bus)");
  }
  if (options.idle_insertion && (options.solver == InnerSolver::kPack ||
                                 options.solver == InnerSolver::kPackExact)) {
    fail("--idle-insertion is not supported with --solver pack/pack-exact "
         "(the packing formulation schedules power directly)");
  }
  if (!options.batch_path.empty() && options.client_socket.empty()) {
    fail("--batch requires --client");
  }
  if (options.stream && options.client_socket.empty()) {
    fail("--stream requires --client");
  }
  if (options.client_socket.empty() &&
      (options.retries != 0 || options.retry_backoff_ms != 10.0 ||
       options.response_timeout_ms > 0)) {
    fail("--retries/--retry-backoff-ms/--response-timeout-ms require "
         "--client");
  }
  if (options.trace_sample != 0 && options.client_socket.empty()) {
    fail("--trace-sample requires --client");
  }
  return options;
}

std::string cli_usage() {
  return R"(usage: soctest [options]

SOC selection:
  --soc <name|path>     built-in soc1/soc2/soc3 or a .soc file (default soc1)

Architecture:
  --widths w1,w2,...    explicit bus widths (skips the width search)
  --buses B             number of test buses for the width search (default 2)
  --width W             total TAM width to distribute (default 32)

Constraints:
  --dmax D              max core-to-trunk detour distance (needs placement)
  --wire-budget L       total stub wiring budget (needs placement)
  --pmax P              test power ceiling in mW
  --power-mode M        pairwise (DAC 2000 serialization, exact for B=2) or
                        busmax (bus-max-sum, sound for any B); default pairwise
  --ate-depth D         ATE vector-memory depth per TAM channel (cycles)

Solving:
  --solver S            exact | ilp | greedy | sa | portfolio | pack |
                        pack-exact (default exact); portfolio races
                        greedy/SA/exact concurrently (and, on width
                        searches, the packing formulation) and returns the
                        best result; pack / pack-exact solve the rectangle-
                        packing formulation instead of fixed buses
  --threads N           worker threads for the exact solver's parallel search
                        and the portfolio race; 1 = serial (default), 0 = auto
                        (hardware concurrency, SOCTEST_THREADS override)
  --idle-insertion      meet --pmax by delaying test starts instead of
                        co-assigning conflicting cores
  --gantt               draw the schedule
  --json                emit a machine-readable JSON design report
  --svg FILE            write an SVG floorplan (cores, trunks, stubs);
                        requires a placed SOC

Observability:
  --trace FILE          record solver spans/counters and write a
                        soctest-trace-v1 JSON trace to FILE
  --trace-chrome FILE   also write the trace in Chrome trace_event format
                        (load via chrome://tracing or ui.perfetto.dev)
  --metrics             append run counters/histograms to the output (a table,
                        or a JSON object with --json)
  --profile             append the span-profile table (per-span call count,
                        total/self time, p50/p95) folded from the run's trace
  --profile-top N       row limit of the --profile table (default 20; 0 = all)
  --profile-json FILE   write the full profile as soctest-profile-v1 JSON
  --profile-folded FILE write collapsed stacks ("a;b;c self_us" lines) for
                        flamegraph.pl or speedscope
  --ledger FILE         append one soctest-ledger-v1 JSONL record per solve
                        (soc, widths, solver, threads, certificate, wall ms,
                        pinned counters); SOCTEST_LEDGER sets a default path

Robustness:
  --time-limit-ms T     wall-clock solve budget; the run becomes anytime and
                        reports the best incumbent found in time with a
                        quality certificate (status=... line / JSON fields)
  --failpoints SPEC     arm fault-injection sites, e.g.
                        "tam.exact.node=error:100"; comma-separated
                        site=action[:hit] entries (docs/robustness.md)

Service client (docs/service.md):
  --client ENDPOINT     send the request to a running soctest-serve or
                        soctest-frontdoor (Unix socket path or HOST:PORT)
                        and print the soctest-resp-v1 responses
  --batch FILE          with --client: send FILE's soctest-req-v1 lines
                        verbatim instead of one request built from the flags
                        above ("-" reads stdin)
  --stream              with --client: stream soctest-partial-v1 incumbent
                        lines before the final response
  --retries N           with --client: resend budget per request — reconnect
                        on drops, replay unanswered requests, honor
                        retry_after_ms on rejections (default 0 = fail fast;
                        docs/robustness.md)
  --retry-backoff-ms T  with --client: reconnect backoff base (default 10)
  --response-timeout-ms T
                        with --client: drop + reconnect when responses are
                        outstanding and the server is silent for T ms
  --trace-sample N      with --client: stamp a trace context on every Nth
                        request (1 = all) so the fleet records a
                        client/frontdoor/worker waterfall; combine with
                        --trace FILE to write this process's shard for
                        `soctest-perf trace-merge` (docs/observability.md)
  --help                this text
)";
}

}  // namespace soctest
