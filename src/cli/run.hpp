#pragma once

#include <string>

#include "cli/options.hpp"

namespace soctest {

/// Executes a parsed command line and returns (exit_code, full stdout text).
/// Separated from main() so the driver is unit-testable.
struct CliResult {
  int exit_code = 0;
  std::string output;
};

CliResult run_cli(const CliOptions& options);

}  // namespace soctest
