#include "cli/run.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>

#include <fstream>

#include "common/parallel.hpp"
#include "layout/stub_router.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "report/design_report.hpp"
#include "report/run_report.hpp"
#include "report/svg.hpp"
#include "runtime/failpoint.hpp"
#include "runtime/status.hpp"
#include "sched/gantt.hpp"
#include "sched/power_profile.hpp"
#include "sched/power_sched.hpp"
#include "sched/schedule.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "service/transport.hpp"
#include "soc/builtin.hpp"
#include "soc/soc_format.hpp"
#include "tam/architect.hpp"
#include "tam/timing.hpp"

namespace soctest {

namespace {

StatusOr<Soc> load_soc(const std::string& name) {
  if (name == "soc1") return builtin_soc1();
  if (name == "soc2") return builtin_soc2();
  if (name == "soc3") return builtin_soc3();
  if (name == "soc4") return builtin_soc4();
  return parse_soc_file(name);
}

/// Exit code for a run that ended without a usable result: why it stopped
/// decides between plain infeasibility and the interruption codes.
int exit_code_for_stop(StopReason stop) {
  switch (stop) {
    case StopReason::kDeadline:
    case StopReason::kCancelled:
      return kExitDeadline;
    case StopReason::kFault:
      return kExitInternal;
    default:
      return kExitInfeasible;
  }
}

/// Disarms CLI-requested failpoints when the run ends, whichever path it
/// takes out of run_cli.
struct FailpointGuard {
  bool armed = false;
  ~FailpointGuard() {
    if (armed) failpoint::disarm_all();
  }
};

/// What the run ledger needs to know about the solve, filled by run_design
/// as a side channel (the CliResult itself is exit code + text only).
struct SolveSummary {
  std::vector<int> widths;
  bool feasible = false;
  std::string status = "error";  ///< overwritten once a certificate exists
  double gap = -1.0;
  long long t_cycles = -1;
  /// search_mode_name() of the winning solve ("serial", "parallel", "-").
  std::string solve_mode = "-";
};

/// The actual design flow; run_cli wraps it with the observability session.
CliResult run_design(const CliOptions& options,
                     SolveSummary* summary = nullptr) {
  CliResult result;
  std::ostringstream out;
  try {
    StatusOr<Soc> loaded = load_soc(options.soc);
    if (!loaded.ok()) {
      out << "error: " << loaded.status().to_string() << "\n";
      result.exit_code = exit_code_for(loaded.status());
      result.output = out.str();
      return result;
    }
    const Soc soc = loaded.take();

    DesignRequest request;
    request.bus_widths = options.widths;
    request.num_buses = options.buses;
    request.total_width = options.total_width;
    request.d_max = options.d_max;
    request.wire_budget = options.wire_budget;
    request.solver = options.solver;
    request.threads = options.threads;
    // With idle insertion, power is handled at the schedule level, so the
    // assignment itself is solved unconstrained in power — and a packed
    // formulation winner would bypass the scheduler, so the race is off.
    if (!options.idle_insertion) request.p_max_mw = options.p_max;
    request.pack_race = !(options.idle_insertion && options.p_max >= 0);
    request.power_mode = options.power_mode;
    request.ate_depth_limit = options.ate_depth;
    if (options.time_limit_ms >= 0) {
      request.deadline = Deadline::after_ms(options.time_limit_ms);
    }

    const DesignResult design = design_architecture(soc, request);
    if (summary != nullptr) {
      summary->widths = design.bus_widths;
      summary->feasible = design.feasible;
      summary->status = solve_status_name(design.certificate.status);
      summary->gap = design.certificate.gap();
      summary->t_cycles =
          design.feasible ? static_cast<long long>(design.assignment.makespan)
                          : -1;
      summary->solve_mode = search_mode_name(design.search_mode);
    }
    if (!options.json) out << describe_design(soc, request, design);
    if (!design.feasible) {
      if (options.json) out << design_report_json(soc, request, design) << "\n";
      result.exit_code = design.certificate.status == SolveStatus::kError
                             ? kExitInternal
                             : exit_code_for_stop(design.stop);
      result.output = out.str();
      return result;
    }

    // Realize the schedule.
    TestSchedule schedule;
    if (!design.pack_placements.empty()) {
      // Packed formulation: the placements already are the schedule. The
      // `bus` field only drives gantt lanes, so time-overlapping tests get
      // distinct lanes by greedy interval coloring (placements arrive
      // sorted by start).
      std::vector<Cycles> lane_free;
      for (const PackPlacement& p : design.pack_placements) {
        int lane = -1;
        for (std::size_t l = 0; l < lane_free.size(); ++l) {
          if (lane_free[l] <= p.start) {
            lane = static_cast<int>(l);
            break;
          }
        }
        if (lane < 0) {
          lane = static_cast<int>(lane_free.size());
          lane_free.push_back(0);
        }
        lane_free[static_cast<std::size_t>(lane)] = p.end;
        schedule.tests.push_back({p.core, lane, p.start, p.end});
        schedule.makespan = std::max(schedule.makespan, p.end);
      }
    } else {
      const int max_width = *std::max_element(design.bus_widths.begin(),
                                              design.bus_widths.end());
      const TestTimeTable& table = cached_test_time_table(soc, max_width);
      const TamProblem problem = make_tam_problem(
          soc, table, design.bus_widths, nullptr, -1,
          options.idle_insertion ? -1.0 : options.p_max, options.power_mode);
      if (options.idle_insertion && options.p_max >= 0) {
        PowerScheduleOptions sched_options;
        sched_options.p_max_mw = options.p_max;
        // The scheduler shares the run's wall-clock budget (Deadline is an
        // absolute point in time, so solve time already spent counts).
        sched_options.deadline = request.deadline;
        const PowerScheduleResult ps = build_power_aware_schedule(
            problem, soc, design.assignment.core_to_bus, sched_options);
        if (!ps.feasible) {
          out << "idle-insertion scheduling failed: " << ps.error << "\n";
          result.exit_code = exit_code_for_stop(ps.stop);
          result.output = out.str();
          return result;
        }
        schedule = ps.schedule;
        if (!options.json) {
          out << "idle-insertion schedule: makespan " << schedule.makespan
              << " cycles (" << ps.idle_inserted
              << " idle bus-cycles inserted)\n";
        }
      } else {
        schedule = build_schedule(problem, design.assignment.core_to_bus);
      }
    }
    if (options.p_max >= 0 && !options.json) {
      const double peak = compute_power_profile(soc, schedule).peak();
      out << "schedule peak power: " << peak << " mW (budget " << options.p_max
          << " mW) -> "
          << (check_power(soc, schedule, options.p_max).empty() ? "OK"
                                                                : "VIOLATION")
          << "\n";
    }
    if (options.json) {
      out << design_report_json(soc, request, design, &schedule) << "\n";
    }
    if (options.gantt) out << "\n" << render_gantt(soc, schedule);
    if (!options.svg_path.empty()) {
      if (!soc.has_placement()) {
        out << "error: --svg requires a placed SOC\n";
        result.exit_code = 2;
        result.output = out.str();
        return result;
      }
      std::optional<BusPlan> plan;
      std::optional<StubRoutes> stubs;
      if (design.bus_plan) {
        plan = design.bus_plan;
        stubs = route_stubs(soc, *plan, design.assignment.core_to_bus);
      }
      if (failpoint::armed() &&
          failpoint::hit(failpoint::sites::kReportWrite)) {
        const Status st =
            fault_injected_error("injected fault writing " + options.svg_path);
        out << "error: " << st.to_string() << "\n";
        result.exit_code = exit_code_for(st);
        result.output = out.str();
        return result;
      }
      std::ofstream svg_file(options.svg_path);
      if (!svg_file) {
        const Status st = io_error("cannot write " + options.svg_path);
        out << "error: " << st.to_string() << "\n";
        result.exit_code = exit_code_for(st);
        result.output = out.str();
        return result;
      }
      svg_file << render_floorplan_svg(soc, plan ? &*plan : nullptr,
                                       stubs ? &*stubs : nullptr);
      if (!options.json) out << "wrote " << options.svg_path << "\n";
    }
  } catch (const std::invalid_argument& e) {
    out << "error: " << e.what() << "\n";
    result.exit_code = kExitUsage;
  } catch (const std::bad_alloc&) {
    out << "error: out of memory\n";
    result.exit_code = kExitInternal;
  } catch (const std::runtime_error& e) {
    // The architect throws std::runtime_error for structurally infeasible
    // constraint sets (unconnectable core, over-budget core power).
    out << "error: " << e.what() << "\n";
    result.exit_code = kExitInfeasible;
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    result.exit_code = kExitInternal;
  }
  result.output = out.str();
  return result;
}

/// Deterministic trace id for the index-th sampled request of a client
/// batch: content-derived (same batch position → same id across reruns),
/// never wall-clock or random, so chaos-gate trace merges byte-compare.
std::string client_trace_id(std::size_t index) {
  return trace_span_guid("soctest-client-batch", std::to_string(index));
}

/// Stamps the trace context for trace_id onto a batch line: the line is
/// parsed and re-serialized canonically with a `trace` object whose
/// parent_span names the retry layer's client.request root span. A line
/// that does not parse (or already carries a trace) passes through
/// verbatim — the server owns rejecting it.
std::string stamp_request_line(const std::string& line,
                               const std::string& trace_id) {
  StatusOr<ServiceRequest> parsed = parse_request(line);
  if (!parsed.ok() || !parsed.value().trace_id.empty()) return line;
  ServiceRequest request = parsed.take();
  request.trace_id = trace_id;
  request.trace_parent = trace_span_guid(trace_id, "client.request");
  return request_json(request);
}

/// Client mode: ship the work to a running soctest-serve or
/// soctest-frontdoor (Unix socket or HOST:PORT) and relay the response
/// lines (docs/service.md). Streamed soctest-partial-v1 records may
/// interleave with finals, and a concurrent server answers out of order,
/// so completeness is judged by matching final ids against request ids —
/// never by comparing line counts.
CliResult run_client(const CliOptions& options) {
  CliResult result;
  std::vector<std::string> lines;
  if (!options.batch_path.empty()) {
    std::ifstream file;
    std::istream* in = &std::cin;
    if (options.batch_path != "-") {
      file.open(options.batch_path);
      if (!file) {
        const Status st = io_error("cannot read " + options.batch_path);
        result.output = "error: " + st.to_string() + "\n";
        result.exit_code = exit_code_for(st);
        return result;
      }
      in = &file;
    }
    std::string line;
    while (std::getline(*in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
    if (options.trace_sample > 0) {
      for (std::size_t i = 0; i < lines.size(); ++i) {
        if (i % static_cast<std::size_t>(options.trace_sample) != 0) continue;
        lines[i] = stamp_request_line(lines[i], client_trace_id(i));
      }
    }
  } else {
    ServiceRequest request;
    request.id = "cli";
    request.soc = options.soc;
    request.widths = options.widths;
    request.buses = options.buses;
    request.total_width = options.total_width;
    request.d_max = options.d_max;
    request.wire_budget = options.wire_budget;
    request.p_max = options.p_max;
    request.power_mode = options.power_mode;
    request.ate_depth = options.ate_depth;
    request.solver = options.solver;
    request.threads = options.threads;
    request.time_limit_ms = options.time_limit_ms;
    request.stream = options.stream;
    if (options.trace_sample > 0) {
      request.trace_id = client_trace_id(0);
      request.trace_parent =
          trace_span_guid(request.trace_id, "client.request");
    }
    lines.push_back(request_json(request));
  }

  RetryPolicy policy;
  policy.max_attempts = options.retries + 1;
  policy.base_backoff_ms = options.retry_backoff_ms;
  policy.response_timeout_ms = options.response_timeout_ms;
  RetryingClient client(options.client_socket, policy);
  StatusOr<std::vector<std::string>> responses = client.run_batch(lines);
  if (!responses.ok()) {
    result.output = "error: " + responses.status().to_string() + "\n";
    result.exit_code = exit_code_for(responses.status());
    return result;
  }
  std::ostringstream out;
  for (const std::string& line : responses.value()) out << line << "\n";
  const ClientBatchSummary summary =
      summarize_client_batch(lines, responses.value());
  const RetryStats& rs = client.stats();
  if (!options.batch_path.empty()) {
    // Batch summary: answered counts plus what the retry layer did to get
    // them. Fault-free this line is deterministic (attempts = requests,
    // everything else 0), so byte-compare gates stay byte-identical.
    out << "client: " << summary.finals << "/" << summary.requests
        << " answered, " << summary.partials << " partials, attempts="
        << rs.attempts << " retries=" << rs.retries << " reconnects="
        << rs.reconnects << " backoff_ms="
        << static_cast<long long>(rs.backoff_ms + 0.5) << " gave_up="
        << rs.gave_up << "\n";
  }
  if (!summary.missing_ids.empty()) {
    const Status st = io_error(
        "server answered " + std::to_string(summary.finals) + " of " +
        std::to_string(summary.requests) + " requests");
    out << "error: " << st.to_string() << "\n";
    result.exit_code = exit_code_for(st);
  } else if (rs.gave_up > 0) {
    // Every request has *a* final, but gave_up of them are synthesized
    // retry-budget errors; the exit code must not claim success.
    const Status st = io_error("client gave up on " +
                               std::to_string(rs.gave_up) + " request(s)");
    out << "error: " << st.to_string() << "\n";
    result.exit_code = exit_code_for(st);
  }
  result.output = out.str();
  return result;
}

}  // namespace

CliResult run_cli(const CliOptions& options) {
  if (options.help) {
    CliResult result;
    result.output = cli_usage();
    return result;
  }
  const bool client_mode = !options.client_socket.empty();

  FailpointGuard failpoint_guard;
  if (!client_mode && !options.failpoints.empty()) {
    const Status st = failpoint::arm(options.failpoints);
    if (!st.ok()) {
      CliResult result;
      result.output = "error: " + st.to_string() + "\n" + cli_usage();
      result.exit_code = kExitUsage;
      return result;
    }
    failpoint_guard.armed = true;
  }

  // Profiles fold the trace, so any --profile* flag implies a live sink;
  // the ledger only needs counters, so on its own it runs a null-sink
  // session (same as --metrics without --trace). Client mode never writes
  // the solve ledger — the solve (and its record) happens server-side.
  const std::string ledger_path =
      client_mode ? std::string()
                  : (options.ledger_path.empty() ? obs::ledger_path_from_env()
                                                 : options.ledger_path);
  const bool profiling = options.profile ||
                         !options.profile_json_path.empty() ||
                         !options.profile_folded_path.empty();
  const bool tracing = profiling || !options.trace_path.empty() ||
                       !options.trace_chrome_path.empty();
  if (!tracing && !options.metrics && ledger_path.empty()) {
    // The untraced fast path: no sink, no session, no span bookkeeping.
    return client_mode ? run_client(options) : run_design(options);
  }

  // One sink/session per CLI run; a null sink collects counters only.
  obs::TraceSink sink;
  obs::TraceSession session(tracing ? &sink : nullptr);
  CliResult result;
  SolveSummary summary;
  const auto wall_start = std::chrono::steady_clock::now();
  if (client_mode) {
    // No cli.run root span: the client's spans (client.request /
    // client.attempt, recorded by the retry layer) must stay roots so the
    // cross-process guid links are the only parentage trace-merge sees.
    result = run_client(options);
  } else {
    obs::Span root("cli.run", {{"soc", options.soc}});
    result = run_design(options, &summary);
    if (root.active()) root.arg({"exit_code", result.exit_code});
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  auto write_file = [&](const std::string& path, const std::string& body) {
    Status st = Status::Ok();
    if (failpoint::armed() && failpoint::hit(failpoint::sites::kReportWrite)) {
      st = fault_injected_error("injected fault writing " + path);
    }
    if (st.ok()) {
      std::ofstream file(path);
      if (file) {
        file << body << "\n";
        return;
      }
      st = io_error("cannot write " + path);
    }
    result.output += "error: " + st.to_string() + "\n";
    result.exit_code = exit_code_for(st);
  };
  if (!options.trace_path.empty()) {
    write_file(options.trace_path,
               trace_json(sink, client_mode ? "client" : "cli"));
  }
  if (!options.trace_chrome_path.empty()) {
    write_file(options.trace_chrome_path, chrome_trace_json(sink));
  }
  if (profiling) {
    const obs::Profile profile = obs::build_profile(sink);
    if (options.profile) {
      result.output += profile_text(profile, options.profile_top);
    }
    if (!options.profile_json_path.empty()) {
      write_file(options.profile_json_path, profile_json(profile));
    }
    if (!options.profile_folded_path.empty()) {
      // folded_stacks already ends each line with '\n'; avoid a blank tail.
      std::string folded = obs::folded_stacks(sink);
      if (!folded.empty() && folded.back() == '\n') folded.pop_back();
      write_file(options.profile_folded_path, folded);
    }
  }
  if (options.metrics) {
    result.output += options.json ? metrics_json() + "\n" : metrics_text();
  }
  if (!ledger_path.empty()) {
    obs::LedgerRecord record;
    record.soc = options.soc;
    record.widths = summary.widths;
    record.solver = inner_solver_name(options.solver);
    record.threads_configured = options.threads;
    record.threads_effective = resolve_thread_count(options.threads);
    record.feasible = summary.feasible;
    record.status = summary.status;
    record.gap = summary.gap;
    record.t_cycles = summary.t_cycles;
    record.solve_mode = summary.solve_mode;
    record.wall_ms = wall_ms;
    record.exit_code = result.exit_code;
    obs::fill_ledger_counters(record);
    Status st = Status::Ok();
    if (failpoint::armed() && failpoint::hit(failpoint::sites::kReportWrite)) {
      st = fault_injected_error("injected fault writing " + ledger_path);
    }
    std::string io_message;
    if (st.ok() && !obs::append_ledger_record(ledger_path, record, &io_message)) {
      st = io_error("cannot append ledger record: " + io_message);
    }
    if (!st.ok()) {
      result.output += "error: " + st.to_string() + "\n";
      result.exit_code = exit_code_for(st);
    }
  }
  return result;
}

}  // namespace soctest
