#include "cli/run.hpp"

#include <algorithm>
#include <sstream>

#include <fstream>

#include "layout/stub_router.hpp"
#include "obs/obs.hpp"
#include "report/design_report.hpp"
#include "report/run_report.hpp"
#include "report/svg.hpp"
#include "sched/gantt.hpp"
#include "sched/power_profile.hpp"
#include "sched/power_sched.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "soc/soc_format.hpp"
#include "tam/architect.hpp"

namespace soctest {

namespace {

Soc load_soc(const std::string& name) {
  if (name == "soc1") return builtin_soc1();
  if (name == "soc2") return builtin_soc2();
  if (name == "soc3") return builtin_soc3();
  if (name == "soc4") return builtin_soc4();
  return read_soc_file(name);
}

/// The actual design flow; run_cli wraps it with the observability session.
CliResult run_design(const CliOptions& options) {
  CliResult result;
  std::ostringstream out;
  try {
    const Soc soc = load_soc(options.soc);

    DesignRequest request;
    request.bus_widths = options.widths;
    request.num_buses = options.buses;
    request.total_width = options.total_width;
    request.d_max = options.d_max;
    request.wire_budget = options.wire_budget;
    request.solver = options.solver;
    request.threads = options.threads;
    // With idle insertion, power is handled at the schedule level, so the
    // assignment itself is solved unconstrained in power.
    if (!options.idle_insertion) request.p_max_mw = options.p_max;
    request.power_mode = options.power_mode;
    request.ate_depth_limit = options.ate_depth;

    const DesignResult design = design_architecture(soc, request);
    if (!options.json) out << describe_design(soc, request, design);
    if (!design.feasible) {
      if (options.json) out << design_report_json(soc, request, design) << "\n";
      result.exit_code = 1;
      result.output = out.str();
      return result;
    }

    // Realize the schedule.
    const int max_width = *std::max_element(design.bus_widths.begin(),
                                            design.bus_widths.end());
    const TestTimeTable& table = cached_test_time_table(soc, max_width);
    const TamProblem problem = make_tam_problem(
        soc, table, design.bus_widths, nullptr, -1,
        options.idle_insertion ? -1.0 : options.p_max, options.power_mode);
    TestSchedule schedule;
    if (options.idle_insertion && options.p_max >= 0) {
      PowerScheduleOptions sched_options;
      sched_options.p_max_mw = options.p_max;
      const PowerScheduleResult ps = build_power_aware_schedule(
          problem, soc, design.assignment.core_to_bus, sched_options);
      if (!ps.feasible) {
        out << "idle-insertion scheduling failed: " << ps.error << "\n";
        result.exit_code = 1;
        result.output = out.str();
        return result;
      }
      schedule = ps.schedule;
      if (!options.json) {
        out << "idle-insertion schedule: makespan " << schedule.makespan
            << " cycles (" << ps.idle_inserted << " idle bus-cycles inserted)\n";
      }
    } else {
      schedule = build_schedule(problem, design.assignment.core_to_bus);
    }
    if (options.p_max >= 0 && !options.json) {
      const double peak = compute_power_profile(soc, schedule).peak();
      out << "schedule peak power: " << peak << " mW (budget " << options.p_max
          << " mW) -> "
          << (check_power(soc, schedule, options.p_max).empty() ? "OK"
                                                                : "VIOLATION")
          << "\n";
    }
    if (options.json) {
      out << design_report_json(soc, request, design, &schedule) << "\n";
    }
    if (options.gantt) out << "\n" << render_gantt(soc, schedule);
    if (!options.svg_path.empty()) {
      if (!soc.has_placement()) {
        out << "error: --svg requires a placed SOC\n";
        result.exit_code = 2;
        result.output = out.str();
        return result;
      }
      std::optional<BusPlan> plan;
      std::optional<StubRoutes> stubs;
      if (design.bus_plan) {
        plan = design.bus_plan;
        stubs = route_stubs(soc, *plan, design.assignment.core_to_bus);
      }
      std::ofstream svg_file(options.svg_path);
      if (!svg_file) {
        out << "error: cannot write " << options.svg_path << "\n";
        result.exit_code = 2;
        result.output = out.str();
        return result;
      }
      svg_file << render_floorplan_svg(soc, plan ? &*plan : nullptr,
                                       stubs ? &*stubs : nullptr);
      if (!options.json) out << "wrote " << options.svg_path << "\n";
    }
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    result.exit_code = 2;
  }
  result.output = out.str();
  return result;
}

}  // namespace

CliResult run_cli(const CliOptions& options) {
  if (options.help) {
    CliResult result;
    result.output = cli_usage();
    return result;
  }

  const bool tracing =
      !options.trace_path.empty() || !options.trace_chrome_path.empty();
  if (!tracing && !options.metrics) return run_design(options);

  // One sink/session per CLI run; a null sink collects counters only.
  obs::TraceSink sink;
  obs::TraceSession session(tracing ? &sink : nullptr);
  CliResult result;
  {
    obs::Span root("cli.run", {{"soc", options.soc}});
    result = run_design(options);
    if (root.active()) root.arg({"exit_code", result.exit_code});
  }

  auto write_file = [&](const std::string& path, const std::string& body) {
    std::ofstream file(path);
    if (!file) {
      result.output += "error: cannot write " + path + "\n";
      result.exit_code = 2;
      return;
    }
    file << body << "\n";
  };
  if (!options.trace_path.empty()) {
    write_file(options.trace_path, trace_json(sink));
  }
  if (!options.trace_chrome_path.empty()) {
    write_file(options.trace_chrome_path, chrome_trace_json(sink));
  }
  if (options.metrics) {
    result.output += options.json ? metrics_json() + "\n" : metrics_text();
  }
  return result;
}

}  // namespace soctest
