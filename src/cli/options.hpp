#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tam/width_partition.hpp"

namespace soctest {

/// Parsed command line of the `soctest` tool.
struct CliOptions {
  bool help = false;
  /// Path to a .soc file, or one of the built-in names soc1/soc2/soc3.
  std::string soc = "soc1";
  /// Explicit widths (--widths 16,8,8); overrides buses/width search.
  std::vector<int> widths;
  int buses = 2;
  int total_width = 32;
  int d_max = -1;
  long long wire_budget = -1;
  double p_max = -1.0;
  long long ate_depth = -1;
  InnerSolver solver = InnerSolver::kExact;
  PowerConstraintMode power_mode = PowerConstraintMode::kPairwiseSerialization;
  /// Worker threads for the exact solver / portfolio race (--threads).
  /// 1 = serial; 0 = auto (hardware concurrency, SOCTEST_THREADS override).
  int threads = 1;
  bool gantt = false;
  bool idle_insertion = false;
  /// Emit a machine-readable JSON design report instead of the text report.
  bool json = false;
  /// When non-empty, write an SVG floorplan (die, cores, trunks, stubs) to
  /// this path. Requires a placed SOC.
  std::string svg_path;
  /// When non-empty, record a trace of the run and write it to this path in
  /// the soctest-trace-v1 JSON format (--trace).
  std::string trace_path;
  /// When non-empty, also write the trace in Chrome trace_event format for
  /// chrome://tracing / Perfetto (--trace-chrome).
  std::string trace_chrome_path;
  /// Collect solver counters/histograms and append them to the output
  /// (--metrics). Implied collection also happens whenever tracing is on.
  bool metrics = false;
  /// Append the span-profile table (per-span-name count/total/self/
  /// percentiles, folded from the run's trace) to the output (--profile).
  bool profile = false;
  /// Row limit of the --profile table (--profile-top N; <= 0 shows all).
  int profile_top = 20;
  /// When non-empty, write the full profile as soctest-profile-v1 JSON to
  /// this path (--profile-json).
  std::string profile_json_path;
  /// When non-empty, write the collapsed-stack export (flamegraph.pl /
  /// speedscope format) to this path (--profile-folded).
  std::string profile_folded_path;
  /// When non-empty, append one soctest-ledger-v1 JSONL record describing
  /// this solve to the file (--ledger; SOCTEST_LEDGER is the env fallback).
  std::string ledger_path;
  /// Wall-clock solve budget in milliseconds (--time-limit-ms); < 0 means
  /// unlimited. With a budget the run is anytime: it returns the best
  /// incumbent found in time plus a quality certificate (docs/robustness.md).
  double time_limit_ms = -1.0;
  /// Fault-injection spec (--failpoints "site=action[:hit],..."); empty means
  /// no faults armed. See docs/robustness.md for the site catalog.
  std::string failpoints;
  /// Client mode (--client ENDPOINT): send the request to a running
  /// soctest-serve or soctest-frontdoor — ENDPOINT is a Unix socket path
  /// or HOST:PORT — instead of solving in-process, and print the response
  /// lines (docs/service.md).
  std::string client_socket;
  /// Batch file of soctest-req-v1 lines to send in client mode (--batch
  /// FILE; "-" reads stdin). Without it, client mode sends one request
  /// built from the solve flags above.
  std::string batch_path;
  /// Client mode: set "stream":true on the flag-built request, printing
  /// soctest-partial-v1 incumbent lines before the final response.
  bool stream = false;
  /// Client mode: per-request retry budget beyond the first attempt
  /// (--retries N). 0 keeps the old fail-fast behavior; with retries the
  /// client reconnects on drops, replays unanswered requests, and honors
  /// retry_after_ms on rejections (docs/robustness.md).
  int retries = 0;
  /// Client mode: base of the exponential reconnect backoff
  /// (--retry-backoff-ms; docs/robustness.md has the formula).
  double retry_backoff_ms = 10.0;
  /// Client mode: silence watchdog — drop and re-establish the connection
  /// when responses are outstanding and the server has been quiet this
  /// long (--response-timeout-ms; <= 0 disables).
  double response_timeout_ms = -1.0;
  /// Client mode: stamp a distributed-trace context (trace object with a
  /// deterministic trace_id) on every Nth request (--trace-sample N; 1 =
  /// every request, 0 = off). Combine with --trace to write this process's
  /// soctest-trace-v1 shard for `soctest-perf trace-merge`.
  int trace_sample = 0;
};

/// Parses argv-style arguments (without argv[0]). Throws
/// std::invalid_argument with a user-facing message on malformed input.
CliOptions parse_cli(const std::vector<std::string>& args);

/// The --help text.
std::string cli_usage();

}  // namespace soctest
