#pragma once

#include "tam/width_partition.hpp"

namespace soctest {

/// Multi-site testing (after the ATE-resource optimization line): a tester
/// with `ate_channels` TAM channels can test S identical chips (sites)
/// concurrently, giving each site floor(ate_channels / S) wires. More sites
/// raise parallelism but starve each chip of width, lengthening its test —
/// the throughput curve has an interior optimum.
struct MultisitePoint {
  int sites = 0;
  int width_per_site = 0;
  bool feasible = false;
  Cycles test_time = 0;          ///< optimal per-chip test time at that width
  double throughput_kchips = 0;  ///< chips per mega-cycle: 1e6 * S / T
};

struct MultisiteOptions {
  int num_buses = 2;
  int max_sites = 16;
  InnerSolver solver = InnerSolver::kExact;
};

/// Evaluates every site count 1..max_sites (skipping widths too narrow for
/// one wire per bus) and returns the full curve.
std::vector<MultisitePoint> multisite_sweep(const Soc& soc, int ate_channels,
                                            const MultisiteOptions& options = {});

/// The throughput-optimal point of the sweep; feasible == false when no
/// site count fits.
MultisitePoint best_multisite(const Soc& soc, int ate_channels,
                              const MultisiteOptions& options = {});

}  // namespace soctest
