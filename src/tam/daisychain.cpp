#include "tam/daisychain.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace soctest {

namespace {

constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max();

/// Incremental per-rail state: the rail-aware load is
///   sum_time + (count - 1) * sum_p1
/// where sum_p1 = Σ (p_i + 1) over the rail's cores.
struct RailState {
  Cycles sum_time = 0;
  Cycles sum_p1 = 0;
  int count = 0;
  Cycles load() const {
    return count == 0 ? 0 : sum_time + static_cast<Cycles>(count - 1) * sum_p1;
  }
};

struct Search {
  const DaisychainProblem& problem;
  std::vector<std::size_t> order;  // cores, largest min-time first
  std::vector<RailState> rails;
  std::vector<int> core_rail;
  std::vector<Cycles> suffix_min;
  std::vector<int> rail_class;
  long long nodes = 0;
  long long max_nodes;
  bool aborted = false;
  Cycles best = kInfCycles;
  std::vector<int> best_core_rail;

  Search(const DaisychainProblem& p, long long cap)
      : problem(p),
        rails(p.num_rails()),
        core_rail(p.num_cores(), -1),
        max_nodes(cap) {
    order.resize(p.num_cores());
    std::iota(order.begin(), order.end(), std::size_t{0});
    auto min_time = [&](std::size_t i) {
      Cycles m = kInfCycles;
      for (std::size_t r = 0; r < p.num_rails(); ++r) {
        m = std::min(m, p.time[i][r]);
      }
      return m;
    };
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return min_time(a) > min_time(b);
    });
    suffix_min.assign(order.size() + 1, 0);
    for (std::size_t k = order.size(); k-- > 0;) {
      suffix_min[k] = suffix_min[k + 1] + min_time(order[k]);
    }
    rail_class.assign(p.num_rails(), -1);
    int next = 0;
    for (std::size_t r = 0; r < p.num_rails(); ++r) {
      if (rail_class[r] >= 0) continue;
      rail_class[r] = next;
      for (std::size_t r2 = r + 1; r2 < p.num_rails(); ++r2) {
        if (rail_class[r2] >= 0) continue;
        bool same = true;
        for (std::size_t i = 0; i < p.num_cores(); ++i) {
          if (p.time[i][r] != p.time[i][r2]) {
            same = false;
            break;
          }
        }
        if (same) rail_class[r2] = next;
      }
      ++next;
    }
  }

  Cycles bound(std::size_t k) const {
    Cycles max_load = 0, total = 0;
    for (const auto& rail : rails) {
      max_load = std::max(max_load, rail.load());
      total += rail.load();
    }
    const auto b = static_cast<Cycles>(problem.num_rails());
    // Bypass overhead only grows; the work-spread bound on base times is
    // admissible.
    const Cycles spread = (total + suffix_min[k] + b - 1) / b;
    return std::max(max_load, spread);
  }

  void dfs(std::size_t k) {
    if (aborted) return;
    ++nodes;
    if (max_nodes >= 0 && nodes > max_nodes) {
      aborted = true;
      return;
    }
    if (k == order.size()) {
      Cycles max_load = 0;
      for (const auto& rail : rails) max_load = std::max(max_load, rail.load());
      if (max_load < best) {
        best = max_load;
        best_core_rail = core_rail;
      }
      return;
    }
    if (bound(k) >= best) return;
    const std::size_t core = order[k];
    std::vector<char> class_used(problem.num_rails(), 0);
    // Try rails in increasing resulting-load order.
    std::vector<std::size_t> candidates;
    for (std::size_t r = 0; r < problem.num_rails(); ++r) {
      if (rails[r].count == 0) {
        const auto cls = static_cast<std::size_t>(rail_class[r]);
        if (class_used[cls]) continue;
        class_used[cls] = 1;
      }
      candidates.push_back(r);
    }
    auto load_after = [&](std::size_t r) {
      RailState s = rails[r];
      s.sum_time += problem.time[core][r];
      s.sum_p1 += problem.patterns[core] + 1;
      ++s.count;
      return s.load();
    };
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b) {
                return load_after(a) < load_after(b);
              });
    for (std::size_t r : candidates) {
      if (load_after(r) >= best) continue;
      const RailState saved = rails[r];
      rails[r].sum_time += problem.time[core][r];
      rails[r].sum_p1 += problem.patterns[core] + 1;
      ++rails[r].count;
      core_rail[core] = static_cast<int>(r);
      dfs(k + 1);
      core_rail[core] = -1;
      rails[r] = saved;
      if (aborted) return;
    }
  }
};

}  // namespace

Cycles DaisychainProblem::makespan(const std::vector<int>& core_to_rail) const {
  std::vector<RailState> rails(num_rails());
  for (std::size_t i = 0; i < num_cores(); ++i) {
    const auto r = static_cast<std::size_t>(core_to_rail.at(i));
    rails.at(r).sum_time += time[i][r];
    rails.at(r).sum_p1 += patterns[i] + 1;
    ++rails.at(r).count;
  }
  Cycles max_load = 0;
  for (const auto& rail : rails) max_load = std::max(max_load, rail.load());
  return max_load;
}

DaisychainProblem make_daisychain_problem(const Soc& soc,
                                          const TestTimeTable& table,
                                          std::vector<int> rail_widths) {
  if (rail_widths.empty()) throw std::invalid_argument("no rails");
  for (int w : rail_widths) {
    if (w < 1 || w > table.max_width()) {
      throw std::invalid_argument("rail width outside table range");
    }
  }
  DaisychainProblem problem;
  problem.rail_widths = std::move(rail_widths);
  const std::size_t n = soc.num_cores();
  const std::size_t b = problem.rail_widths.size();
  problem.time.assign(n, std::vector<Cycles>(b, 0));
  problem.patterns.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    problem.patterns[i] = soc.core(i).num_patterns;
    for (std::size_t r = 0; r < b; ++r) {
      problem.time[i][r] = table.time(i, problem.rail_widths[r]);
    }
  }
  return problem;
}

TamSolveResult solve_daisychain_exact(const DaisychainProblem& problem,
                                      long long max_nodes) {
  Search search(problem, max_nodes);
  search.dfs(0);
  TamSolveResult result;
  result.nodes = search.nodes;
  if (search.best_core_rail.empty()) {
    result.proved_optimal = !search.aborted;
    return result;
  }
  result.feasible = true;
  result.proved_optimal = !search.aborted;
  result.assignment.core_to_bus = search.best_core_rail;
  result.assignment.makespan = problem.makespan(search.best_core_rail);
  return result;
}

TamSolveResult solve_daisychain_greedy(const DaisychainProblem& problem) {
  std::vector<std::size_t> order(problem.num_cores());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return problem.time[a][0] > problem.time[b][0];
  });
  std::vector<RailState> rails(problem.num_rails());
  std::vector<int> core_rail(problem.num_cores(), -1);
  for (std::size_t core : order) {
    std::size_t best_rail = 0;
    Cycles best_load = kInfCycles;
    for (std::size_t r = 0; r < problem.num_rails(); ++r) {
      RailState s = rails[r];
      s.sum_time += problem.time[core][r];
      s.sum_p1 += problem.patterns[core] + 1;
      ++s.count;
      if (s.load() < best_load) {
        best_load = s.load();
        best_rail = r;
      }
    }
    rails[best_rail].sum_time += problem.time[core][best_rail];
    rails[best_rail].sum_p1 += problem.patterns[core] + 1;
    ++rails[best_rail].count;
    core_rail[core] = static_cast<int>(best_rail);
  }
  TamSolveResult result;
  result.feasible = true;
  result.proved_optimal = false;
  result.assignment.core_to_bus = core_rail;
  result.assignment.makespan = problem.makespan(core_rail);
  result.nodes = static_cast<long long>(problem.num_cores());
  return result;
}

}  // namespace soctest
