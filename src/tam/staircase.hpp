#pragma once

#include <cstddef>
#include <vector>

#include "wrapper/test_time_table.hpp"

namespace soctest {

/// Width-major flattening of a TestTimeTable: one contiguous row of
/// per-core test times per TAM width,
///
///   val[(w - 1) * num_cores + i] = table.time(i, w).
///
/// TestTimeTable stores core-major vectors-of-vectors, which is the right
/// shape for building the monotone envelope but the wrong one for the
/// architecture search: the width search and the width DP both ask "what is
/// every core's time at width w" — a strided, double-indirected walk there,
/// a single cache-line-friendly row scan here. Row kernels (sum, max,
/// masked accumulate) are branch-free loops over that row, so compilers
/// auto-vectorize them.
///
/// Widths outside [1, max_width] are clamped to the edge. Clamping upward
/// is sound wherever the staircase is consulted: times are a monotone
/// non-increasing envelope, so the edge value over-estimates nothing below
/// it and any width beyond the table behaves like the table edge (a wider
/// bus can always leave wires unused).
class Staircase {
 public:
  explicit Staircase(const TestTimeTable& table);

  int max_width() const { return max_width_; }
  std::size_t num_cores() const { return num_cores_; }

  /// Contiguous row of per-core times at `width` (clamped).
  const Cycles* row(int width) const {
    return val_.data() + static_cast<std::size_t>(clamp(width) - 1) * num_cores_;
  }

  /// Single cell, same clamping.
  Cycles at(std::size_t core, int width) const { return row(width)[core]; }

  struct RowStats {
    Cycles total = 0;       ///< sum over cores of time(i, w)
    Cycles max_single = 0;  ///< max over cores of time(i, w)
  };

  /// Sum and max of one row in a single branch-free pass.
  RowStats row_stats(int width) const;

 private:
  int clamp(int width) const {
    if (width < 1) return 1;
    return width > max_width_ ? max_width_ : width;
  }

  int max_width_ = 0;
  std::size_t num_cores_ = 0;
  std::vector<Cycles> val_;  ///< [(width - 1) * num_cores + core]
};

}  // namespace soctest
