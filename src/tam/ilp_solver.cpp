#include "tam/ilp_solver.hpp"

#include <cmath>
#include <string>

namespace soctest {

LinearProgram build_tam_ilp(const TamProblem& problem) {
  LinearProgram lp;
  const std::size_t n = problem.num_cores();
  const std::size_t b = problem.num_buses();
  auto xvar = [&](std::size_t i, std::size_t j) {
    return static_cast<int>(i * b + j);
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      const int var = lp.add_binary("x_" + std::to_string(i) + "_" + std::to_string(j));
      if (!problem.allowed[i][j]) lp.set_bounds(var, 0.0, 0.0);
    }
  }
  // The ATE depth limit caps every bus load; since load_j <= T in every
  // feasible solution, bounding T enforces it.
  const double t_upper = problem.bus_depth_limit >= 0
                             ? static_cast<double>(problem.bus_depth_limit)
                             : kInf;
  const int tvar = lp.add_variable("T", 0.0, t_upper, VarKind::kContinuous, 1.0);

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (std::size_t j = 0; j < b; ++j) coeffs.emplace_back(xvar(i, j), 1.0);
    lp.add_row("assign_" + std::to_string(i), std::move(coeffs), RowSense::kEq, 1.0);
  }
  for (std::size_t j = 0; j < b; ++j) {
    std::vector<std::pair<int, double>> coeffs;
    for (std::size_t i = 0; i < n; ++i) {
      coeffs.emplace_back(xvar(i, j), static_cast<double>(problem.time[i][j]));
    }
    coeffs.emplace_back(tvar, -1.0);
    lp.add_row("load_" + std::to_string(j), std::move(coeffs), RowSense::kLe, 0.0);
  }
  for (const auto& group : problem.co_groups) {
    for (std::size_t m = 1; m < group.size(); ++m) {
      for (std::size_t j = 0; j < b; ++j) {
        lp.add_row("cogroup_" + std::to_string(group[0]) + "_" +
                       std::to_string(group[m]) + "_" + std::to_string(j),
                   {{xvar(group[0], j), 1.0}, {xvar(group[m], j), -1.0}},
                   RowSense::kEq, 0.0);
      }
    }
  }
  if (problem.bus_power_budget >= 0 && !problem.core_power_mw.empty()) {
    // Linearized bus-max-sum power constraint: continuous m_j >= P_i x_ij
    // for every assignable pair, and Σ_j m_j <= budget.
    std::vector<int> mvar(b, -1);
    std::vector<std::pair<int, double>> sum_row;
    for (std::size_t j = 0; j < b; ++j) {
      mvar[j] = lp.add_variable("m_" + std::to_string(j), 0.0,
                                problem.bus_power_budget, VarKind::kContinuous);
      sum_row.emplace_back(mvar[j], 1.0);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (problem.core_power_mw[i] <= 0) continue;
      for (std::size_t j = 0; j < b; ++j) {
        if (!problem.allowed[i][j]) continue;
        lp.add_row("busmax_" + std::to_string(i) + "_" + std::to_string(j),
                   {{mvar[j], 1.0}, {xvar(i, j), -problem.core_power_mw[i]}},
                   RowSense::kGe, 0.0);
      }
    }
    lp.add_row("power_sum", std::move(sum_row), RowSense::kLe,
               problem.bus_power_budget);
  }
  if (problem.wire_budget >= 0 && !problem.wire_cost.empty()) {
    std::vector<std::pair<int, double>> coeffs;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < b; ++j) {
        if (problem.wire_cost[i][j] != 0) {
          coeffs.emplace_back(xvar(i, j),
                              static_cast<double>(problem.wire_cost[i][j]));
        }
      }
    }
    lp.add_row("wire_budget", std::move(coeffs), RowSense::kLe,
               static_cast<double>(problem.wire_budget));
  }
  return lp;
}

TamSolveResult solve_ilp(const TamProblem& problem, const MipOptions& options) {
  const LinearProgram lp = build_tam_ilp(problem);
  const MipResult mip = solve_mip(lp, options);
  TamSolveResult result;
  result.nodes = mip.nodes_explored;
  result.stop = mip.stop;
  if (mip.status == MipStatus::kInfeasible || mip.x.empty()) {
    result.feasible = false;
    result.proved_optimal = mip.status == MipStatus::kInfeasible;
    return result;
  }
  const std::size_t n = problem.num_cores();
  const std::size_t b = problem.num_buses();
  result.assignment.core_to_bus.assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      if (mip.x[i * b + j] > 0.5) {
        result.assignment.core_to_bus[i] = static_cast<int>(j);
        break;
      }
    }
  }
  result.assignment.makespan = problem.makespan(result.assignment.core_to_bus);
  result.feasible = problem.check_assignment(result.assignment.core_to_bus).empty();
  result.proved_optimal = mip.status == MipStatus::kOptimal && result.feasible;
  return result;
}

}  // namespace soctest
