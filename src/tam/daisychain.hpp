#pragma once

#include "soc/soc.hpp"
#include "tam/exact_solver.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {

/// The rival TAM style to the paper's multiplexed test bus: a daisy-chain
/// (TestRail). Cores on a rail are serially concatenated; while core i is
/// tested, every other wrapper on the rail sits in 1-bit bypass, so each
/// scan operation is lengthened by one cycle per bypassed wrapper. With
/// m_r cores on rail r, core i's test inflates by (p_i + 1) bypass-laden
/// shifts:
///
///   load(r) = Σ_{i∈r} t_i(w_r)  +  (m_r - 1) · Σ_{i∈r} (p_i + 1)
///
/// The optimization problem is the same partition of cores, but the
/// objective couples a core's cost to how many neighbours share its rail —
/// which is exactly why the paper's bus architecture wins on SOCs with
/// many patterns.
struct DaisychainProblem {
  std::vector<int> rail_widths;
  std::vector<std::vector<Cycles>> time;  ///< [core][rail]: t_i(w_r)
  std::vector<Cycles> patterns;           ///< p_i per core

  std::size_t num_cores() const { return time.size(); }
  std::size_t num_rails() const { return rail_widths.size(); }

  /// Rail-aware makespan of an assignment.
  Cycles makespan(const std::vector<int>& core_to_rail) const;
};

/// Builds the problem from a SOC and its test time table.
DaisychainProblem make_daisychain_problem(const Soc& soc,
                                          const TestTimeTable& table,
                                          std::vector<int> rail_widths);

/// Exact branch & bound over the rail partition (rails with equal widths
/// are canonicalized). Returns the optimal rail assignment.
TamSolveResult solve_daisychain_exact(const DaisychainProblem& problem,
                                      long long max_nodes = -1);

/// Greedy baseline: biggest core first onto the rail with the smallest
/// resulting rail-aware load.
TamSolveResult solve_daisychain_greedy(const DaisychainProblem& problem);

}  // namespace soctest
