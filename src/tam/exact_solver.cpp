#include "tam/exact_solver.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace soctest {

namespace {

constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max();

/// A unit of assignment: either a single unconstrained core or a contracted
/// power co-assignment group.
struct Item {
  std::vector<std::size_t> cores;
  std::vector<Cycles> time;       // per bus; kInfCycles when not allowed
  std::vector<long long> wire;    // per bus
  Cycles min_time = 0;            // over allowed buses
  long long min_wire = 0;         // over allowed buses
  double max_power = 0.0;         // max member power (bus-max-sum constraint)
};

struct Search {
  const TamProblem& problem;
  const ExactSolverOptions& options;
  std::vector<Item> items;
  std::vector<int> bus_class;          // symmetry equivalence class per bus
  std::vector<Cycles> load;            // current per-bus load
  std::vector<int> item_bus;           // current assignment (item -> bus)
  std::vector<Cycles> suffix_min_sum;  // Σ min_time over items [k..)
  std::vector<long long> suffix_min_wire;
  long long wire_used = 0;
  long long nodes = 0;
  bool aborted = false;
  // Bus-max-sum power constraint state.
  std::vector<double> bus_max_power;
  double power_sum = 0.0;

  bool power_constrained() const { return problem.bus_power_budget >= 0; }

  /// Increase of Σ_j max power if `item` joins bus j.
  double power_delta(std::size_t j, const Item& item) const {
    return std::max(bus_max_power[j], item.max_power) - bus_max_power[j];
  }

  bool power_ok(std::size_t j, const Item& item) const {
    return !power_constrained() ||
           power_sum + power_delta(j, item) <= problem.bus_power_budget + 1e-9;
  }

  Cycles best = kInfCycles;
  std::vector<int> best_item_bus;

  explicit Search(const TamProblem& p, const ExactSolverOptions& o)
      : problem(p), options(o) {}

  void build_items() {
    const std::size_t n = problem.num_cores();
    const std::size_t b = problem.num_buses();
    std::vector<char> grouped(n, 0);
    auto make_item = [&](std::vector<std::size_t> cores) {
      Item item;
      item.cores = std::move(cores);
      item.time.assign(b, 0);
      item.wire.assign(b, 0);
      for (std::size_t j = 0; j < b; ++j) {
        bool ok = true;
        for (std::size_t core : item.cores) {
          if (!problem.allowed[core][j]) {
            ok = false;
            break;
          }
          item.time[j] += problem.time[core][j];
          if (!problem.wire_cost.empty()) {
            item.wire[j] += problem.wire_cost[core][j];
          }
        }
        if (!ok) item.time[j] = kInfCycles;
      }
      item.min_time = kInfCycles;
      item.min_wire = std::numeric_limits<long long>::max();
      for (std::size_t j = 0; j < b; ++j) {
        if (item.time[j] == kInfCycles) continue;
        item.min_time = std::min(item.min_time, item.time[j]);
        item.min_wire = std::min(item.min_wire, item.wire[j]);
      }
      if (!problem.core_power_mw.empty()) {
        for (std::size_t core : item.cores) {
          item.max_power = std::max(item.max_power, problem.core_power_mw[core]);
        }
      }
      return item;
    };
    for (const auto& group : problem.co_groups) {
      for (std::size_t core : group) grouped[core] = 1;
      items.push_back(make_item(group));
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!grouped[i]) items.push_back(make_item({i}));
    }
    // Big items first: decisions with the largest impact near the root.
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b2) {
      return a.min_time > b2.min_time;
    });

    suffix_min_sum.assign(items.size() + 1, 0);
    suffix_min_wire.assign(items.size() + 1, 0);
    for (std::size_t k = items.size(); k-- > 0;) {
      suffix_min_sum[k] = suffix_min_sum[k + 1] +
                          (items[k].min_time == kInfCycles ? 0 : items[k].min_time);
      suffix_min_wire[k] =
          suffix_min_wire[k + 1] +
          (items[k].min_wire == std::numeric_limits<long long>::max()
               ? 0
               : items[k].min_wire);
    }
  }

  void build_bus_classes() {
    const std::size_t b = problem.num_buses();
    bus_class.assign(b, -1);
    int next_class = 0;
    for (std::size_t j = 0; j < b; ++j) {
      if (bus_class[j] >= 0) continue;
      bus_class[j] = next_class;
      for (std::size_t j2 = j + 1; j2 < b; ++j2) {
        if (bus_class[j2] >= 0) continue;
        bool same = true;
        for (const auto& item : items) {
          if (item.time[j] != item.time[j2] || item.wire[j] != item.wire[j2]) {
            same = false;
            break;
          }
        }
        if (same) bus_class[j2] = next_class;
      }
      ++next_class;
    }
  }

  /// Lower bound on the final makespan from a partial assignment of the
  /// first `k` items. Strength depends on options.bound_mode (ablation A2).
  Cycles bound(std::size_t k) const {
    if (options.bound_mode == BoundMode::kNone) return 0;
    Cycles max_load = 0;
    Cycles total_load = 0;
    for (Cycles l : load) {
      max_load = std::max(max_load, l);
      total_load += l;
    }
    if (options.bound_mode == BoundMode::kLoadOnly) return max_load;
    const auto b = static_cast<Cycles>(problem.num_buses());
    const Cycles spread = (total_load + suffix_min_sum[k] + b - 1) / b;
    Cycles item_min = 0;
    if (k < items.size() && items[k].min_time != kInfCycles) {
      item_min = items[k].min_time;  // items sorted desc: first is largest
    }
    return std::max({max_load, spread, item_min});
  }

  // Secondary-objective search: minimize total wire cost subject to
  // makespan <= makespan_cap (used by solve_exact_min_wire / lex).
  Cycles makespan_cap = kInfCycles;
  long long best_wire = std::numeric_limits<long long>::max();

  void dfs_wire(std::size_t k) {
    if (aborted) return;
    ++nodes;
    if (options.max_nodes >= 0 && nodes > options.max_nodes) {
      aborted = true;
      return;
    }
    if (k == items.size()) {
      if (wire_used < best_wire) {
        best_wire = wire_used;
        best_item_bus = item_bus;
      }
      return;
    }
    if (wire_used + suffix_min_wire[k] >= best_wire) return;
    if (problem.wire_budget >= 0 &&
        wire_used + suffix_min_wire[k] > problem.wire_budget) {
      return;
    }
    const Item& item = items[k];
    std::vector<std::size_t> candidates;
    std::vector<char> class_used(static_cast<std::size_t>(problem.num_buses()), 0);
    for (std::size_t j = 0; j < problem.num_buses(); ++j) {
      if (item.time[j] == kInfCycles) continue;
      if (load[j] + item.time[j] > makespan_cap) continue;
      if (load[j] == 0) {
        const auto cls = static_cast<std::size_t>(bus_class[j]);
        if (class_used[cls]) continue;
        class_used[cls] = 1;
      }
      candidates.push_back(j);
    }
    // Cheapest wire first: reach low-cost incumbents early.
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b2) {
                return item.wire[a] < item.wire[b2];
              });
    for (std::size_t j : candidates) {
      if (wire_used + item.wire[j] + suffix_min_wire[k + 1] >= best_wire) {
        continue;
      }
      if (problem.wire_budget >= 0 &&
          wire_used + item.wire[j] + suffix_min_wire[k + 1] >
              problem.wire_budget) {
        continue;
      }
      if (!power_ok(j, item)) continue;
      const double saved_max = power_constrained() ? bus_max_power[j] : 0.0;
      const double saved_sum = power_sum;
      if (power_constrained()) {
        power_sum += power_delta(j, item);
        bus_max_power[j] = std::max(bus_max_power[j], item.max_power);
      }
      load[j] += item.time[j];
      wire_used += item.wire[j];
      item_bus[k] = static_cast<int>(j);
      dfs_wire(k + 1);
      item_bus[k] = -1;
      wire_used -= item.wire[j];
      load[j] -= item.time[j];
      if (power_constrained()) {
        bus_max_power[j] = saved_max;
        power_sum = saved_sum;
      }
      if (aborted) return;
    }
  }

  void dfs(std::size_t k) {
    if (aborted) return;
    ++nodes;
    if (options.max_nodes >= 0 && nodes > options.max_nodes) {
      aborted = true;
      return;
    }
    if (k == items.size()) {
      Cycles max_load = 0;
      for (Cycles l : load) max_load = std::max(max_load, l);
      if (max_load < best) {
        best = max_load;
        best_item_bus = item_bus;
      }
      return;
    }
    if (bound(k) >= best) return;
    if (problem.wire_budget >= 0 &&
        wire_used + suffix_min_wire[k] > problem.wire_budget) {
      return;
    }
    const Item& item = items[k];
    // Candidate buses ordered by resulting load (fail-fast toward good
    // incumbents); symmetry: at most one empty bus per equivalence class.
    std::vector<std::size_t> candidates;
    std::vector<char> class_used(static_cast<std::size_t>(problem.num_buses()), 0);
    for (std::size_t j = 0; j < problem.num_buses(); ++j) {
      if (item.time[j] == kInfCycles) continue;
      if (load[j] == 0) {
        const auto cls = static_cast<std::size_t>(bus_class[j]);
        if (class_used[cls]) continue;
        class_used[cls] = 1;
      }
      candidates.push_back(j);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b2) {
                return load[a] + item.time[a] < load[b2] + item.time[b2];
              });
    for (std::size_t j : candidates) {
      if (load[j] + item.time[j] >= best) continue;
      if (problem.wire_budget >= 0 &&
          wire_used + item.wire[j] + suffix_min_wire[k + 1] >
              problem.wire_budget) {
        continue;
      }
      if (!power_ok(j, item)) continue;
      const double saved_max = power_constrained() ? bus_max_power[j] : 0.0;
      const double saved_sum = power_sum;
      if (power_constrained()) {
        power_sum += power_delta(j, item);
        bus_max_power[j] = std::max(bus_max_power[j], item.max_power);
      }
      load[j] += item.time[j];
      wire_used += item.wire[j];
      item_bus[k] = static_cast<int>(j);
      dfs(k + 1);
      item_bus[k] = -1;
      wire_used -= item.wire[j];
      load[j] -= item.time[j];
      if (power_constrained()) {
        bus_max_power[j] = saved_max;
        power_sum = saved_sum;
      }
      if (aborted) return;
    }
  }
};

}  // namespace

TamSolveResult solve_exact_min_wire(const TamProblem& problem,
                                    Cycles makespan_cap,
                                    const ExactSolverOptions& options) {
  if (problem.wire_cost.empty()) {
    throw std::invalid_argument("solve_exact_min_wire needs wire costs");
  }
  TamSolveResult result;
  Search search(problem, options);
  search.build_items();
  search.build_bus_classes();
  search.load.assign(problem.num_buses(), 0);
  search.bus_max_power.assign(problem.num_buses(), 0.0);
  search.item_bus.assign(search.items.size(), -1);
  search.makespan_cap = makespan_cap;
  if (problem.bus_depth_limit >= 0) {
    search.makespan_cap = std::min(search.makespan_cap, problem.bus_depth_limit);
  }
  search.dfs_wire(0);

  result.nodes = search.nodes;
  if (search.best_item_bus.empty()) {
    result.feasible = false;
    result.proved_optimal = !search.aborted;
    return result;
  }
  result.feasible = true;
  result.proved_optimal = !search.aborted;
  result.assignment.core_to_bus.assign(problem.num_cores(), -1);
  for (std::size_t k = 0; k < search.items.size(); ++k) {
    for (std::size_t core : search.items[k].cores) {
      result.assignment.core_to_bus[core] = search.best_item_bus[k];
    }
  }
  result.assignment.makespan = problem.makespan(result.assignment.core_to_bus);
  return result;
}

TamSolveResult solve_exact_lex(const TamProblem& problem,
                               const ExactSolverOptions& options) {
  const TamSolveResult primary = solve_exact(problem, options);
  if (!primary.feasible || problem.wire_cost.empty()) return primary;
  TamSolveResult secondary =
      solve_exact_min_wire(problem, primary.assignment.makespan, options);
  if (!secondary.feasible) return primary;  // node cap hit before any leaf
  secondary.nodes += primary.nodes;
  secondary.proved_optimal =
      primary.proved_optimal && secondary.proved_optimal;
  return secondary;
}

TamSolveResult solve_exact(const TamProblem& problem,
                           const ExactSolverOptions& options) {
  TamSolveResult result;
  Search search(problem, options);
  search.build_items();
  search.build_bus_classes();
  search.load.assign(problem.num_buses(), 0);
  search.bus_max_power.assign(problem.num_buses(), 0.0);
  search.item_bus.assign(search.items.size(), -1);
  if (options.initial_upper_bound >= 0) {
    // Warm start: anything >= this bound is pruned; +1 keeps equal-cost
    // solutions reachable so a feasible assignment is still produced.
    search.best = options.initial_upper_bound + 1;
  }
  if (problem.bus_depth_limit >= 0) {
    // The ATE depth limit caps every bus load, hence the makespan.
    search.best = std::min(search.best, problem.bus_depth_limit + 1);
  }
  search.dfs(0);

  result.nodes = search.nodes;
  if (search.best_item_bus.empty()) {
    // Either truly infeasible or the node budget expired before any leaf.
    result.feasible = false;
    result.proved_optimal = !search.aborted;
    return result;
  }
  result.feasible = true;
  result.proved_optimal = !search.aborted;
  result.assignment.core_to_bus.assign(problem.num_cores(), -1);
  for (std::size_t k = 0; k < search.items.size(); ++k) {
    for (std::size_t core : search.items[k].cores) {
      result.assignment.core_to_bus[core] = search.best_item_bus[k];
    }
  }
  result.assignment.makespan = problem.makespan(result.assignment.core_to_bus);
  return result;
}

}  // namespace soctest
