#include "tam/exact_solver.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"
#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max();

/// A unit of assignment: either a single unconstrained core or a contracted
/// power co-assignment group.
struct Item {
  std::vector<std::size_t> cores;
  std::vector<Cycles> time;       // per bus; kInfCycles when not allowed
  std::vector<long long> wire;    // per bus
  Cycles min_time = 0;            // over allowed buses
  long long min_wire = 0;         // over allowed buses
  double max_power = 0.0;         // max member power (bus-max-sum constraint)
};

/// State shared by the subtree searches of one parallel solve: the incumbent
/// makespan (read every node for pruning — a bound found in one subtree
/// prunes all others), the global node budget, and the abort flag.
struct SharedSearchState {
  std::atomic<Cycles> best{kInfCycles};
  std::atomic<long long> nodes{0};
  std::atomic<bool> aborted{false};
  /// StopReason of the first subtree that aborted (int-encoded).
  std::atomic<int> stop_reason{0};
  std::mutex mu;
  Cycles best_value = kInfCycles;     // guarded by mu
  std::vector<int> best_item_bus;     // guarded by mu
};

struct Search {
  const TamProblem& problem;
  const ExactSolverOptions& options;
  std::vector<Item> items;
  std::vector<int> bus_class;          // symmetry equivalence class per bus
  std::vector<Cycles> load;            // current per-bus load
  std::vector<int> item_bus;           // current assignment (item -> bus)
  std::vector<Cycles> suffix_min_sum;  // Σ min_time over items [k..)
  std::vector<long long> suffix_min_wire;
  long long wire_used = 0;
  long long nodes = 0;
  bool aborted = false;
  // Per-search observability tallies (plain increments on the node path,
  // batched into the obs counters by flush_metrics()).
  long long leaves = 0;
  long long pruned_bound = 0;
  long long incumbents = 0;
  // Bus-max-sum power constraint state.
  std::vector<double> bus_max_power;
  double power_sum = 0.0;

  // Parallel / cooperative-cancellation hooks. When `shared` is set this
  // Search explores one root subtree: incumbent reads/updates and the node
  // budget go through the shared state instead of the local fields.
  SharedSearchState* shared = nullptr;
  // Composes the options' deadline, cancellation token, and the
  // tam.exact.node failpoint into one sticky per-node poll.
  StopCheck stop_check;
  StopReason stop_reason = StopReason::kNone;
  // Witness mode: unwind as soon as one incumbent is recorded (used to
  // re-derive the deterministic optimal assignment after a parallel proof).
  bool stop_on_first_incumbent = false;
  bool stop_now = false;

  bool power_constrained() const { return problem.bus_power_budget >= 0; }

  /// Increase of Σ_j max power if `item` joins bus j.
  double power_delta(std::size_t j, const Item& item) const {
    return std::max(bus_max_power[j], item.max_power) - bus_max_power[j];
  }

  bool power_ok(std::size_t j, const Item& item) const {
    return !power_constrained() ||
           power_sum + power_delta(j, item) <= problem.bus_power_budget + 1e-9;
  }

  Cycles best = kInfCycles;
  std::vector<int> best_item_bus;

  explicit Search(const TamProblem& p, const ExactSolverOptions& o)
      : problem(p),
        options(o),
        stop_check(o.deadline, o.cancel, failpoint::sites::kExactNode) {}

  /// Incumbent used for pruning: the racing shared bound in parallel mode.
  Cycles current_best() const {
    return shared ? shared->best.load(std::memory_order_relaxed) : best;
  }

  /// Records why this search is unwinding; in parallel mode the first
  /// aborter's reason wins globally.
  void abort_with(StopReason reason) {
    aborted = true;
    if (stop_reason == StopReason::kNone) stop_reason = reason;
    if (shared) {
      int expected = 0;
      shared->stop_reason.compare_exchange_strong(
          expected, static_cast<int>(reason), std::memory_order_relaxed);
      shared->aborted.store(true, std::memory_order_relaxed);
    }
  }

  /// Per-node bookkeeping: node counting, the node budget (global in
  /// parallel mode), and the deadline/cancellation/failpoint stop check.
  /// Returns false when the search must unwind.
  bool enter_node() {
    ++nodes;
    if (shared) {
      const long long total =
          shared->nodes.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options.max_nodes >= 0 && total > options.max_nodes) {
        abort_with(StopReason::kNodeBudget);
        return false;
      }
      if (shared->aborted.load(std::memory_order_relaxed)) {
        aborted = true;
        if (stop_reason == StopReason::kNone) {
          stop_reason = static_cast<StopReason>(
              shared->stop_reason.load(std::memory_order_relaxed));
        }
        return false;
      }
    } else if (options.max_nodes >= 0 && nodes > options.max_nodes) {
      abort_with(StopReason::kNodeBudget);
      return false;
    }
    if (stop_check.should_stop()) {
      abort_with(stop_check.reason());
      return false;
    }
    return true;
  }

  void setup(std::size_t num_buses) {
    load.assign(num_buses, 0);
    bus_max_power.assign(num_buses, 0.0);
    item_bus.assign(items.size(), -1);
    wire_used = 0;
    power_sum = 0.0;
  }

  void build_items() {
    const std::size_t n = problem.num_cores();
    const std::size_t b = problem.num_buses();
    std::vector<char> grouped(n, 0);
    auto make_item = [&](std::vector<std::size_t> cores) {
      Item item;
      item.cores = std::move(cores);
      item.time.assign(b, 0);
      item.wire.assign(b, 0);
      for (std::size_t j = 0; j < b; ++j) {
        bool ok = true;
        for (std::size_t core : item.cores) {
          if (!problem.allowed[core][j]) {
            ok = false;
            break;
          }
          item.time[j] += problem.time[core][j];
          if (!problem.wire_cost.empty()) {
            item.wire[j] += problem.wire_cost[core][j];
          }
        }
        if (!ok) item.time[j] = kInfCycles;
      }
      item.min_time = kInfCycles;
      item.min_wire = std::numeric_limits<long long>::max();
      for (std::size_t j = 0; j < b; ++j) {
        if (item.time[j] == kInfCycles) continue;
        item.min_time = std::min(item.min_time, item.time[j]);
        item.min_wire = std::min(item.min_wire, item.wire[j]);
      }
      if (!problem.core_power_mw.empty()) {
        for (std::size_t core : item.cores) {
          item.max_power = std::max(item.max_power, problem.core_power_mw[core]);
        }
      }
      return item;
    };
    for (const auto& group : problem.co_groups) {
      for (std::size_t core : group) grouped[core] = 1;
      items.push_back(make_item(group));
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!grouped[i]) items.push_back(make_item({i}));
    }
    // Big items first: decisions with the largest impact near the root.
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b2) {
      return a.min_time > b2.min_time;
    });

    suffix_min_sum.assign(items.size() + 1, 0);
    suffix_min_wire.assign(items.size() + 1, 0);
    for (std::size_t k = items.size(); k-- > 0;) {
      suffix_min_sum[k] = suffix_min_sum[k + 1] +
                          (items[k].min_time == kInfCycles ? 0 : items[k].min_time);
      suffix_min_wire[k] =
          suffix_min_wire[k + 1] +
          (items[k].min_wire == std::numeric_limits<long long>::max()
               ? 0
               : items[k].min_wire);
    }
  }

  void build_bus_classes() {
    const std::size_t b = problem.num_buses();
    bus_class.assign(b, -1);
    int next_class = 0;
    for (std::size_t j = 0; j < b; ++j) {
      if (bus_class[j] >= 0) continue;
      bus_class[j] = next_class;
      for (std::size_t j2 = j + 1; j2 < b; ++j2) {
        if (bus_class[j2] >= 0) continue;
        bool same = true;
        for (const auto& item : items) {
          if (item.time[j] != item.time[j2] || item.wire[j] != item.wire[j2]) {
            same = false;
            break;
          }
        }
        if (same) bus_class[j2] = next_class;
      }
      ++next_class;
    }
  }

  /// Lower bound on the final makespan from a partial assignment of the
  /// first `k` items. Strength depends on options.bound_mode (ablation A2).
  Cycles bound(std::size_t k) const {
    if (options.bound_mode == BoundMode::kNone) return 0;
    Cycles max_load = 0;
    Cycles total_load = 0;
    for (Cycles l : load) {
      max_load = std::max(max_load, l);
      total_load += l;
    }
    if (options.bound_mode == BoundMode::kLoadOnly) return max_load;
    const auto b = static_cast<Cycles>(problem.num_buses());
    const Cycles spread = (total_load + suffix_min_sum[k] + b - 1) / b;
    Cycles item_min = 0;
    if (k < items.size() && items[k].min_time != kInfCycles) {
      item_min = items[k].min_time;  // items sorted desc: first is largest
    }
    return std::max({max_load, spread, item_min});
  }

  /// Candidate buses for item `k` in the makespan search: allowed buses,
  /// at most one empty bus per symmetry class, ordered by resulting load.
  /// A pure function of the current partial assignment, so the serial DFS,
  /// the root-prefix enumeration, and the subtree searches all branch
  /// identically.
  std::vector<std::size_t> makespan_candidates(std::size_t k) const {
    const Item& item = items[k];
    std::vector<std::size_t> candidates;
    std::vector<char> class_used(static_cast<std::size_t>(problem.num_buses()), 0);
    for (std::size_t j = 0; j < problem.num_buses(); ++j) {
      if (item.time[j] == kInfCycles) continue;
      if (load[j] == 0) {
        const auto cls = static_cast<std::size_t>(bus_class[j]);
        if (class_used[cls]) continue;
        class_used[cls] = 1;
      }
      candidates.push_back(j);
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b2) {
                return load[a] + item.time[a] < load[b2] + item.time[b2];
              });
    return candidates;
  }

  /// Applies one assignment step without the save/restore bookkeeping (used
  /// to replay a root prefix into a fresh Search).
  void apply_assignment(std::size_t k, std::size_t j) {
    const Item& item = items[k];
    if (power_constrained()) {
      power_sum += power_delta(j, item);
      bus_max_power[j] = std::max(bus_max_power[j], item.max_power);
    }
    load[j] += item.time[j];
    wire_used += item.wire[j];
    item_bus[k] = static_cast<int>(j);
  }

  void replay_prefix(const std::vector<int>& prefix) {
    for (std::size_t k = 0; k < prefix.size(); ++k) {
      apply_assignment(k, static_cast<std::size_t>(prefix[k]));
    }
  }

  void record_leaf(Cycles max_load) {
    if (shared) {
      Cycles cur = shared->best.load(std::memory_order_relaxed);
      bool improved = false;
      while (max_load < cur) {
        if (shared->best.compare_exchange_weak(cur, max_load,
                                               std::memory_order_relaxed)) {
          improved = true;
          break;
        }
      }
      if (improved) {
        std::lock_guard<std::mutex> lock(shared->mu);
        if (max_load < shared->best_value) {
          shared->best_value = max_load;
          shared->best_item_bus = item_bus;
        }
        note_incumbent(max_load);
      }
    } else if (max_load < best) {
      best = max_load;
      best_item_bus = item_bus;
      if (stop_on_first_incumbent) stop_now = true;
      note_incumbent(max_load);
    }
  }

  /// Incumbent improvements are rare, so they may emit trace events from
  /// the node path (everything else batches). `value` is the objective —
  /// makespan cycles in dfs(), total wirelength in dfs_wire().
  void note_incumbent(Cycles value) {
    ++incumbents;
    if (obs::enabled()) {
      obs::instant("tam.exact.incumbent",
                   {{"value", static_cast<long long>(value)}, {"node", nodes}});
    }
  }

  /// Batches the search's tallies into the global counters; call once when
  /// a dfs/dfs_wire run finishes (per subtree task in parallel mode).
  void flush_metrics() const {
    if (!obs::enabled()) return;
    obs::counter("tam.exact.nodes").add(nodes);
    obs::counter("tam.exact.leaves").add(leaves);
    obs::counter("tam.exact.pruned_bound").add(pruned_bound);
    obs::counter("tam.exact.incumbents").add(incumbents);
  }

  // Secondary-objective search: minimize total wire cost subject to
  // makespan <= makespan_cap (used by solve_exact_min_wire / lex).
  Cycles makespan_cap = kInfCycles;
  long long best_wire = std::numeric_limits<long long>::max();

  void dfs_wire(std::size_t k) {
    if (aborted) return;
    if (!enter_node()) return;
    if (k == items.size()) {
      ++leaves;
      if (wire_used < best_wire) {
        best_wire = wire_used;
        best_item_bus = item_bus;
        note_incumbent(static_cast<Cycles>(best_wire));
      }
      return;
    }
    if (wire_used + suffix_min_wire[k] >= best_wire) {
      ++pruned_bound;
      return;
    }
    if (problem.wire_budget >= 0 &&
        wire_used + suffix_min_wire[k] > problem.wire_budget) {
      return;
    }
    const Item& item = items[k];
    std::vector<std::size_t> candidates;
    std::vector<char> class_used(static_cast<std::size_t>(problem.num_buses()), 0);
    for (std::size_t j = 0; j < problem.num_buses(); ++j) {
      if (item.time[j] == kInfCycles) continue;
      if (load[j] + item.time[j] > makespan_cap) continue;
      if (load[j] == 0) {
        const auto cls = static_cast<std::size_t>(bus_class[j]);
        if (class_used[cls]) continue;
        class_used[cls] = 1;
      }
      candidates.push_back(j);
    }
    // Cheapest wire first: reach low-cost incumbents early.
    std::sort(candidates.begin(), candidates.end(),
              [&](std::size_t a, std::size_t b2) {
                return item.wire[a] < item.wire[b2];
              });
    for (std::size_t j : candidates) {
      if (wire_used + item.wire[j] + suffix_min_wire[k + 1] >= best_wire) {
        continue;
      }
      if (problem.wire_budget >= 0 &&
          wire_used + item.wire[j] + suffix_min_wire[k + 1] >
              problem.wire_budget) {
        continue;
      }
      if (!power_ok(j, item)) continue;
      const double saved_max = power_constrained() ? bus_max_power[j] : 0.0;
      const double saved_sum = power_sum;
      if (power_constrained()) {
        power_sum += power_delta(j, item);
        bus_max_power[j] = std::max(bus_max_power[j], item.max_power);
      }
      load[j] += item.time[j];
      wire_used += item.wire[j];
      item_bus[k] = static_cast<int>(j);
      dfs_wire(k + 1);
      item_bus[k] = -1;
      wire_used -= item.wire[j];
      load[j] -= item.time[j];
      if (power_constrained()) {
        bus_max_power[j] = saved_max;
        power_sum = saved_sum;
      }
      if (aborted) return;
    }
  }

  void dfs(std::size_t k) {
    if (aborted || stop_now) return;
    if (!enter_node()) return;
    if (k == items.size()) {
      Cycles max_load = 0;
      for (Cycles l : load) max_load = std::max(max_load, l);
      ++leaves;
      record_leaf(max_load);
      return;
    }
    if (bound(k) >= current_best()) {
      ++pruned_bound;
      return;
    }
    if (problem.wire_budget >= 0 &&
        wire_used + suffix_min_wire[k] > problem.wire_budget) {
      return;
    }
    const Item& item = items[k];
    // Candidate buses ordered by resulting load (fail-fast toward good
    // incumbents); symmetry: at most one empty bus per equivalence class.
    const std::vector<std::size_t> candidates = makespan_candidates(k);
    for (std::size_t j : candidates) {
      if (load[j] + item.time[j] >= current_best()) continue;
      if (problem.wire_budget >= 0 &&
          wire_used + item.wire[j] + suffix_min_wire[k + 1] >
              problem.wire_budget) {
        continue;
      }
      if (!power_ok(j, item)) continue;
      const double saved_max = power_constrained() ? bus_max_power[j] : 0.0;
      const double saved_sum = power_sum;
      if (power_constrained()) {
        power_sum += power_delta(j, item);
        bus_max_power[j] = std::max(bus_max_power[j], item.max_power);
      }
      load[j] += item.time[j];
      wire_used += item.wire[j];
      item_bus[k] = static_cast<int>(j);
      dfs(k + 1);
      item_bus[k] = -1;
      wire_used -= item.wire[j];
      load[j] -= item.time[j];
      if (power_constrained()) {
        bus_max_power[j] = saved_max;
        power_sum = saved_sum;
      }
      if (aborted || stop_now) return;
    }
  }
};

/// Exclusive pruning threshold implied by the options and the problem's ATE
/// depth limit (the depth limit caps every bus load, hence the makespan).
Cycles initial_pruning_bound(const TamProblem& problem,
                             const ExactSolverOptions& options) {
  Cycles best = kInfCycles;
  if (options.initial_upper_bound >= 0) {
    // Warm start: anything >= this bound is pruned; +1 keeps equal-cost
    // solutions reachable so a feasible assignment is still produced.
    best = options.initial_upper_bound + 1;
  }
  if (problem.bus_depth_limit >= 0) {
    best = std::min(best, problem.bus_depth_limit + 1);
  }
  return best;
}

TamSolveResult assemble_result(const TamProblem& problem,
                               const std::vector<Item>& items,
                               const std::vector<int>& item_bus,
                               long long nodes, bool proved_optimal) {
  TamSolveResult result;
  result.nodes = nodes;
  result.feasible = true;
  result.proved_optimal = proved_optimal;
  result.assignment.core_to_bus.assign(problem.num_cores(), -1);
  for (std::size_t k = 0; k < items.size(); ++k) {
    for (std::size_t core : items[k].cores) {
      result.assignment.core_to_bus[core] = item_bus[k];
    }
  }
  result.assignment.makespan = problem.makespan(result.assignment.core_to_bus);
  return result;
}

/// Root-splitting parallel branch-and-bound. The first few levels of the
/// assignment tree are enumerated into independent subtree prefixes, which a
/// thread pool searches with a shared atomic incumbent (a bound found in one
/// subtree prunes all others). Exactness: the prefix enumeration prunes only
/// against the *initial* bound, so every assignment better than that bound
/// lives in exactly one subtree. Determinism: after the parallel phase
/// proves the optimal makespan T*, the witness assignment is re-derived by a
/// serial search capped at T*+1 stopping at its first incumbent — which is
/// provably the same leaf the plain serial solver returns (optimal leaves
/// survive every incumbent-pruning schedule, and DFS order is fixed).
TamSolveResult solve_exact_parallel(const TamProblem& problem,
                                    const ExactSolverOptions& options,
                                    int threads) {
  obs::Span span("tam.exact.parallel",
                 {{"buses", problem.num_buses()}, {"threads", threads}});
  const std::size_t b = problem.num_buses();
  Search proto(problem, options);
  proto.build_items();
  proto.build_bus_classes();
  proto.setup(b);

  const Cycles initial_best = initial_pruning_bound(problem, options);

  // Enumerate root prefixes breadth-first until there is enough independent
  // work to keep the pool busy.
  const std::size_t target = std::min<std::size_t>(
      4096, std::max<std::size_t>(static_cast<std::size_t>(threads) * 8, 16));
  std::vector<std::vector<int>> frontier(1);
  std::size_t depth = 0;
  long long enum_nodes = 0;
  while (depth < proto.items.size() && !frontier.empty() &&
         frontier.size() < target) {
    std::vector<std::vector<int>> next;
    for (const auto& prefix : frontier) {
      ++enum_nodes;
      proto.setup(b);
      proto.replay_prefix(prefix);
      if (proto.bound(depth) >= initial_best) continue;
      if (problem.wire_budget >= 0 &&
          proto.wire_used + proto.suffix_min_wire[depth] > problem.wire_budget) {
        continue;
      }
      const Item& item = proto.items[depth];
      for (std::size_t j : proto.makespan_candidates(depth)) {
        if (proto.load[j] + item.time[j] >= initial_best) continue;
        if (problem.wire_budget >= 0 &&
            proto.wire_used + item.wire[j] + proto.suffix_min_wire[depth + 1] >
                problem.wire_budget) {
          continue;
        }
        if (!proto.power_ok(j, item)) continue;
        std::vector<int> extended = prefix;
        extended.push_back(static_cast<int>(j));
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
    ++depth;
  }

  if (obs::enabled()) obs::counter("tam.exact.nodes").add(enum_nodes);
  if (span.active()) span.arg({"subtrees", frontier.size()});

  TamSolveResult result;
  if (frontier.empty()) {
    // Every branch is pruned by the initial bound / structural constraints:
    // proven infeasible (within the warm-start bound, matching the serial
    // solver's contract).
    result.feasible = false;
    result.proved_optimal = true;
    result.nodes = enum_nodes;
    return result;
  }

  SharedSearchState shared;
  shared.best.store(initial_best, std::memory_order_relaxed);
  {
    ThreadPool pool(static_cast<std::size_t>(threads));
    for (const auto& prefix : frontier) {
      pool.post([&problem, &options, &shared, prefix, b] {
        obs::Span subtree_span("tam.exact.subtree",
                               {{"prefix_depth", prefix.size()}});
        Search search(problem, options);
        search.build_items();
        search.build_bus_classes();
        search.setup(b);
        search.shared = &shared;
        search.replay_prefix(prefix);
        search.dfs(prefix.size());
        search.flush_metrics();
        if (subtree_span.active()) subtree_span.arg({"nodes", search.nodes});
      });
    }
    pool.wait_all();
  }

  const bool aborted = shared.aborted.load(std::memory_order_relaxed);
  const auto shared_stop = static_cast<StopReason>(
      shared.stop_reason.load(std::memory_order_relaxed));
  result.nodes = enum_nodes + shared.nodes.load(std::memory_order_relaxed);
  if (shared.best_item_bus.empty()) {
    // Either truly infeasible or the node budget / deadline / cancellation
    // expired before any leaf.
    result.feasible = false;
    result.proved_optimal = !aborted;
    result.stop = shared_stop;
    return result;
  }
  if (aborted) {
    // Best-effort incumbent; which subtree supplied it is timing-dependent,
    // exactly like an aborted serial search is cutoff-dependent.
    TamSolveResult partial = assemble_result(
        problem, proto.items, shared.best_item_bus, result.nodes, false);
    partial.stop = shared_stop;
    return partial;
  }

  // Deterministic witness pass (see function comment).
  obs::Span witness_span("tam.exact.witness");
  ExactSolverOptions witness_options = options;
  witness_options.max_nodes = -1;  // the proof already fit the budget
  witness_options.threads = 1;
  witness_options.cancel = nullptr;
  // The witness pass must run to completion for determinism; it is bounded
  // work (first incumbent at the proven optimum), so it ignores the deadline.
  witness_options.deadline = Deadline();
  Search witness(problem, witness_options);
  witness.build_items();
  witness.build_bus_classes();
  witness.setup(b);
  witness.best = shared.best_value + 1;
  witness.stop_on_first_incumbent = true;
  witness.dfs(0);
  witness.flush_metrics();
  if (witness_span.active()) witness_span.arg({"nodes", witness.nodes});
  result.nodes += witness.nodes;
  const std::vector<int>& item_bus = witness.best_item_bus.empty()
                                         ? shared.best_item_bus
                                         : witness.best_item_bus;
  return assemble_result(problem, proto.items, item_bus, result.nodes, true);
}

}  // namespace

TamSolveResult solve_exact_min_wire(const TamProblem& problem,
                                    Cycles makespan_cap,
                                    const ExactSolverOptions& options) {
  if (problem.wire_cost.empty()) {
    throw std::invalid_argument("solve_exact_min_wire needs wire costs");
  }
  obs::Span span("tam.exact.min_wire",
                 {{"buses", problem.num_buses()},
                  {"makespan_cap", static_cast<long long>(makespan_cap)}});
  TamSolveResult result;
  Search search(problem, options);
  search.build_items();
  search.build_bus_classes();
  search.setup(problem.num_buses());
  search.makespan_cap = makespan_cap;
  if (problem.bus_depth_limit >= 0) {
    search.makespan_cap = std::min(search.makespan_cap, problem.bus_depth_limit);
  }
  search.dfs_wire(0);
  search.flush_metrics();
  if (span.active()) {
    span.arg({"nodes", search.nodes});
    span.arg({"proved", !search.aborted});
  }

  result.nodes = search.nodes;
  if (search.best_item_bus.empty()) {
    result.feasible = false;
    result.proved_optimal = !search.aborted;
    result.stop = search.stop_reason;
    return result;
  }
  TamSolveResult found = assemble_result(problem, search.items,
                                         search.best_item_bus, search.nodes,
                                         !search.aborted);
  found.stop = search.stop_reason;
  return found;
}

TamSolveResult solve_exact_lex(const TamProblem& problem,
                               const ExactSolverOptions& options) {
  const TamSolveResult primary = solve_exact(problem, options);
  if (!primary.feasible || problem.wire_cost.empty()) return primary;
  TamSolveResult secondary =
      solve_exact_min_wire(problem, primary.assignment.makespan, options);
  if (!secondary.feasible) return primary;  // node cap hit before any leaf
  secondary.nodes += primary.nodes;
  secondary.proved_optimal =
      primary.proved_optimal && secondary.proved_optimal;
  if (secondary.stop == StopReason::kNone) secondary.stop = primary.stop;
  return secondary;
}

TamSolveResult solve_exact(const TamProblem& problem,
                           const ExactSolverOptions& options) {
  const int threads =
      options.threads == 1 ? 1 : resolve_thread_count(options.threads);
  if (threads > 1) return solve_exact_parallel(problem, options, threads);

  obs::Span span("tam.exact.solve", {{"buses", problem.num_buses()}});
  TamSolveResult result;
  Search search(problem, options);
  search.build_items();
  search.build_bus_classes();
  search.setup(problem.num_buses());
  search.best = initial_pruning_bound(problem, options);
  search.dfs(0);
  search.flush_metrics();
  if (span.active()) {
    span.arg({"items", search.items.size()});
    span.arg({"nodes", search.nodes});
    span.arg({"proved", !search.aborted});
  }

  result.nodes = search.nodes;
  if (search.best_item_bus.empty()) {
    // Either truly infeasible or the node budget expired before any leaf.
    result.feasible = false;
    result.proved_optimal = !search.aborted;
    result.stop = search.stop_reason;
    return result;
  }
  TamSolveResult found = assemble_result(problem, search.items,
                                         search.best_item_bus, search.nodes,
                                         !search.aborted);
  found.stop = search.stop_reason;
  return found;
}

}  // namespace soctest
