#include "tam/exact_solver.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"
#include "runtime/failpoint.hpp"
#include "tam/search_core.hpp"

namespace soctest {

const char* search_mode_name(SearchMode mode) {
  switch (mode) {
    case SearchMode::kSerial:
      return "serial";
    case SearchMode::kParallel:
      return "parallel";
    case SearchMode::kNone:
      break;
  }
  return "-";
}

namespace {

using exactcore::CoreTables;
using exactcore::kInfCycles;

/// Parallel crossover default: with threads > 1 the serial probe runs first,
/// capped at this many nodes; instances that finish inside the cap skip the
/// root-splitting machinery (whose setup + witness overhead used to make
/// speedup_mt < 1 on small table6 cells).
constexpr long long kDefaultSerialThreshold = 200'000;
/// Discrepancy budget of the incumbent probe (see Search::lds).
constexpr int kProbeDiscrepancies = 2;
/// Unbudgeted subtree searches batch their shared node-counter updates to
/// keep the hot path off a contended atomic.
constexpr long long kSharedNodeBatch = 64;

/// State shared by the subtree searches of one parallel solve: the incumbent
/// makespan (read every node for pruning — a bound found in one subtree
/// prunes all others), the global node budget, and the abort flag.
struct SharedSearchState {
  std::atomic<Cycles> best{kInfCycles};
  std::atomic<long long> nodes{0};
  std::atomic<bool> aborted{false};
  /// StopReason of the first subtree that aborted (int-encoded).
  std::atomic<int> stop_reason{0};
  std::mutex mu;
  Cycles best_value = kInfCycles;  // guarded by mu
  std::vector<int> best_item_bus;  // guarded by mu
};

/// One search over the shared SoA tables. All per-node state is flat and
/// incrementally maintained (loads, running max, total, the
/// Lagrangian-weighted load, wire, power), candidate buses come from a
/// branch-free bitset kernel into preallocated per-depth scratch, and undo
/// is O(1) via per-depth frames — the node path performs no heap allocation
/// and no rescan of the partial assignment.
struct Search {
  const TamProblem& problem;
  const ExactSolverOptions& options;
  const CoreTables& t;

  std::vector<Cycles> load;
  std::vector<double> bus_max_power;
  std::vector<int> item_bus;
  std::uint64_t empty_mask = 0;  // masked mode: bit j = bus j still empty
  Cycles max_load = 0;
  Cycles total_load = 0;
  double lambda_load = 0.0;  // sum_j lambda_j * load_j
  long long wire_used = 0;
  double power_sum = 0.0;

  /// Per-depth candidate scratch: num_items slices of num_buses
  /// (resulting-key, bus) pairs, insertion-sorted in place.
  std::vector<std::pair<long long, int>> cand;
  struct Frame {
    Cycles prev_max;
    double prev_lambda;
    double prev_bus_power;
    double prev_power_sum;
  };
  std::vector<Frame> frames;             // per depth
  std::vector<char> class_seen;          // unmasked fallback scratch

  long long nodes = 0;
  long long node_cap = -1;  ///< local budget (options.max_nodes by default)
  bool aborted = false;
  // Per-search observability tallies (plain increments on the node path,
  // batched into the obs counters by finish()).
  long long leaves = 0;
  long long pruned_bound = 0;
  long long pruned_lagrangian = 0;
  long long incumbents = 0;

  // Parallel / cooperative-cancellation hooks. When `shared` is set this
  // Search explores one root subtree: incumbent reads/updates and the node
  // budget go through the shared state instead of the local fields.
  SharedSearchState* shared = nullptr;
  long long shared_pending = 0;
  // Composes the options' deadline, cancellation token, and the
  // tam.exact.node failpoint into one sticky per-node poll.
  StopCheck stop_check;
  StopReason stop_reason = StopReason::kNone;
  // Witness mode: unwind as soon as one incumbent is recorded (used to
  // re-derive the deterministic optimal assignment after the proof phase).
  bool stop_on_first_incumbent = false;
  bool stop_now = false;
  // True while the LDS probe is running; record_leaf() uses it to remember
  // where the final incumbent came from. When the exhaustive DFS made the
  // last strict improvement, its leaf is already the canonical witness (the
  // DFS visits leaves in canonical order), so the witness pass is skipped.
  bool in_probe = false;
  bool best_from_probe = false;

  Cycles best = kInfCycles;
  std::vector<int> best_item_bus;

  Search(const TamProblem& p, const ExactSolverOptions& o, const CoreTables& c)
      : problem(p),
        options(o),
        t(c),
        node_cap(o.max_nodes),
        stop_check(o.deadline, o.cancel, failpoint::sites::kExactNode) {}

  /// Incumbent used for pruning: the racing shared bound in parallel mode.
  Cycles current_best() const {
    return shared ? shared->best.load(std::memory_order_relaxed) : best;
  }

  /// Records why this search is unwinding; in parallel mode the first
  /// aborter's reason wins globally.
  void abort_with(StopReason reason) {
    aborted = true;
    if (stop_reason == StopReason::kNone) stop_reason = reason;
    if (shared) {
      int expected = 0;
      shared->stop_reason.compare_exchange_strong(
          expected, static_cast<int>(reason), std::memory_order_relaxed);
      shared->aborted.store(true, std::memory_order_relaxed);
    }
  }

  /// Per-node bookkeeping: node counting, the node budget (global in
  /// parallel mode, batched when unbudgeted), and the
  /// deadline/cancellation/failpoint stop check. Returns false when the
  /// search must unwind.
  bool enter_node() {
    ++nodes;
    if (shared) {
      if (shared->aborted.load(std::memory_order_relaxed)) {
        aborted = true;
        if (stop_reason == StopReason::kNone) {
          stop_reason = static_cast<StopReason>(
              shared->stop_reason.load(std::memory_order_relaxed));
        }
        return false;
      }
      ++shared_pending;
      if (node_cap >= 0 || shared_pending >= kSharedNodeBatch) {
        const long long total =
            shared->nodes.fetch_add(shared_pending,
                                    std::memory_order_relaxed) +
            shared_pending;
        shared_pending = 0;
        if (node_cap >= 0 && total > node_cap) {
          abort_with(StopReason::kNodeBudget);
          return false;
        }
      }
    } else if (node_cap >= 0 && nodes > node_cap) {
      abort_with(StopReason::kNodeBudget);
      return false;
    }
    if (stop_check.should_stop()) {
      abort_with(stop_check.reason());
      return false;
    }
    return true;
  }

  void setup() {
    load.assign(t.num_buses, 0);
    bus_max_power.assign(t.num_buses, 0.0);
    item_bus.assign(t.num_items, -1);
    cand.resize(t.num_items * t.num_buses);
    frames.resize(t.num_items);
    if (!t.masked) {
      class_seen.resize(t.num_items *
                        static_cast<std::size_t>(t.num_classes));
    }
    empty_mask = !t.masked ? 0
                 : t.num_buses == 64
                     ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << t.num_buses) - 1;
    max_load = 0;
    total_load = 0;
    lambda_load = 0.0;
    wire_used = 0;
    power_sum = 0.0;
  }

  double power_delta(std::size_t j, std::size_t k) const {
    return std::max(bus_max_power[j], t.max_power[k]) - bus_max_power[j];
  }

  bool power_ok(std::size_t j, std::size_t k) const {
    return !t.has_power ||
           power_sum + power_delta(j, k) <= problem.bus_power_budget + 1e-9;
  }

  void apply(std::size_t k, std::size_t j) {
    Frame& f = frames[k];
    f.prev_max = max_load;
    f.prev_lambda = lambda_load;
    if (t.has_power) {
      f.prev_power_sum = power_sum;
      f.prev_bus_power = bus_max_power[j];
      power_sum += power_delta(j, k);
      bus_max_power[j] = std::max(bus_max_power[j], t.max_power[k]);
    }
    const Cycles cycles = t.time_at(k, j);
    if (t.masked && load[j] == 0) empty_mask &= ~(std::uint64_t{1} << j);
    load[j] += cycles;
    max_load = std::max(max_load, load[j]);
    total_load += cycles;
    lambda_load += t.lambda_time[k * t.num_buses + j];
    wire_used += t.wire_at(k, j);
    item_bus[k] = static_cast<int>(j);
  }

  void undo(std::size_t k, std::size_t j) {
    const Frame& f = frames[k];
    item_bus[k] = -1;
    wire_used -= t.wire_at(k, j);
    lambda_load = f.prev_lambda;  // restore by value: no FP drift
    const Cycles cycles = t.time_at(k, j);
    total_load -= cycles;
    max_load = f.prev_max;
    load[j] -= cycles;
    if (t.masked && load[j] == 0) empty_mask |= std::uint64_t{1} << j;
    if (t.has_power) {
      bus_max_power[j] = f.prev_bus_power;
      power_sum = f.prev_power_sum;
    }
  }

  void replay_prefix(const std::vector<int>& prefix) {
    for (std::size_t k = 0; k < prefix.size(); ++k) {
      apply(k, static_cast<std::size_t>(prefix[k]));
    }
  }

  /// The bound hierarchy at depth k, cheapest tier first, all O(1) off the
  /// incrementally maintained aggregates:
  ///   1. current max bus load,
  ///   2. remaining-work spread ceil((total + suffix_min) / B),
  ///   3. largest remaining single item,
  ///   4. the Lagrangian relaxation sum_j lambda_j load_j + lambda_suffix[k].
  /// Returns true when the node is pruned (bound tally updated) or the wire
  /// budget is already unreachable.
  bool prune_node(std::size_t k) {
    if (options.bound_mode != BoundMode::kNone) {
      const Cycles cur = current_best();
      Cycles classic = max_load;
      Cycles lag = 0;
      if (options.bound_mode == BoundMode::kFull) {
        const auto b = static_cast<Cycles>(t.num_buses);
        const Cycles spread = (total_load + t.suffix_min_time[k] + b - 1) / b;
        const Cycles item_min =
            t.min_time[k] == kInfCycles ? 0 : t.min_time[k];
        classic = std::max({classic, spread, item_min});
        lag = exactcore::lagrangian_ceil(lambda_load + t.lambda_suffix[k]);
      }
      if (std::max(classic, lag) >= cur) {
        ++pruned_bound;
        if (classic < cur) ++pruned_lagrangian;  // the new tier was binding
        return true;
      }
    }
    if (problem.wire_budget >= 0 &&
        wire_used + t.suffix_min_wire[k] > problem.wire_budget) {
      return true;
    }
    return false;
  }

  /// Fills this depth's candidate slice with (resulting load, bus) pairs —
  /// allowed buses, at most one empty bus per symmetry class — and
  /// insertion-sorts it ascending. The (load, bus-index) order is the
  /// canonical branching order every phase shares; it is a pure function of
  /// the partial assignment, which is what makes the witness pass
  /// thread-count invariant.
  std::size_t build_candidates(std::size_t k) {
    auto* slice = cand.data() + k * t.num_buses;
    const Cycles* row = t.time.data() + k * t.num_buses;
    std::size_t m = 0;
    if (t.masked) {
      std::uint64_t mask = exactcore::candidate_mask(t, t.allowed[k], empty_mask);
      while (mask != 0) {
        const int j = std::countr_zero(mask);
        mask &= mask - 1;
        slice[m++] = {load[static_cast<std::size_t>(j)] + row[j], j};
      }
    } else {
      char* seen =
          class_seen.data() + k * static_cast<std::size_t>(t.num_classes);
      std::fill_n(seen, t.num_classes, char{0});
      for (std::size_t j = 0; j < t.num_buses; ++j) {
        if (row[j] == kInfCycles) continue;
        if (load[j] == 0) {
          const auto cls = static_cast<std::size_t>(t.bus_class[j]);
          if (seen[cls]) continue;
          seen[cls] = 1;
        }
        slice[m++] = {load[j] + row[j], static_cast<int>(j)};
      }
    }
    for (std::size_t i = 1; i < m; ++i) {
      const auto key = slice[i];
      std::size_t p = i;
      while (p > 0 && key < slice[p - 1]) {
        slice[p] = slice[p - 1];
        --p;
      }
      slice[p] = key;
    }
    return m;
  }

  void record_leaf(Cycles value) {
    if (shared) {
      Cycles cur = shared->best.load(std::memory_order_relaxed);
      bool improved = false;
      while (value < cur) {
        if (shared->best.compare_exchange_weak(cur, value,
                                               std::memory_order_relaxed)) {
          improved = true;
          break;
        }
      }
      if (improved) {
        std::lock_guard<std::mutex> lock(shared->mu);
        if (value < shared->best_value) {
          shared->best_value = value;
          shared->best_item_bus = item_bus;
        }
        note_incumbent(value);
      }
    } else if (value < best) {
      best = value;
      best_item_bus = item_bus;
      best_from_probe = in_probe;
      if (stop_on_first_incumbent) stop_now = true;
      note_incumbent(value);
    }
  }

  /// Incumbent improvements are rare, so they may emit trace events from
  /// the node path (everything else batches). `value` is the objective —
  /// makespan cycles in dfs(), total wirelength in dfs_wire().
  void note_incumbent(Cycles value) {
    ++incumbents;
    if (obs::enabled()) {
      obs::instant("tam.exact.incumbent",
                   {{"value", static_cast<long long>(value)}, {"node", nodes}});
    }
  }

  /// Flushes the batched shared node count and the search's tallies into
  /// the global counters; call once when a dfs/lds/dfs_wire run finishes
  /// (per subtree task in parallel mode).
  void finish() {
    if (shared && shared_pending > 0) {
      shared->nodes.fetch_add(shared_pending, std::memory_order_relaxed);
      shared_pending = 0;
    }
    if (!obs::enabled()) return;
    obs::counter("tam.exact.nodes").add(nodes);
    obs::counter("tam.exact.leaves").add(leaves);
    obs::counter("tam.exact.pruned_bound").add(pruned_bound);
    obs::counter("tam.exact.pruned_lagrangian").add(pruned_lagrangian);
    obs::counter("tam.exact.incumbents").add(incumbents);
    nodes = leaves = pruned_bound = pruned_lagrangian = incumbents = 0;
  }

  void dfs(std::size_t k) {
    if (aborted || stop_now) return;
    if (!enter_node()) return;
    if (k == t.num_items) {
      ++leaves;
      record_leaf(max_load);
      return;
    }
    if (prune_node(k)) return;
    const std::size_t m = build_candidates(k);
    const auto* slice = cand.data() + k * t.num_buses;
    for (std::size_t idx = 0; idx < m; ++idx) {
      // Sorted ascending: once one resulting load reaches the incumbent,
      // every later candidate does too.
      if (slice[idx].first >= current_best()) break;
      const auto j = static_cast<std::size_t>(slice[idx].second);
      if (problem.wire_budget >= 0 &&
          wire_used + t.wire_at(k, j) + t.suffix_min_wire[k + 1] >
              problem.wire_budget) {
        continue;
      }
      if (!power_ok(j, k)) continue;
      apply(k, j);
      dfs(k + 1);
      undo(k, j);
      if (aborted || stop_now) return;
    }
  }

  /// Limited-discrepancy probe: explores only branchings that deviate from
  /// the greedy (lowest-resulting-load) candidate at most `budget` ranks in
  /// total, reaching near-greedy leaves — and hence a strong incumbent —
  /// within O(n^2) nodes before the exhaustive proof starts. Shares every
  /// pruning rule with dfs(), so probe + proof never revisit work the other
  /// already cut.
  void lds(std::size_t k, int budget) {
    if (aborted || stop_now) return;
    if (!enter_node()) return;
    if (k == t.num_items) {
      ++leaves;
      record_leaf(max_load);
      return;
    }
    if (prune_node(k)) return;
    const std::size_t m = build_candidates(k);
    const auto* slice = cand.data() + k * t.num_buses;
    for (std::size_t idx = 0; idx < m; ++idx) {
      if (static_cast<int>(idx) > budget) break;  // discrepancy cost = rank
      if (slice[idx].first >= current_best()) break;
      const auto j = static_cast<std::size_t>(slice[idx].second);
      if (problem.wire_budget >= 0 &&
          wire_used + t.wire_at(k, j) + t.suffix_min_wire[k + 1] >
              problem.wire_budget) {
        continue;
      }
      if (!power_ok(j, k)) continue;
      apply(k, j);
      lds(k + 1, budget - static_cast<int>(idx));
      undo(k, j);
      if (aborted || stop_now) return;
    }
  }

  // Secondary-objective search: minimize total wire cost subject to
  // makespan <= makespan_cap (used by solve_exact_min_wire / lex).
  Cycles makespan_cap = kInfCycles;
  long long best_wire = std::numeric_limits<long long>::max();

  void dfs_wire(std::size_t k) {
    if (aborted) return;
    if (!enter_node()) return;
    if (k == t.num_items) {
      ++leaves;
      if (wire_used < best_wire) {
        best_wire = wire_used;
        best_item_bus = item_bus;
        note_incumbent(static_cast<Cycles>(best_wire));
      }
      return;
    }
    if (wire_used + t.suffix_min_wire[k] >= best_wire) {
      ++pruned_bound;
      return;
    }
    if (problem.wire_budget >= 0 &&
        wire_used + t.suffix_min_wire[k] > problem.wire_budget) {
      return;
    }
    // Candidates keyed by wire cost (cheapest first: reach low-cost
    // incumbents early), capped by the makespan bound.
    auto* slice = cand.data() + k * t.num_buses;
    const Cycles* row = t.time.data() + k * t.num_buses;
    const long long* wire_row = t.wire.data() + k * t.num_buses;
    std::size_t m = 0;
    if (t.masked) {
      std::uint64_t mask = exactcore::candidate_mask(t, t.allowed[k], empty_mask);
      while (mask != 0) {
        const int j = std::countr_zero(mask);
        mask &= mask - 1;
        if (load[static_cast<std::size_t>(j)] + row[j] > makespan_cap) continue;
        slice[m++] = {wire_row[j], j};
      }
    } else {
      char* seen =
          class_seen.data() + k * static_cast<std::size_t>(t.num_classes);
      std::fill_n(seen, t.num_classes, char{0});
      for (std::size_t j = 0; j < t.num_buses; ++j) {
        if (row[j] == kInfCycles) continue;
        if (load[j] + row[j] > makespan_cap) continue;
        if (load[j] == 0) {
          const auto cls = static_cast<std::size_t>(t.bus_class[j]);
          if (seen[cls]) continue;
          seen[cls] = 1;
        }
        slice[m++] = {wire_row[j], static_cast<int>(j)};
      }
    }
    for (std::size_t i = 1; i < m; ++i) {
      const auto key = slice[i];
      std::size_t p = i;
      while (p > 0 && key < slice[p - 1]) {
        slice[p] = slice[p - 1];
        --p;
      }
      slice[p] = key;
    }
    for (std::size_t idx = 0; idx < m; ++idx) {
      const auto j = static_cast<std::size_t>(slice[idx].second);
      if (wire_used + wire_row[j] + t.suffix_min_wire[k + 1] >= best_wire) {
        continue;
      }
      if (problem.wire_budget >= 0 &&
          wire_used + wire_row[j] + t.suffix_min_wire[k + 1] >
              problem.wire_budget) {
        continue;
      }
      if (!power_ok(j, k)) continue;
      apply(k, j);
      dfs_wire(k + 1);
      undo(k, j);
      if (aborted) return;
    }
  }
};

/// Exclusive pruning threshold implied by the options and the problem's ATE
/// depth limit (the depth limit caps every bus load, hence the makespan).
Cycles initial_pruning_bound(const TamProblem& problem,
                             const ExactSolverOptions& options) {
  Cycles best = kInfCycles;
  if (options.initial_upper_bound >= 0) {
    // Warm start: anything >= this bound is pruned; +1 keeps equal-cost
    // solutions reachable so a feasible assignment is still produced.
    best = options.initial_upper_bound + 1;
  }
  if (problem.bus_depth_limit >= 0) {
    best = std::min(best, problem.bus_depth_limit + 1);
  }
  return best;
}

TamSolveResult assemble_result(const TamProblem& problem, const CoreTables& t,
                               const std::vector<int>& item_bus,
                               long long nodes, bool proved_optimal) {
  TamSolveResult result;
  result.nodes = nodes;
  result.feasible = true;
  result.proved_optimal = proved_optimal;
  result.assignment.core_to_bus.assign(problem.num_cores(), -1);
  for (std::size_t k = 0; k < t.num_items; ++k) {
    for (std::size_t core : t.item_cores[k]) {
      result.assignment.core_to_bus[core] = item_bus[k];
    }
  }
  result.assignment.makespan = problem.makespan(result.assignment.core_to_bus);
  return result;
}

/// Outcome of one serial probe-then-proof run.
struct SerialRun {
  Cycles best = kInfCycles;  ///< best found value, or the initial bound
  std::vector<int> item_bus;
  long long nodes = 0;
  bool completed = false;  ///< exhausted the tree (proof of optimality)
  /// True when item_bus is already the canonical witness (the exhaustive
  /// DFS, not the probe, recorded the final incumbent).
  bool canonical = false;
  StopReason stop = StopReason::kNone;
};

/// The serial search: a limited-discrepancy probe dives to a near-greedy
/// incumbent first (strong pruning bound from node ~n), then the exhaustive
/// DFS proves optimality. `node_cap` bounds the two phases together (< 0 =
/// options.max_nodes).
SerialRun run_serial(const TamProblem& problem,
                     const ExactSolverOptions& options, const CoreTables& t,
                     long long node_cap) {
  Search search(problem, options, t);
  if (node_cap >= 0) search.node_cap = node_cap;
  search.setup();
  search.best = initial_pruning_bound(problem, options);
  search.in_probe = true;
  search.lds(0, kProbeDiscrepancies);
  search.in_probe = false;
  if (!search.aborted) search.dfs(0);
  SerialRun run;
  run.best = search.best;
  run.item_bus = std::move(search.best_item_bus);
  run.nodes = search.nodes;
  run.completed = !search.aborted;
  run.canonical = !search.best_from_probe;
  run.stop = search.stop_reason;
  search.finish();
  return run;
}

/// Deterministic witness pass: re-derives the optimal assignment as the
/// first leaf reaching the proven value T* in the canonical branching
/// order, by searching with the exclusive cap T* + 1 and stopping at the
/// first incumbent. Any admissible bound prunes nothing on that leaf's
/// path, so the witness is independent of bound strength, probe order, and
/// thread count — and provably equal to what the historical plain serial
/// DFS returned. Bounded work, so it ignores node budget and deadline.
std::vector<int> derive_witness(const TamProblem& problem,
                                const ExactSolverOptions& options,
                                const CoreTables& t, Cycles proven_best,
                                long long* nodes_out) {
  obs::Span witness_span("tam.exact.witness");
  ExactSolverOptions witness_options = options;
  witness_options.max_nodes = -1;
  witness_options.threads = 1;
  witness_options.cancel = nullptr;
  witness_options.deadline = Deadline();
  Search witness(problem, witness_options, t);
  witness.setup();
  witness.best = proven_best + 1;
  witness.stop_on_first_incumbent = true;
  witness.dfs(0);
  witness.finish();
  if (witness_span.active()) witness_span.arg({"nodes", witness.nodes});
  *nodes_out += witness.nodes;
  return std::move(witness.best_item_bus);
}

/// Turns a finished serial run into a TamSolveResult, deriving the witness
/// assignment when the run proved optimality.
TamSolveResult finish_serial(const TamProblem& problem,
                             const ExactSolverOptions& options,
                             const CoreTables& t, SerialRun run) {
  TamSolveResult result;
  result.nodes = run.nodes;
  result.search_mode = SearchMode::kSerial;
  if (run.item_bus.empty()) {
    // Either truly infeasible or the node budget expired before any leaf.
    result.feasible = false;
    result.proved_optimal = run.completed;
    result.stop = run.stop;
    return result;
  }
  if (!run.completed) {
    // Best-effort incumbent from an aborted search.
    TamSolveResult partial =
        assemble_result(problem, t, run.item_bus, run.nodes, false);
    partial.stop = run.stop;
    partial.search_mode = SearchMode::kSerial;
    return partial;
  }
  std::vector<int> item_bus;
  if (run.canonical) {
    item_bus = std::move(run.item_bus);
  } else {
    item_bus = derive_witness(problem, options, t, run.best, &result.nodes);
    if (item_bus.empty()) item_bus = std::move(run.item_bus);
  }
  TamSolveResult found =
      assemble_result(problem, t, item_bus, result.nodes, true);
  found.search_mode = SearchMode::kSerial;
  return found;
}

/// Root-splitting parallel branch-and-bound. The first few levels of the
/// assignment tree are enumerated into independent subtree prefixes, which a
/// thread pool searches with a shared atomic incumbent (a bound found in one
/// subtree prunes all others). Exactness: the prefix enumeration prunes only
/// against the *initial* bound (tightened by the crossover probe's incumbent,
/// itself a valid upper bound), so every assignment better than that bound
/// lives in exactly one subtree. Determinism: after the parallel phase
/// proves the optimal makespan T*, the witness assignment is re-derived by a
/// serial search capped at T*+1 stopping at its first incumbent — which is
/// provably the same leaf the plain serial solver returns (optimal leaves
/// survive every incumbent-pruning schedule, and the canonical branching
/// order is fixed).
TamSolveResult solve_exact_parallel(const TamProblem& problem,
                                    const ExactSolverOptions& options,
                                    const CoreTables& tables, int threads,
                                    const SerialRun* probe) {
  obs::Span span("tam.exact.parallel",
                 {{"buses", problem.num_buses()}, {"threads", threads}});
  Search proto(problem, options, tables);
  proto.setup();

  Cycles initial_best = initial_pruning_bound(problem, options);
  long long probe_nodes = 0;
  const bool probe_found = probe != nullptr && !probe->item_bus.empty();
  if (probe != nullptr) {
    probe_nodes = probe->nodes;
    if (probe_found) initial_best = std::min(initial_best, probe->best + 1);
  }
  long long remaining_budget = options.max_nodes;
  if (remaining_budget >= 0) {
    remaining_budget = std::max<long long>(0, remaining_budget - probe_nodes);
  }

  // Enumerate root prefixes breadth-first until there is enough independent
  // work to keep the pool busy.
  const std::size_t target = std::min<std::size_t>(
      4096, std::max<std::size_t>(static_cast<std::size_t>(threads) * 8, 16));
  std::vector<std::vector<int>> frontier(1);
  std::size_t depth = 0;
  long long enum_nodes = 0;
  while (depth < tables.num_items && !frontier.empty() &&
         frontier.size() < target) {
    std::vector<std::vector<int>> next;
    for (const auto& prefix : frontier) {
      ++enum_nodes;
      proto.setup();
      proto.best = initial_best;
      proto.replay_prefix(prefix);
      if (proto.prune_node(depth)) continue;
      const std::size_t m = proto.build_candidates(depth);
      const auto* slice = proto.cand.data() + depth * tables.num_buses;
      for (std::size_t idx = 0; idx < m; ++idx) {
        if (slice[idx].first >= initial_best) break;
        const auto j = static_cast<std::size_t>(slice[idx].second);
        if (problem.wire_budget >= 0 &&
            proto.wire_used + tables.wire_at(depth, j) +
                    tables.suffix_min_wire[depth + 1] >
                problem.wire_budget) {
          continue;
        }
        if (!proto.power_ok(j, depth)) continue;
        std::vector<int> extended = prefix;
        extended.push_back(static_cast<int>(j));
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
    ++depth;
  }

  if (obs::enabled()) obs::counter("tam.exact.nodes").add(enum_nodes);
  if (span.active()) span.arg({"subtrees", frontier.size()});

  TamSolveResult result;
  result.search_mode = SearchMode::kParallel;
  if (frontier.empty()) {
    // Every branch is pruned by the initial bound / structural constraints:
    // proven infeasible (within the warm-start bound, matching the serial
    // solver's contract). Unreachable when the probe holds an incumbent.
    result.feasible = false;
    result.proved_optimal = true;
    result.nodes = probe_nodes + enum_nodes;
    return result;
  }

  SharedSearchState shared;
  shared.best.store(initial_best, std::memory_order_relaxed);
  if (probe_found) {
    // Seed the probe's incumbent as the fallback assignment: equal-value
    // parallel leaves won't displace it, and an aborted parallel phase
    // still returns it.
    shared.best_value = probe->best;
    shared.best_item_bus = probe->item_bus;
  }
  {
    ThreadPool pool(static_cast<std::size_t>(threads));
    for (const auto& prefix : frontier) {
      pool.post([&problem, &options, &tables, &shared, prefix,
                 remaining_budget] {
        obs::Span subtree_span("tam.exact.subtree",
                               {{"prefix_depth", prefix.size()}});
        Search search(problem, options, tables);
        search.node_cap = remaining_budget;
        search.setup();
        search.shared = &shared;
        search.replay_prefix(prefix);
        search.dfs(prefix.size());
        const long long subtree_nodes = search.nodes;
        search.finish();
        if (subtree_span.active()) subtree_span.arg({"nodes", subtree_nodes});
      });
    }
    pool.wait_all();
  }

  const bool aborted = shared.aborted.load(std::memory_order_relaxed);
  const auto shared_stop = static_cast<StopReason>(
      shared.stop_reason.load(std::memory_order_relaxed));
  result.nodes = probe_nodes + enum_nodes +
                 shared.nodes.load(std::memory_order_relaxed);
  if (shared.best_item_bus.empty()) {
    // Either truly infeasible or the node budget / deadline / cancellation
    // expired before any leaf.
    result.feasible = false;
    result.proved_optimal = !aborted;
    result.stop = shared_stop;
    return result;
  }
  if (aborted) {
    // Best-effort incumbent; which subtree supplied it is timing-dependent,
    // exactly like an aborted serial search is cutoff-dependent.
    TamSolveResult partial = assemble_result(
        problem, tables, shared.best_item_bus, result.nodes, false);
    partial.stop = shared_stop;
    partial.search_mode = SearchMode::kParallel;
    return partial;
  }

  std::vector<int> item_bus = derive_witness(problem, options, tables,
                                             shared.best_value, &result.nodes);
  if (item_bus.empty()) item_bus = shared.best_item_bus;
  TamSolveResult found =
      assemble_result(problem, tables, item_bus, result.nodes, true);
  found.search_mode = SearchMode::kParallel;
  return found;
}

}  // namespace

TamSolveResult solve_exact_min_wire(const TamProblem& problem,
                                    Cycles makespan_cap,
                                    const ExactSolverOptions& options) {
  if (problem.wire_cost.empty()) {
    throw std::invalid_argument("solve_exact_min_wire needs wire costs");
  }
  obs::Span span("tam.exact.min_wire",
                 {{"buses", problem.num_buses()},
                  {"makespan_cap", static_cast<long long>(makespan_cap)}});
  const CoreTables tables = exactcore::build_core_tables(problem);
  TamSolveResult result;
  Search search(problem, options, tables);
  search.setup();
  search.makespan_cap = makespan_cap;
  if (problem.bus_depth_limit >= 0) {
    search.makespan_cap = std::min(search.makespan_cap, problem.bus_depth_limit);
  }
  search.dfs_wire(0);
  const long long nodes = search.nodes;
  const bool aborted = search.aborted;
  search.finish();
  if (span.active()) {
    span.arg({"nodes", nodes});
    span.arg({"proved", !aborted});
  }

  result.nodes = nodes;
  result.search_mode = SearchMode::kSerial;
  if (search.best_item_bus.empty()) {
    result.feasible = false;
    result.proved_optimal = !aborted;
    result.stop = search.stop_reason;
    return result;
  }
  TamSolveResult found = assemble_result(problem, tables,
                                         search.best_item_bus, nodes, !aborted);
  found.stop = search.stop_reason;
  found.search_mode = SearchMode::kSerial;
  return found;
}

TamSolveResult solve_exact_lex(const TamProblem& problem,
                               const ExactSolverOptions& options) {
  const TamSolveResult primary = solve_exact(problem, options);
  if (!primary.feasible || problem.wire_cost.empty()) return primary;
  TamSolveResult secondary =
      solve_exact_min_wire(problem, primary.assignment.makespan, options);
  if (!secondary.feasible) return primary;  // node cap hit before any leaf
  secondary.nodes += primary.nodes;
  secondary.proved_optimal =
      primary.proved_optimal && secondary.proved_optimal;
  if (secondary.stop == StopReason::kNone) secondary.stop = primary.stop;
  secondary.search_mode = primary.search_mode;
  return secondary;
}

TamSolveResult solve_exact(const TamProblem& problem,
                           const ExactSolverOptions& options) {
  const int threads =
      options.threads == 1 ? 1 : resolve_thread_count(options.threads);
  obs::Span span("tam.exact.solve",
                 {{"buses", problem.num_buses()}, {"threads", threads}});
  const CoreTables tables = exactcore::build_core_tables(problem);

  TamSolveResult result;
  if (threads <= 1) {
    result = finish_serial(problem, options, tables,
                           run_serial(problem, options, tables, -1));
  } else {
    // Parallel crossover: probe serially under a node cap; small instances
    // finish there and skip the root-splitting machinery entirely.
    const long long threshold = options.serial_threshold_nodes >= 0
                                    ? options.serial_threshold_nodes
                                    : kDefaultSerialThreshold;
    long long cap = threshold;
    if (options.max_nodes >= 0 && options.max_nodes < cap) {
      cap = options.max_nodes;
    }
    SerialRun probe;
    bool go_parallel = true;
    if (cap > 0) {
      probe = run_serial(problem, options, tables, cap);
      if (probe.completed) {
        // The whole search fit under the serial threshold.
        result = finish_serial(problem, options, tables, std::move(probe));
        go_parallel = false;
      } else if (probe.stop != StopReason::kNodeBudget) {
        // Deadline / cancellation / failpoint fired during the probe: a
        // parallel restart would hit the same wall; return the incumbent.
        result = finish_serial(problem, options, tables, std::move(probe));
        go_parallel = false;
      } else if (options.max_nodes >= 0 && probe.nodes >= options.max_nodes) {
        // The global node budget (not just the crossover cap) is spent.
        result = finish_serial(problem, options, tables, std::move(probe));
        go_parallel = false;
      }
    }
    if (go_parallel) {
      result = solve_exact_parallel(problem, options, tables, threads,
                                    cap > 0 ? &probe : nullptr);
    }
  }
  if (span.active()) {
    span.arg({"items", tables.num_items});
    span.arg({"nodes", result.nodes});
    span.arg({"proved", result.proved_optimal});
    span.arg({"mode", search_mode_name(result.search_mode)});
  }
  return result;
}

}  // namespace soctest
