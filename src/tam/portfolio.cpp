#include "tam/portfolio.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace soctest {

PortfolioResult solve_portfolio(const TamProblem& problem,
                                const PortfolioOptions& options) {
  PortfolioResult out;

  // Stage 1: greedy-LPT is orders of magnitude cheaper than either racer, so
  // it runs synchronously and its incumbent warm-starts the exact search.
  const TamSolveResult greedy = solve_greedy_lpt(problem);
  Cycles upper_bound = options.initial_upper_bound;
  if (greedy.feasible) {
    out.heuristic_bound = greedy.assignment.makespan;
    upper_bound = upper_bound < 0
                      ? greedy.assignment.makespan
                      : std::min(upper_bound, greedy.assignment.makespan);
  }

  // Stage 2: race the exact branch-and-bound against simulated annealing.
  ExactSolverOptions exact_options;
  exact_options.max_nodes = options.max_nodes;
  exact_options.initial_upper_bound = upper_bound;
  exact_options.bound_mode = options.bound_mode;
  exact_options.threads = options.exact_threads;

  SaSolverOptions sa_options = options.sa;
  CancellationToken cancel_sa;
  sa_options.cancel = &cancel_sa;

  TamSolveResult exact;
  TamSolveResult sa;
  {
    const int threads = std::max(2, resolve_thread_count(options.threads));
    ThreadPool pool(static_cast<std::size_t>(threads));
    auto exact_future =
        pool.submit([&] { return solve_exact(problem, exact_options); });
    auto sa_future = pool.submit([&] { return solve_sa(problem, sa_options); });
    exact = exact_future.get();
    if (exact.proved_optimal) {
      // The exact racer won outright: the SA incumbent can no longer matter.
      cancel_sa.cancel();
      out.sa_cancelled = true;
    }
    sa = sa_future.get();
  }
  out.exact_nodes = exact.nodes;
  out.sa_moves = sa.nodes;

  // Stage 3: deterministic selection. A completed exact solve dominates —
  // its warm start was an upper bound on the optimum, so "infeasible with
  // proof" really means no assignment beats the heuristics either.
  if (exact.proved_optimal && exact.feasible) {
    out.best = exact;
    out.winner = "exact";
    return out;
  }
  if (exact.proved_optimal && !greedy.feasible && !sa.feasible) {
    out.best = exact;  // proven infeasible
    out.winner = "exact";
    return out;
  }
  // Aborted/cancelled exact: keep the best feasible incumbent, preferring
  // exact, then greedy, then SA on ties (a fixed order keeps the choice
  // deterministic for equal makespans).
  out.best = exact;
  out.winner = "exact";
  auto consider = [&](const TamSolveResult& candidate, const char* name) {
    if (!candidate.feasible) return;
    if (!out.best.feasible ||
        candidate.assignment.makespan < out.best.assignment.makespan) {
      const long long nodes = out.best.nodes;
      out.best = candidate;
      out.best.nodes = nodes;  // keep the aggregate search-effort figure
      out.winner = name;
    }
  };
  consider(greedy, "greedy");
  consider(sa, "sa");
  out.best.proved_optimal = false;
  return out;
}

}  // namespace soctest
