#include "tam/portfolio.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace soctest {

PortfolioResult solve_portfolio(const TamProblem& problem,
                                const PortfolioOptions& options) {
  obs::Span race_span("tam.portfolio.race", {{"cores", problem.num_cores()},
                                             {"buses", problem.num_buses()}});
  PortfolioResult out;

  // Stage 1: greedy-LPT is orders of magnitude cheaper than either racer, so
  // it runs synchronously and its incumbent warm-starts the exact search.
  TamSolveResult greedy;
  {
    obs::Span greedy_span("tam.portfolio.greedy");
    greedy = solve_greedy_lpt(problem);
    if (greedy_span.active() && greedy.feasible) {
      greedy_span.arg(
          {"makespan", static_cast<long long>(greedy.assignment.makespan)});
    }
  }
  Cycles upper_bound = options.initial_upper_bound;
  if (greedy.feasible) {
    out.heuristic_bound = greedy.assignment.makespan;
    upper_bound = upper_bound < 0
                      ? greedy.assignment.makespan
                      : std::min(upper_bound, greedy.assignment.makespan);
  }

  // Stage 2: race the exact branch-and-bound against simulated annealing.
  ExactSolverOptions exact_options;
  exact_options.max_nodes = options.max_nodes;
  exact_options.initial_upper_bound = upper_bound;
  exact_options.bound_mode = options.bound_mode;
  exact_options.threads = options.exact_threads;
  exact_options.cancel = options.cancel;
  exact_options.deadline = options.deadline;

  SaSolverOptions sa_options = options.sa;
  CancellationToken cancel_sa;
  sa_options.cancel = &cancel_sa;
  sa_options.deadline = options.deadline;

  TamSolveResult exact;
  TamSolveResult sa;
  bool exact_faulted = false;
  bool sa_faulted = false;
  {
    const int threads = std::max(2, resolve_thread_count(options.threads));
    ThreadPool pool(static_cast<std::size_t>(threads));
    auto exact_future = pool.submit([&] {
      obs::Span span("tam.portfolio.exact");
      TamSolveResult r = solve_exact(problem, exact_options);
      if (span.active()) {
        span.arg({"nodes", r.nodes});
        span.arg({"proved", r.proved_optimal});
      }
      return r;
    });
    auto sa_future = pool.submit([&] {
      obs::Span span("tam.portfolio.sa");
      TamSolveResult r = solve_sa(problem, sa_options);
      if (span.active()) span.arg({"moves", r.nodes});
      return r;
    });
    // Relay the caller's cancellation to the SA racer while the exact racer
    // runs (the exact racer observes the token directly).
    while (exact_future.wait_for(std::chrono::milliseconds(2)) !=
           std::future_status::ready) {
      if (options.cancel && options.cancel->cancelled()) cancel_sa.cancel();
    }
    // A racer can die outright (injected pool fault, OOM): its future breaks
    // instead of returning. The portfolio degrades to the surviving results
    // rather than propagating the exception.
    try {
      exact = exact_future.get();
    } catch (const std::exception&) {
      exact_faulted = true;
      exact = TamSolveResult{};
      exact.stop = StopReason::kFault;
    }
    if (exact.proved_optimal) {
      // The exact racer won outright: the SA incumbent can no longer matter.
      cancel_sa.cancel();
      out.sa_cancelled = true;
      obs::instant("tam.portfolio.sa_cancel");
    }
    try {
      sa = sa_future.get();
    } catch (const std::exception&) {
      sa_faulted = true;
      sa = TamSolveResult{};
      sa.stop = StopReason::kFault;
    }
  }
  out.exact_nodes = exact.nodes;
  out.sa_moves = sa.nodes;
  if (obs::enabled()) {
    obs::counter("tam.portfolio.races").add(1);
    if (out.sa_cancelled) obs::counter("tam.portfolio.sa_cancelled").add(1);
  }

  auto note_winner = [&] {
    if (!obs::enabled()) return;
    obs::counter(std::string("tam.portfolio.win_") + out.winner).add(1);
    if (race_span.active()) {
      race_span.arg({"winner", out.winner});
      race_span.arg({"heuristic_bound", static_cast<long long>(out.heuristic_bound)});
      race_span.arg({"exact_nodes", out.exact_nodes});
      race_span.arg({"sa_moves", out.sa_moves});
    }
  };

  // The reason the race (if anything) was cut short, for the certificate.
  const StopReason race_stop =
      exact.stop != StopReason::kNone ? exact.stop : sa.stop;

  // Stage 3: deterministic selection. A completed exact solve dominates —
  // its warm start was an upper bound on the optimum, so "infeasible with
  // proof" really means no assignment beats the heuristics either.
  if (exact.proved_optimal && exact.feasible) {
    out.best = exact;
    out.winner = "exact";
    out.certificate =
        certify_optimal(static_cast<long long>(exact.assignment.makespan));
    note_winner();
    return out;
  }
  if (exact.proved_optimal && !greedy.feasible && !sa.feasible) {
    out.best = exact;  // proven infeasible
    out.winner = "exact";
    out.certificate = certify_infeasible(/*proven=*/true, StopReason::kNone);
    note_winner();
    return out;
  }
  // Aborted/cancelled exact: keep the best feasible incumbent, preferring
  // exact, then greedy, then SA on ties (a fixed order keeps the choice
  // deterministic for equal makespans).
  out.best = exact;
  out.winner = "exact";
  auto consider = [&](const TamSolveResult& candidate, const char* name) {
    if (!candidate.feasible) return;
    if (!out.best.feasible ||
        candidate.assignment.makespan < out.best.assignment.makespan) {
      const long long nodes = out.best.nodes;
      out.best = candidate;
      out.best.nodes = nodes;  // keep the aggregate search-effort figure
      out.winner = name;
    }
  };
  consider(greedy, "greedy");
  consider(sa, "sa");
  out.best.proved_optimal = false;
  if (out.best.stop == StopReason::kNone) out.best.stop = race_stop;
  if (out.best.feasible) {
    const long long makespan =
        static_cast<long long>(out.best.assignment.makespan);
    const Cycles lb = problem.lower_bound();
    if (lb > 0 && makespan <= static_cast<long long>(lb)) {
      // The incumbent meets the combinatorial lower bound: optimal after
      // all, even though the exact racer never finished its proof.
      out.best.proved_optimal = true;
      out.certificate = certify_optimal(makespan);
    } else if (lb > 0) {
      out.certificate =
          certify_bounded(makespan, static_cast<long long>(lb), race_stop);
    } else {
      out.certificate = certify_feasible(makespan, race_stop);
    }
  } else if (exact_faulted && sa_faulted) {
    out.certificate = certify_error("all portfolio racers faulted");
  } else {
    out.certificate = certify_infeasible(/*proven=*/false, race_stop);
  }
  note_winner();
  return out;
}

FormulationRaceResult race_formulations(
    const std::function<ArchitectureResult()>& solve_fixed,
    const PackProblem& pack_problem, const PackSolverOptions& pack_options) {
  obs::Span span("tam.portfolio.formulations",
                 {{"cores", pack_problem.num_cores()},
                  {"width", static_cast<long long>(pack_problem.total_width)}});
  FormulationRaceResult out;
  bool fixed_faulted = false;
  {
    // Both racers run to completion: cancelling the loser would make the
    // certificate depend on timing, and each racer is deterministic on its
    // own, so completion is what keeps the race bit-identical at any
    // thread count.
    ThreadPool pool(2);
    auto fixed_future = pool.submit(solve_fixed);
    auto pack_future =
        pool.submit([&] { return solve_pack(pack_problem, pack_options); });
    try {
      out.fixed = fixed_future.get();
    } catch (const std::exception&) {
      fixed_faulted = true;
      out.fixed = ArchitectureResult{};
      out.fixed.stop = StopReason::kFault;
      out.fixed.certificate = certify_error("fixed-bus racer faulted");
    }
    try {
      out.pack = pack_future.get();
    } catch (const std::exception&) {
      out.pack = PackSolveResult{};
      out.pack.stop = StopReason::kFault;
      out.pack.certificate = certify_error("pack racer faulted");
    }
  }
  if (fixed_faulted && !out.pack.feasible) {
    // Nothing survived; surface the fixed-bus fault the way a non-racing
    // solve would have.
    throw std::runtime_error("formulation race: both racers faulted");
  }
  out.pack_won =
      out.pack.feasible &&
      (!out.fixed.feasible ||
       out.pack.makespan < out.fixed.assignment.makespan);
  if (obs::enabled()) {
    obs::counter("tam.portfolio.formulation_races").add(1);
    obs::counter(out.pack_won ? "tam.portfolio.win_pack"
                              : "tam.portfolio.win_fixed")
        .add(1);
  }
  if (span.active()) {
    span.arg({"pack_won", out.pack_won});
    span.arg({"pack_makespan", static_cast<long long>(out.pack.makespan)});
    if (out.fixed.feasible) {
      span.arg({"fixed_makespan",
                static_cast<long long>(out.fixed.assignment.makespan)});
    }
  }
  return out;
}

}  // namespace soctest
