#include "tam/portfolio.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace soctest {

PortfolioResult solve_portfolio(const TamProblem& problem,
                                const PortfolioOptions& options) {
  obs::Span race_span("tam.portfolio.race", {{"cores", problem.num_cores()},
                                             {"buses", problem.num_buses()}});
  PortfolioResult out;

  // Stage 1: greedy-LPT is orders of magnitude cheaper than either racer, so
  // it runs synchronously and its incumbent warm-starts the exact search.
  TamSolveResult greedy;
  {
    obs::Span greedy_span("tam.portfolio.greedy");
    greedy = solve_greedy_lpt(problem);
    if (greedy_span.active() && greedy.feasible) {
      greedy_span.arg(
          {"makespan", static_cast<long long>(greedy.assignment.makespan)});
    }
  }
  Cycles upper_bound = options.initial_upper_bound;
  if (greedy.feasible) {
    out.heuristic_bound = greedy.assignment.makespan;
    upper_bound = upper_bound < 0
                      ? greedy.assignment.makespan
                      : std::min(upper_bound, greedy.assignment.makespan);
  }

  // Stage 2: race the exact branch-and-bound against simulated annealing.
  ExactSolverOptions exact_options;
  exact_options.max_nodes = options.max_nodes;
  exact_options.initial_upper_bound = upper_bound;
  exact_options.bound_mode = options.bound_mode;
  exact_options.threads = options.exact_threads;

  SaSolverOptions sa_options = options.sa;
  CancellationToken cancel_sa;
  sa_options.cancel = &cancel_sa;

  TamSolveResult exact;
  TamSolveResult sa;
  {
    const int threads = std::max(2, resolve_thread_count(options.threads));
    ThreadPool pool(static_cast<std::size_t>(threads));
    auto exact_future = pool.submit([&] {
      obs::Span span("tam.portfolio.exact");
      TamSolveResult r = solve_exact(problem, exact_options);
      if (span.active()) {
        span.arg({"nodes", r.nodes});
        span.arg({"proved", r.proved_optimal});
      }
      return r;
    });
    auto sa_future = pool.submit([&] {
      obs::Span span("tam.portfolio.sa");
      TamSolveResult r = solve_sa(problem, sa_options);
      if (span.active()) span.arg({"moves", r.nodes});
      return r;
    });
    exact = exact_future.get();
    if (exact.proved_optimal) {
      // The exact racer won outright: the SA incumbent can no longer matter.
      cancel_sa.cancel();
      out.sa_cancelled = true;
      obs::instant("tam.portfolio.sa_cancel");
    }
    sa = sa_future.get();
  }
  out.exact_nodes = exact.nodes;
  out.sa_moves = sa.nodes;
  if (obs::enabled()) {
    obs::counter("tam.portfolio.races").add(1);
    if (out.sa_cancelled) obs::counter("tam.portfolio.sa_cancelled").add(1);
  }

  auto note_winner = [&] {
    if (!obs::enabled()) return;
    obs::counter(std::string("tam.portfolio.win_") + out.winner).add(1);
    if (race_span.active()) {
      race_span.arg({"winner", out.winner});
      race_span.arg({"heuristic_bound", static_cast<long long>(out.heuristic_bound)});
      race_span.arg({"exact_nodes", out.exact_nodes});
      race_span.arg({"sa_moves", out.sa_moves});
    }
  };

  // Stage 3: deterministic selection. A completed exact solve dominates —
  // its warm start was an upper bound on the optimum, so "infeasible with
  // proof" really means no assignment beats the heuristics either.
  if (exact.proved_optimal && exact.feasible) {
    out.best = exact;
    out.winner = "exact";
    note_winner();
    return out;
  }
  if (exact.proved_optimal && !greedy.feasible && !sa.feasible) {
    out.best = exact;  // proven infeasible
    out.winner = "exact";
    note_winner();
    return out;
  }
  // Aborted/cancelled exact: keep the best feasible incumbent, preferring
  // exact, then greedy, then SA on ties (a fixed order keeps the choice
  // deterministic for equal makespans).
  out.best = exact;
  out.winner = "exact";
  auto consider = [&](const TamSolveResult& candidate, const char* name) {
    if (!candidate.feasible) return;
    if (!out.best.feasible ||
        candidate.assignment.makespan < out.best.assignment.makespan) {
      const long long nodes = out.best.nodes;
      out.best = candidate;
      out.best.nodes = nodes;  // keep the aggregate search-effort figure
      out.winner = name;
    }
  };
  consider(greedy, "greedy");
  consider(sa, "sa");
  out.best.proved_optimal = false;
  note_winner();
  return out;
}

}  // namespace soctest
