#pragma once

#include "common/parallel.hpp"
#include "runtime/deadline.hpp"
#include "tam/tam_problem.hpp"

namespace soctest {

/// Execution strategy an exact solve actually used (for the ledger and the
/// table6 rows): kSerial when the whole search ran on one thread — either
/// because threads == 1 or because the crossover probe finished under the
/// serial threshold — and kParallel when the root-splitting phase ran.
/// Non-exact solvers report kNone.
enum class SearchMode {
  kNone,
  kSerial,
  kParallel,
};

/// Stable short name for ledger / bench rows ("-", "serial", "parallel").
const char* search_mode_name(SearchMode mode);

/// Result of any TAM assignment solver.
struct TamSolveResult {
  bool feasible = false;
  /// True when the result is provably optimal (exact solvers within limits).
  bool proved_optimal = false;
  TamAssignment assignment;
  long long nodes = 0;  ///< search nodes / LP nodes / SA moves, solver-defined
  /// Why the search unwound early (StopReason::kNone when it ran to
  /// completion). An aborted solve still carries the best incumbent found.
  StopReason stop = StopReason::kNone;
  /// How the solve executed (exact solvers only; see SearchMode).
  SearchMode search_mode = SearchMode::kNone;
};

/// Lower-bound strength used for pruning (ablation A2). All modes are
/// admissible; stronger modes prune more nodes at slightly higher cost.
enum class BoundMode {
  kNone,      ///< prune only on completed bus loads (pure enumeration)
  kLoadOnly,  ///< current max bus load
  kFull,      ///< max load + remaining-work spread + largest-remaining-item
};

struct ExactSolverOptions {
  /// Search-node budget; < 0 means unlimited. When exhausted, the best
  /// incumbent found so far is returned with proved_optimal = false. In
  /// parallel mode the budget is enforced globally across all subtrees.
  long long max_nodes = -1;
  /// Optional warm-start upper bound (exclusive pruning threshold); < 0 if
  /// none. A known heuristic makespan tightens pruning substantially.
  Cycles initial_upper_bound = -1;
  BoundMode bound_mode = BoundMode::kFull;
  /// Worker threads for the branch-and-bound. 1 (default) = the classic
  /// serial search; 0 = auto (default_thread_count()); N > 1 = root-splitting
  /// parallel search. Any thread count returns the identical (makespan,
  /// assignment, proved_optimal) result when the search completes: the
  /// parallel phase only proves the optimal value, and the witness assignment
  /// is re-derived by a deterministic capped serial pass.
  int threads = 1;
  /// Parallel crossover: with threads > 1 the solver first runs the serial
  /// search capped at this many nodes. Small instances finish inside the cap
  /// and skip the root-splitting machinery entirely (whose setup cost used
  /// to make speedup_mt < 1 on them); big ones abort the probe and restart
  /// in parallel, warm-started with the probe's incumbent. 0 forces the
  /// parallel path; < 0 selects the default.
  long long serial_threshold_nodes = -1;
  /// Optional cooperative cancellation (portfolio racing). When the token
  /// fires the solver unwinds and returns its best incumbent with
  /// proved_optimal = false.
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline (anytime mode). Default is infinite; when
  /// it expires mid-search the solver unwinds and returns its best incumbent
  /// with proved_optimal = false and stop = StopReason::kDeadline.
  Deadline deadline;
};

/// Exact branch-and-bound solver for the constrained TAM assignment problem.
///
/// Co-assignment groups are contracted into super-items (per-bus time = sum
/// of member times; allowed = intersection; wire cost = sum). Items are
/// assigned in decreasing-load order; the bound combines the current maximum
/// bus load, the total-remaining-work bound, and the per-item minimum-time
/// bound, plus wiring-budget feasibility. Buses that are indistinguishable
/// (identical time/allowed/cost columns) are canonicalized: an item may enter
/// at most one of the currently-empty equivalent buses.
TamSolveResult solve_exact(const TamProblem& problem,
                           const ExactSolverOptions& options = {});

/// Minimizes total stub wirelength subject to makespan <= makespan_cap (and
/// all the problem's own constraints). Requires problem.wire_cost to be
/// populated; the resulting TamAssignment's makespan is the realized one,
/// not the cap. Returns infeasible when no assignment meets the cap.
TamSolveResult solve_exact_min_wire(const TamProblem& problem,
                                    Cycles makespan_cap,
                                    const ExactSolverOptions& options = {});

/// Lexicographic bi-objective solve: first the optimal makespan T*, then
/// the minimum-wirelength assignment among those achieving T*. This is the
/// natural refinement of the DAC 2000 objective once layout costs exist:
/// between equally fast architectures, prefer the one that routes shorter.
TamSolveResult solve_exact_lex(const TamProblem& problem,
                               const ExactSolverOptions& options = {});

}  // namespace soctest
