#include "tam/width_partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/portfolio.hpp"
#include "tam/staircase.hpp"

namespace soctest {

const char* inner_solver_name(InnerSolver solver) {
  switch (solver) {
    case InnerSolver::kExact: return "exact";
    case InnerSolver::kIlp: return "ilp";
    case InnerSolver::kGreedy: return "greedy";
    case InnerSolver::kSa: return "sa";
    case InnerSolver::kPortfolio: return "portfolio";
    case InnerSolver::kPack: return "pack";
    case InnerSolver::kPackExact: return "pack-exact";
  }
  return "unknown";
}

namespace {

void enumerate(int remaining, int parts, int max_part, std::vector<int>& prefix,
               std::vector<std::vector<int>>& out) {
  if (parts == 1) {
    if (remaining >= 1 && remaining <= max_part) {
      prefix.push_back(remaining);
      out.push_back(prefix);
      prefix.pop_back();
    }
    return;
  }
  // Leave at least 1 per remaining part; keep non-increasing order.
  for (int w = std::min(max_part, remaining - (parts - 1)); w >= 1; --w) {
    // Remaining parts are each <= w, so they can absorb at most w*(parts-1).
    if (remaining - w > w * (parts - 1)) break;
    prefix.push_back(w);
    enumerate(remaining - w, parts - 1, w, prefix, out);
    prefix.pop_back();
  }
}

TamSolveResult run_inner(const TamProblem& problem,
                         const WidthPartitionOptions& options,
                         Cycles incumbent) {
  switch (options.solver) {
    case InnerSolver::kExact: {
      ExactSolverOptions exact;
      exact.max_nodes = options.max_nodes_per_solve;
      exact.initial_upper_bound = incumbent;
      exact.threads = options.threads;
      exact.cancel = options.cancel;
      exact.deadline = options.deadline;
      return solve_exact(problem, exact);
    }
    case InnerSolver::kIlp: {
      MipOptions mip;
      mip.cancel = options.cancel;
      mip.deadline = options.deadline;
      return solve_ilp(problem, mip);
    }
    case InnerSolver::kGreedy:
      return solve_greedy_lpt(problem);
    case InnerSolver::kSa: {
      SaSolverOptions sa;
      sa.cancel = options.cancel;
      sa.deadline = options.deadline;
      return solve_sa(problem, sa);
    }
    case InnerSolver::kPortfolio: {
      PortfolioOptions portfolio;
      portfolio.max_nodes = options.max_nodes_per_solve;
      portfolio.initial_upper_bound = incumbent;
      portfolio.threads = options.threads;
      portfolio.cancel = options.cancel;
      portfolio.deadline = options.deadline;
      return solve_portfolio(problem, portfolio).best;
    }
    case InnerSolver::kPack:
    case InnerSolver::kPackExact:
      // The packing formulation never reaches the per-partition inner solve
      // (tam/architect.cpp routes it first); degrade to greedy defensively.
      return solve_greedy_lpt(problem);
  }
  throw std::logic_error("unknown inner solver");
}

/// Global lower bound for the whole width search: every core could at best
/// run at the widest bus any partition can offer (total - (buses-1) wires),
/// and B buses cannot beat the average of that relaxed workload.
Cycles width_search_lower_bound(const TestTimeTable& table, int num_buses,
                                int total_width) {
  const int w_max =
      std::min(table.max_width(), total_width - (num_buses - 1));
  if (w_max < 1) return 0;
  const Staircase stairs(table);
  const Staircase::RowStats stats = stairs.row_stats(w_max);
  const auto b = static_cast<Cycles>(num_buses);
  return std::max(stats.max_single, (stats.total + b - 1) / b);
}

}  // namespace

std::vector<std::vector<int>> width_partitions(int total, int parts) {
  std::vector<std::vector<int>> out;
  if (total < parts || parts <= 0) return out;
  std::vector<int> prefix;
  enumerate(total, parts, total, prefix, out);
  return out;
}

ArchitectureResult optimize_widths(const Soc& soc, const TestTimeTable& table,
                                   int num_buses, int total_width,
                                   const LayoutConstraints* layout,
                                   long long wire_budget, double p_max_mw,
                                   const WidthPartitionOptions& options) {
  if (num_buses <= 0) throw std::invalid_argument("num_buses must be positive");
  if (total_width < num_buses) {
    throw std::invalid_argument("total width below one wire per bus");
  }
  ArchitectureResult best;
  best.proved_optimal = true;
  // The width-relaxed global bound is cheap and fixed for the whole
  // search, so it doubles as the per-incumbent gap reference streamed to
  // progress callbacks.
  const Cycles global_lb =
      width_search_lower_bound(table, num_buses, total_width);
  const auto report_progress = [&] {
    if (!options.progress) return;
    SolveProgress snapshot;
    snapshot.bus_widths = best.bus_widths;
    snapshot.t_cycles = static_cast<long long>(best.assignment.makespan);
    snapshot.lower_bound =
        global_lb > 0 ? static_cast<long long>(global_lb) : -1;
    options.progress(snapshot);
  };
  const bool permute = options.permute_widths || layout != nullptr;
  // Between-partition stop polling: the per-node/iteration checks live in
  // the inner solvers; this one stops the enumeration itself.
  StopCheck stop_check(options.deadline, options.cancel);
  const bool anytime =
      options.deadline.finite() || options.cancel != nullptr;
  bool stopped = false;

  for (const auto& partition : width_partitions(total_width, num_buses)) {
    if (stopped) break;
    std::vector<int> widths = partition;
    // next_permutation over the non-increasing vector enumerates each
    // distinct arrangement exactly once starting from the sorted-ascending
    // order.
    std::sort(widths.begin(), widths.end());
    do {
      if (stop_check.should_stop()) {
        best.proved_optimal = false;
        if (best.stop == StopReason::kNone) best.stop = stop_check.reason();
        stopped = true;
        break;
      }
      ++best.partitions_tried;
      TamProblem problem;
      try {
        problem = make_tam_problem(soc, table, widths, layout, wire_budget,
                                   p_max_mw, options.power_mode,
                                   options.bus_depth_limit);
      } catch (const std::runtime_error&) {
        // This width vector cannot host some core under the ATE depth limit
        // (narrow buses inflate test times); other partitions may still fit.
        if (options.bus_depth_limit < 0) throw;
        continue;
      }
      // Skip width vectors that provably cannot beat the incumbent.
      if (best.feasible && problem.lower_bound() >= best.assignment.makespan) {
        continue;
      }
      const Cycles incumbent = best.feasible ? best.assignment.makespan : -1;
      TamSolveResult result = run_inner(problem, options, incumbent);
      best.total_nodes += result.nodes;
      if (!result.proved_optimal) best.proved_optimal = false;
      if (result.stop != StopReason::kNone && best.stop == StopReason::kNone) {
        best.stop = result.stop;
      }
      // Graceful degradation: an interrupted inner solve that found nothing
      // must not silently skip the partition — greedy-LPT is cheap enough to
      // always supply a floor incumbent.
      if (anytime && !result.feasible &&
          result.stop != StopReason::kNone &&
          options.solver != InnerSolver::kGreedy) {
        TamSolveResult fallback = solve_greedy_lpt(problem);
        if (fallback.feasible) {
          fallback.stop = result.stop;
          fallback.proved_optimal = false;
          result = std::move(fallback);
        }
      }
      if (result.feasible &&
          (!best.feasible || result.assignment.makespan < best.assignment.makespan)) {
        best.feasible = true;
        best.bus_widths = widths;
        best.assignment = result.assignment;
        best.search_mode = result.search_mode;
        report_progress();
      }
      if (!permute) break;
    } while (permute && std::next_permutation(widths.begin(), widths.end()));
  }
  if (!best.feasible) best.proved_optimal = false;

  // Anytime floor: even a budget that expired before the first partition
  // still returns *an* architecture when one exists. Greedy-LPT on the
  // balanced width split mirrors the portfolio's greedy floor; it ignores
  // the already-expired deadline (greedy is O(n log n), not a search).
  if (anytime && !best.feasible && best.stop != StopReason::kNone) {
    std::vector<int> widths(static_cast<std::size_t>(num_buses),
                            total_width / num_buses);
    for (int r = 0; r < total_width % num_buses; ++r) ++widths[static_cast<std::size_t>(r)];
    try {
      const TamProblem problem =
          make_tam_problem(soc, table, widths, layout, wire_budget, p_max_mw,
                           options.power_mode, options.bus_depth_limit);
      const TamSolveResult fallback = solve_greedy_lpt(problem);
      if (fallback.feasible) {
        best.feasible = true;
        best.proved_optimal = false;
        best.bus_widths = widths;
        best.assignment = fallback.assignment;
        ++best.partitions_tried;
        report_progress();
      }
    } catch (const std::runtime_error&) {
      // The balanced split cannot host some core under the constraints;
      // the run stays infeasible-with-stop-reason.
    }
  }

  // Certificate: gap against the width-relaxed global lower bound.
  if (!best.feasible) {
    best.certificate =
        certify_infeasible(/*proven=*/best.stop == StopReason::kNone,
                           best.stop);
  } else {
    const auto makespan = static_cast<long long>(best.assignment.makespan);
    const Cycles lb = global_lb;
    if (best.proved_optimal && best.stop == StopReason::kNone) {
      best.certificate = certify_optimal(makespan);
    } else if (lb > 0 && makespan <= static_cast<long long>(lb)) {
      // Meeting the relaxation bound proves optimality even mid-search.
      best.proved_optimal = true;
      best.certificate = certify_optimal(makespan);
    } else if (lb > 0) {
      best.certificate =
          certify_bounded(makespan, static_cast<long long>(lb), best.stop);
    } else {
      best.certificate = certify_feasible(makespan, best.stop);
    }
  }
  return best;
}

}  // namespace soctest
