#include "tam/width_partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/portfolio.hpp"

namespace soctest {

namespace {

void enumerate(int remaining, int parts, int max_part, std::vector<int>& prefix,
               std::vector<std::vector<int>>& out) {
  if (parts == 1) {
    if (remaining >= 1 && remaining <= max_part) {
      prefix.push_back(remaining);
      out.push_back(prefix);
      prefix.pop_back();
    }
    return;
  }
  // Leave at least 1 per remaining part; keep non-increasing order.
  for (int w = std::min(max_part, remaining - (parts - 1)); w >= 1; --w) {
    // Remaining parts are each <= w, so they can absorb at most w*(parts-1).
    if (remaining - w > w * (parts - 1)) break;
    prefix.push_back(w);
    enumerate(remaining - w, parts - 1, w, prefix, out);
    prefix.pop_back();
  }
}

TamSolveResult run_inner(const TamProblem& problem,
                         const WidthPartitionOptions& options,
                         Cycles incumbent) {
  switch (options.solver) {
    case InnerSolver::kExact: {
      ExactSolverOptions exact;
      exact.max_nodes = options.max_nodes_per_solve;
      exact.initial_upper_bound = incumbent;
      exact.threads = options.threads;
      return solve_exact(problem, exact);
    }
    case InnerSolver::kIlp:
      return solve_ilp(problem);
    case InnerSolver::kGreedy:
      return solve_greedy_lpt(problem);
    case InnerSolver::kSa:
      return solve_sa(problem);
    case InnerSolver::kPortfolio: {
      PortfolioOptions portfolio;
      portfolio.max_nodes = options.max_nodes_per_solve;
      portfolio.initial_upper_bound = incumbent;
      portfolio.threads = options.threads;
      return solve_portfolio(problem, portfolio).best;
    }
  }
  throw std::logic_error("unknown inner solver");
}

}  // namespace

std::vector<std::vector<int>> width_partitions(int total, int parts) {
  std::vector<std::vector<int>> out;
  if (total < parts || parts <= 0) return out;
  std::vector<int> prefix;
  enumerate(total, parts, total, prefix, out);
  return out;
}

ArchitectureResult optimize_widths(const Soc& soc, const TestTimeTable& table,
                                   int num_buses, int total_width,
                                   const LayoutConstraints* layout,
                                   long long wire_budget, double p_max_mw,
                                   const WidthPartitionOptions& options) {
  if (num_buses <= 0) throw std::invalid_argument("num_buses must be positive");
  if (total_width < num_buses) {
    throw std::invalid_argument("total width below one wire per bus");
  }
  ArchitectureResult best;
  best.proved_optimal = true;
  const bool permute = options.permute_widths || layout != nullptr;

  for (const auto& partition : width_partitions(total_width, num_buses)) {
    std::vector<int> widths = partition;
    // next_permutation over the non-increasing vector enumerates each
    // distinct arrangement exactly once starting from the sorted-ascending
    // order.
    std::sort(widths.begin(), widths.end());
    do {
      ++best.partitions_tried;
      TamProblem problem;
      try {
        problem = make_tam_problem(soc, table, widths, layout, wire_budget,
                                   p_max_mw, options.power_mode,
                                   options.bus_depth_limit);
      } catch (const std::runtime_error&) {
        // This width vector cannot host some core under the ATE depth limit
        // (narrow buses inflate test times); other partitions may still fit.
        if (options.bus_depth_limit < 0) throw;
        continue;
      }
      // Skip width vectors that provably cannot beat the incumbent.
      if (best.feasible && problem.lower_bound() >= best.assignment.makespan) {
        continue;
      }
      const Cycles incumbent = best.feasible ? best.assignment.makespan : -1;
      const TamSolveResult result = run_inner(problem, options, incumbent);
      best.total_nodes += result.nodes;
      if (!result.proved_optimal) best.proved_optimal = false;
      if (result.feasible &&
          (!best.feasible || result.assignment.makespan < best.assignment.makespan)) {
        best.feasible = true;
        best.bus_widths = widths;
        best.assignment = result.assignment;
      }
      if (!permute) break;
    } while (permute && std::next_permutation(widths.begin(), widths.end()));
  }
  if (!best.feasible) best.proved_optimal = false;
  return best;
}

}  // namespace soctest
