#include "tam/power.hpp"

#include <algorithm>
#include <map>
#include <numeric>

namespace soctest {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  return true;
}

std::vector<std::vector<std::size_t>> UnionFind::groups(std::size_t min_size) {
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t i = 0; i < parent_.size(); ++i) by_root[find(i)].push_back(i);
  std::vector<std::vector<std::size_t>> out;
  for (auto& [root, members] : by_root) {
    (void)root;
    if (members.size() >= min_size) out.push_back(std::move(members));
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> power_conflict_pairs(
    const Soc& soc, double p_max_mw) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  if (p_max_mw < 0) return pairs;
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    for (std::size_t k = i + 1; k < soc.num_cores(); ++k) {
      if (soc.core(i).test_power_mw + soc.core(k).test_power_mw > p_max_mw) {
        pairs.emplace_back(i, k);
      }
    }
  }
  return pairs;
}

std::vector<std::vector<std::size_t>> power_co_groups(const Soc& soc,
                                                      double p_max_mw) {
  UnionFind uf(soc.num_cores());
  for (const auto& [i, k] : power_conflict_pairs(soc, p_max_mw)) uf.unite(i, k);
  return uf.groups(2);
}

std::vector<std::size_t> overbudget_cores(const Soc& soc, double p_max_mw) {
  std::vector<std::size_t> out;
  if (p_max_mw < 0) return out;
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    if (soc.core(i).test_power_mw > p_max_mw) out.push_back(i);
  }
  return out;
}

}  // namespace soctest
