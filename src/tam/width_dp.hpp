#pragma once

#include "tam/width_partition.hpp"

namespace soctest {

/// Result of width re-allocation for a fixed core-to-bus partition.
struct WidthAllocation {
  bool feasible = false;
  std::vector<int> bus_widths;
  Cycles makespan = 0;
};

/// Optimal distribution of `total_width` wires over the buses of a FIXED
/// assignment, minimizing the makespan — solved exactly by dynamic
/// programming over (bus prefix, wires spent), O(B * W^2) using the
/// monotone per-bus load curves load_j(w) = Σ_{i on j} table.time(i, w).
///
/// `bus_depth_limit` (-1 = off) renders allocations whose bus load exceeds
/// the ATE depth infeasible. The assignment's own validity (allowed pairs,
/// co-groups, wiring) is width-independent and assumed.
WidthAllocation allocate_widths_dp(const TestTimeTable& table,
                                   const std::vector<int>& core_to_bus,
                                   int num_buses, int total_width,
                                   Cycles bus_depth_limit = -1);

struct AlternatingOptions {
  int max_rounds = 12;
  /// Assignment solver used per round: true = exact branch & bound,
  /// false = greedy LPT (for large instances).
  bool exact_assignment = true;
  long long max_nodes_per_solve = -1;
};

/// Alternating wrapper/TAM co-optimization heuristic: start from the equal
/// width split, then repeat { solve the assignment for the current widths;
/// re-allocate widths optimally for that assignment (DP) } until the
/// makespan stops improving. Much cheaper than enumerating all width
/// partitions (which is exponential in B for large W) and typically lands
/// on or near the jointly optimal architecture.
ArchitectureResult optimize_alternating(const Soc& soc,
                                        const TestTimeTable& table,
                                        int num_buses, int total_width,
                                        const AlternatingOptions& options = {});

}  // namespace soctest
