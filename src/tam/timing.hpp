#pragma once

#include <vector>

#include "layout/bus_planner.hpp"
#include "tam/tam_problem.hpp"

namespace soctest {

/// First-order wire-delay model for TAM clocking: a bus's scan clock must
/// accommodate its longest wire path, so the achievable period grows with
/// the trunk length plus the longest stub hanging off it. The cycle counts
/// the optimizer minimizes are therefore not the whole story — a
/// cycle-optimal but wire-sloppy assignment can lose wall-clock time to a
/// lexicographic (wire-minimal) one.
struct TamClockModel {
  double base_period_ns = 10.0;  ///< 100 MHz floor (pads, wrapper logic)
  double per_cell_ns = 0.08;     ///< added per grid cell of critical wire
};

/// Achievable clock period of each bus under `assignment`:
///   period_j = base + per_cell * (trunk_length_j + max stub distance of
///              the cores assigned to bus j).
/// Unreachable stubs (distance < 0) throw.
std::vector<double> bus_clock_periods_ns(const BusPlan& plan,
                                         const std::vector<int>& assignment,
                                         const TamClockModel& model = {});

/// Wall-clock system test time: max_j load_j(cycles) * period_j(ns).
double wall_clock_test_time_ns(const TamProblem& problem, const BusPlan& plan,
                               const std::vector<int>& assignment,
                               const TamClockModel& model = {});

}  // namespace soctest
