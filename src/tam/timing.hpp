#pragma once

#include <vector>

#include "common/sharded_cache.hpp"
#include "layout/bus_planner.hpp"
#include "tam/tam_problem.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {

/// Process-wide (SOC, max_width, heuristic) → TestTimeTable memo, shared by
/// sweep workloads (bench grids, the report path) and the solve service:
/// each table build re-runs wrapper design for every core and width, and a
/// Chakrabarty-style sweep rebuilds the identical table for every grid cell.
///
/// Implemented on ShardedLruCache (src/common/sharded_cache.hpp) in
/// unbounded memo mode, the same primitive the service result cache uses.
/// Locking contract (see ShardedLruCache for the full statement): one shard
/// mutex per operation, table construction runs outside any lock (racing
/// threads may build the same table redundantly; the first insert wins),
/// and — because the memo is unbounded — returned references stay valid for
/// the process lifetime. Tables are small (num_cores × max_width integers),
/// so pinning them is the right trade for sweeps.
using TestTimeTableMemo = ShardedLruCache<TestTimeTable>;

/// The process-wide memo instance (also consulted for cache introspection:
/// hits/misses/size — see docs/service.md).
TestTimeTableMemo& test_time_table_memo();

/// Memoized table lookup. Keyed by a fingerprint of the SOC's test
/// structure (not just its name, so regenerated/mutated SOCs never alias),
/// plus max_width and the partition heuristic. Thread-safe.
const TestTimeTable& cached_test_time_table(
    const Soc& soc, int max_width,
    PartitionHeuristic heuristic = PartitionHeuristic::kBestFitDecreasing);

/// First-order wire-delay model for TAM clocking: a bus's scan clock must
/// accommodate its longest wire path, so the achievable period grows with
/// the trunk length plus the longest stub hanging off it. The cycle counts
/// the optimizer minimizes are therefore not the whole story — a
/// cycle-optimal but wire-sloppy assignment can lose wall-clock time to a
/// lexicographic (wire-minimal) one.
struct TamClockModel {
  double base_period_ns = 10.0;  ///< 100 MHz floor (pads, wrapper logic)
  double per_cell_ns = 0.08;     ///< added per grid cell of critical wire
};

/// Achievable clock period of each bus under `assignment`:
///   period_j = base + per_cell * (trunk_length_j + max stub distance of
///              the cores assigned to bus j).
/// Unreachable stubs (distance < 0) throw.
std::vector<double> bus_clock_periods_ns(const BusPlan& plan,
                                         const std::vector<int>& assignment,
                                         const TamClockModel& model = {});

/// Wall-clock system test time: max_j load_j(cycles) * period_j(ns).
double wall_clock_test_time_ns(const TamProblem& problem, const BusPlan& plan,
                               const std::vector<int>& assignment,
                               const TamClockModel& model = {});

}  // namespace soctest
