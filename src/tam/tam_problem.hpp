#pragma once

#include <optional>
#include <string>
#include <vector>

#include "layout/constraints.hpp"
#include "soc/soc.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {

/// A core-to-test-bus assignment: core i is tested through bus
/// core_to_bus[i]. Cores sharing a bus are tested sequentially; buses run in
/// parallel; the system test time is the makespan over buses.
struct TamAssignment {
  std::vector<int> core_to_bus;
  Cycles makespan = 0;
};

/// The constrained TAM assignment problem of the DAC 2000 paper, in matrix
/// form, decoupled from how the matrices were produced:
///
///   minimize   max_j Σ_{i: x(i)=j} time[i][j]
///   subject to x(i) ∈ {j : allowed[i][j]}
///              x(i) = x(k) for i,k in the same co-assignment group
///              Σ_i wire_cost[i][x(i)] <= wire_budget   (if budgeted)
///
/// `time[i][j]` is the test time of core i on bus j (from wrapper design at
/// bus j's width). `allowed` encodes the place-and-route forbidden pairs.
/// Co-assignment groups encode the conservative power constraint: cores
/// whose combined power exceeds the budget may not be tested concurrently,
/// hence must share a bus.
struct TamProblem {
  std::vector<int> bus_widths;                   ///< documentation/reporting
  std::vector<std::vector<Cycles>> time;         ///< [core][bus]
  std::vector<std::vector<char>> allowed;        ///< [core][bus], 1 = assignable
  std::vector<std::vector<long long>> wire_cost; ///< [core][bus]; empty = zero cost
  long long wire_budget = -1;                    ///< -1 = unlimited
  /// Disjoint groups of cores that must share a bus. Cores absent from every
  /// group are unconstrained singletons.
  std::vector<std::vector<std::size_t>> co_groups;

  /// Bus-max-sum power constraint (extension; sound for ANY bus count,
  /// unlike the pairwise form which is exact only for B=2):
  ///   Σ_j  max_{i : x(i)=j} core_power_mw[i]  <=  bus_power_budget.
  /// At any instant at most one core per bus is under test, so this sum
  /// upper-bounds every concurrent overlap. Disabled when
  /// bus_power_budget < 0 or core_power_mw is empty.
  std::vector<double> core_power_mw;
  double bus_power_budget = -1.0;

  /// ATE vector-memory depth limit per TAM (extension, after the multisite
  /// test-resource line): each pattern occupies one vector row per cycle,
  /// so a bus's total test length may not exceed the tester channel depth.
  /// Constraint: Σ_{i on j} time[i][j] <= bus_depth_limit for every bus j.
  /// -1 disables. Note this also caps the makespan.
  Cycles bus_depth_limit = -1;

  std::size_t num_cores() const { return time.size(); }
  std::size_t num_buses() const { return bus_widths.size(); }

  /// Structural validation: matrix shapes, group disjointness. Empty if OK.
  std::string validate() const;

  /// Makespan of an assignment (no constraint checking).
  Cycles makespan(const std::vector<int>& core_to_bus) const;

  /// Full feasibility check of an assignment against allowed/groups/budget.
  /// Returns an explanation of the first violation, or empty if feasible.
  std::string check_assignment(const std::vector<int>& core_to_bus) const;

  /// Lower bound on any feasible makespan:
  ///   max( max_i min_{j allowed} time[i][j],
  ///        ceil(Σ_i min_{j allowed} time[i][j] / B) ).
  Cycles lower_bound() const;
};

/// How a test power ceiling is encoded into the assignment problem.
enum class PowerConstraintMode {
  /// The DAC 2000 form: any two cores whose combined power exceeds the
  /// budget must share a bus (transitively grouped). Exact peak guarantee
  /// for B = 2; optimistic for B >= 3 (a triple may still overlap).
  kPairwiseSerialization,
  /// Extension: constrain Σ_j max_{i on j} P_i <= budget. Sound for any B
  /// (conservative: assumes the heaviest core of every bus may overlap).
  kBusMaxSum,
};

/// Assembles a TamProblem from a SOC, bus widths, and the optional physical
/// constraints of the paper:
///  * `table` supplies time[i][j] = table.time(i, bus_widths[j]);
///  * `layout` (nullable) supplies allowed pairs (d_max form) and wire costs;
///    pass wire_budget >= 0 to activate the total-wiring-budget row;
///  * `p_max_mw` < 0 disables the power constraint; otherwise it is encoded
///    per `power_mode` (pairwise co-assignment groups, or the bus-max-sum
///    row).
///
/// Throws std::invalid_argument when a width exceeds the table, and
/// std::runtime_error when the constraints are trivially infeasible (a core
/// with no allowed bus, or a single core's power above p_max).
TamProblem make_tam_problem(
    const Soc& soc, const TestTimeTable& table, std::vector<int> bus_widths,
    const LayoutConstraints* layout = nullptr, long long wire_budget = -1,
    double p_max_mw = -1.0,
    PowerConstraintMode power_mode = PowerConstraintMode::kPairwiseSerialization,
    Cycles bus_depth_limit = -1);

}  // namespace soctest
