#include "tam/tam_problem.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "tam/power.hpp"

namespace soctest {

std::string TamProblem::validate() const {
  std::ostringstream err;
  const std::size_t n = num_cores();
  const std::size_t b = num_buses();
  if (b == 0) err << "no buses; ";
  if (n == 0) err << "no cores; ";
  for (int w : bus_widths) {
    if (w < 1) err << "non-positive bus width; ";
  }
  if (allowed.size() != n) err << "allowed matrix row count mismatch; ";
  for (const auto& row : time) {
    if (row.size() != b) err << "time matrix column count mismatch; ";
  }
  for (const auto& row : allowed) {
    if (row.size() != b) err << "allowed matrix column count mismatch; ";
  }
  if (!wire_cost.empty()) {
    if (wire_cost.size() != n) err << "wire_cost row count mismatch; ";
    for (const auto& row : wire_cost) {
      if (row.size() != b) err << "wire_cost column count mismatch; ";
    }
  }
  if (!core_power_mw.empty() && core_power_mw.size() != n) {
    err << "core_power_mw size mismatch; ";
  }
  if (bus_power_budget >= 0 && core_power_mw.empty()) {
    err << "bus_power_budget set without core powers; ";
  }
  std::vector<char> seen(n, 0);
  for (const auto& group : co_groups) {
    if (group.size() < 2) err << "co-assignment group of size < 2; ";
    for (std::size_t member : group) {
      if (member >= n) {
        err << "co-assignment group references unknown core; ";
      } else if (seen[member]) {
        err << "core in multiple co-assignment groups; ";
      } else {
        seen[member] = 1;
      }
    }
  }
  return err.str();
}

Cycles TamProblem::makespan(const std::vector<int>& core_to_bus) const {
  std::vector<Cycles> load(num_buses(), 0);
  for (std::size_t i = 0; i < num_cores(); ++i) {
    const auto j = static_cast<std::size_t>(core_to_bus.at(i));
    load.at(j) += time[i][j];
  }
  return *std::max_element(load.begin(), load.end());
}

std::string TamProblem::check_assignment(
    const std::vector<int>& core_to_bus) const {
  if (core_to_bus.size() != num_cores()) return "assignment size mismatch";
  for (std::size_t i = 0; i < num_cores(); ++i) {
    const int j = core_to_bus[i];
    if (j < 0 || static_cast<std::size_t>(j) >= num_buses()) {
      return "core " + std::to_string(i) + " assigned to unknown bus";
    }
    if (!allowed[i][static_cast<std::size_t>(j)]) {
      return "core " + std::to_string(i) + " assigned to forbidden bus " +
             std::to_string(j);
    }
  }
  for (const auto& group : co_groups) {
    for (std::size_t m = 1; m < group.size(); ++m) {
      if (core_to_bus[group[m]] != core_to_bus[group[0]]) {
        return "power co-assignment group split across buses (cores " +
               std::to_string(group[0]) + " and " + std::to_string(group[m]) +
               ")";
      }
    }
  }
  if (wire_budget >= 0 && !wire_cost.empty()) {
    long long total = 0;
    for (std::size_t i = 0; i < num_cores(); ++i) {
      total += wire_cost[i][static_cast<std::size_t>(core_to_bus[i])];
    }
    if (total > wire_budget) {
      return "wiring budget exceeded (" + std::to_string(total) + " > " +
             std::to_string(wire_budget) + ")";
    }
  }
  if (bus_depth_limit >= 0) {
    std::vector<Cycles> load(num_buses(), 0);
    for (std::size_t i = 0; i < num_cores(); ++i) {
      const auto j = static_cast<std::size_t>(core_to_bus[i]);
      load[j] += time[i][j];
    }
    for (std::size_t j = 0; j < num_buses(); ++j) {
      if (load[j] > bus_depth_limit) {
        return "bus " + std::to_string(j) + " load " + std::to_string(load[j]) +
               " exceeds ATE depth limit " + std::to_string(bus_depth_limit);
      }
    }
  }
  if (bus_power_budget >= 0 && !core_power_mw.empty()) {
    std::vector<double> bus_max(num_buses(), 0.0);
    for (std::size_t i = 0; i < num_cores(); ++i) {
      auto& m = bus_max[static_cast<std::size_t>(core_to_bus[i])];
      m = std::max(m, core_power_mw[i]);
    }
    double sum = 0.0;
    for (double m : bus_max) sum += m;
    if (sum > bus_power_budget + 1e-9) {
      return "bus-max power sum " + std::to_string(sum) +
             " exceeds budget " + std::to_string(bus_power_budget);
    }
  }
  return {};
}

Cycles TamProblem::lower_bound() const {
  Cycles max_min = 0;
  Cycles sum_min = 0;
  for (std::size_t i = 0; i < num_cores(); ++i) {
    Cycles best = -1;
    for (std::size_t j = 0; j < num_buses(); ++j) {
      if (allowed[i][j] && (best < 0 || time[i][j] < best)) best = time[i][j];
    }
    if (best < 0) return std::numeric_limits<Cycles>::max();  // infeasible
    max_min = std::max(max_min, best);
    sum_min += best;
  }
  const auto b = static_cast<Cycles>(num_buses());
  return std::max(max_min, (sum_min + b - 1) / b);
}

TamProblem make_tam_problem(const Soc& soc, const TestTimeTable& table,
                            std::vector<int> bus_widths,
                            const LayoutConstraints* layout,
                            long long wire_budget, double p_max_mw,
                            PowerConstraintMode power_mode,
                            Cycles bus_depth_limit) {
  if (bus_widths.empty()) throw std::invalid_argument("no bus widths given");
  for (int w : bus_widths) {
    if (w < 1 || w > table.max_width()) {
      throw std::invalid_argument("bus width outside test time table range");
    }
  }
  if (table.num_cores() != soc.num_cores()) {
    throw std::invalid_argument("test time table core count mismatch");
  }
  if (layout != nullptr) {
    if (layout->num_cores() != soc.num_cores()) {
      throw std::invalid_argument("layout constraint core count mismatch");
    }
    if (layout->num_buses() != bus_widths.size()) {
      throw std::invalid_argument("layout constraint bus count mismatch");
    }
  }

  TamProblem problem;
  problem.bus_widths = std::move(bus_widths);
  const std::size_t n = soc.num_cores();
  const std::size_t b = problem.bus_widths.size();
  problem.time.assign(n, std::vector<Cycles>(b, 0));
  problem.allowed.assign(n, std::vector<char>(b, 1));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      problem.time[i][j] = table.time(i, problem.bus_widths[j]);
      if (layout != nullptr) {
        problem.allowed[i][j] = layout->allowed(i, j) ? 1 : 0;
      }
    }
  }
  if (layout != nullptr) {
    problem.wire_cost.assign(n, std::vector<long long>(b, 0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < b; ++j) {
        const int d = layout->distance(i, j);
        problem.wire_cost[i][j] = d < 0 ? 0 : d;  // forbidden pairs never chosen
      }
    }
    problem.wire_budget = wire_budget;
  }

  // Trivial infeasibility diagnostics, reported eagerly with core names.
  for (std::size_t i = 0; i < n; ++i) {
    bool any = false;
    for (std::size_t j = 0; j < b && !any; ++j) any = problem.allowed[i][j];
    if (!any) {
      throw std::runtime_error("core " + soc.core(i).name +
                               " has no allowed test bus under the layout "
                               "constraints (d_max too small)");
    }
  }
  const auto over = overbudget_cores(soc, p_max_mw);
  if (!over.empty()) {
    throw std::runtime_error("core " + soc.core(over.front()).name +
                             " alone exceeds the test power budget");
  }
  switch (power_mode) {
    case PowerConstraintMode::kPairwiseSerialization:
      problem.co_groups = power_co_groups(soc, p_max_mw);
      break;
    case PowerConstraintMode::kBusMaxSum:
      if (p_max_mw >= 0) {
        problem.core_power_mw.reserve(n);
        for (const auto& c : soc.cores()) {
          problem.core_power_mw.push_back(c.test_power_mw);
        }
        problem.bus_power_budget = p_max_mw;
      }
      break;
  }

  problem.bus_depth_limit = bus_depth_limit;
  if (bus_depth_limit >= 0) {
    for (std::size_t i = 0; i < n; ++i) {
      Cycles best = -1;
      for (std::size_t j = 0; j < b; ++j) {
        if (problem.allowed[i][j] && (best < 0 || problem.time[i][j] < best)) {
          best = problem.time[i][j];
        }
      }
      if (best > bus_depth_limit) {
        throw std::runtime_error(
            "core " + soc.core(i).name +
            " does not fit the ATE depth limit on any allowed bus");
      }
    }
  }

  const std::string err = problem.validate();
  if (!err.empty()) throw std::logic_error("built invalid TamProblem: " + err);
  return problem;
}

}  // namespace soctest
