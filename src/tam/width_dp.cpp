#include "tam/width_dp.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "tam/heuristics.hpp"
#include "tam/staircase.hpp"

namespace soctest {

namespace {

constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max();

}  // namespace

WidthAllocation allocate_widths_dp(const TestTimeTable& table,
                                   const std::vector<int>& core_to_bus,
                                   int num_buses, int total_width,
                                   Cycles bus_depth_limit) {
  if (num_buses <= 0 || total_width < num_buses) {
    throw std::invalid_argument("need at least one wire per bus");
  }
  if (total_width - num_buses + 1 > table.max_width()) {
    throw std::invalid_argument("test time table narrower than total width");
  }
  for (int bus : core_to_bus) {
    if (bus < 0 || bus >= num_buses) {
      throw std::invalid_argument("assignment references unknown bus");
    }
  }
  const auto b = static_cast<std::size_t>(num_buses);
  const auto w_total = static_cast<std::size_t>(total_width);

  // Per-bus load curves: load[j][w-1] = Σ_{i on j} time(i, w); loads above
  // the ATE depth limit are treated as unusable widths. Width-major over
  // the staircase: each width reads one contiguous row instead of striding
  // through the per-core envelope vectors. Widths beyond the table only
  // arise in DP states that cannot be part of a complete allocation (every
  // other bus still needs a wire); the staircase clamps them to the table
  // edge, which over-estimates their load (monotone curves) and is sound.
  const Staircase stairs(table);
  std::vector<std::vector<Cycles>> load(
      b, std::vector<Cycles>(w_total, 0));
  for (std::size_t w = 1; w <= w_total; ++w) {
    const Cycles* row = stairs.row(static_cast<int>(w));
    for (std::size_t i = 0; i < core_to_bus.size(); ++i) {
      load[static_cast<std::size_t>(core_to_bus[i])][w - 1] += row[i];
    }
  }
  if (bus_depth_limit >= 0) {
    for (auto& curve : load) {
      for (auto& cell : curve) {
        if (cell > bus_depth_limit) cell = kInfCycles;
      }
    }
  }

  // dp[j][w] = minimal makespan of buses 0..j using exactly w wires.
  // choice[j][w] = width given to bus j in that optimum.
  std::vector<std::vector<Cycles>> dp(b, std::vector<Cycles>(w_total + 1, kInfCycles));
  std::vector<std::vector<int>> choice(b, std::vector<int>(w_total + 1, 0));
  for (std::size_t w = 1; w <= w_total; ++w) {
    dp[0][w] = load[0][w - 1];
    choice[0][w] = static_cast<int>(w);
  }
  for (std::size_t j = 1; j < b; ++j) {
    for (std::size_t w = j + 1; w <= w_total; ++w) {
      for (std::size_t wj = 1; wj <= w - j; ++wj) {  // leave >=1 per earlier bus
        const Cycles mine = load[j][wj - 1];
        const Cycles prev = dp[j - 1][w - wj];
        if (mine == kInfCycles || prev == kInfCycles) continue;
        const Cycles value = std::max(mine, prev);
        if (value < dp[j][w]) {
          dp[j][w] = value;
          choice[j][w] = static_cast<int>(wj);
        }
      }
    }
  }

  WidthAllocation result;
  if (dp[b - 1][w_total] == kInfCycles) return result;  // infeasible
  result.feasible = true;
  result.makespan = dp[b - 1][w_total];
  result.bus_widths.assign(b, 0);
  std::size_t remaining = w_total;
  for (std::size_t j = b; j-- > 0;) {
    const int wj = choice[j][remaining];
    result.bus_widths[j] = wj;
    remaining -= static_cast<std::size_t>(wj);
  }
  return result;
}

ArchitectureResult optimize_alternating(const Soc& soc,
                                        const TestTimeTable& table,
                                        int num_buses, int total_width,
                                        const AlternatingOptions& options) {
  if (num_buses <= 0 || total_width < num_buses) {
    throw std::invalid_argument("need at least one wire per bus");
  }
  ArchitectureResult best;
  // Equal split seed (remainder to the first buses).
  std::vector<int> widths(static_cast<std::size_t>(num_buses),
                          total_width / num_buses);
  for (int r = 0; r < total_width % num_buses; ++r) {
    ++widths[static_cast<std::size_t>(r)];
  }

  for (int round = 0; round < options.max_rounds; ++round) {
    ++best.partitions_tried;
    const TamProblem problem = make_tam_problem(soc, table, widths);
    TamSolveResult solved;
    if (options.exact_assignment) {
      ExactSolverOptions exact;
      exact.max_nodes = options.max_nodes_per_solve;
      solved = solve_exact(problem, exact);
    } else {
      solved = solve_greedy_lpt(problem);
    }
    best.total_nodes += solved.nodes;
    if (!solved.feasible) break;
    if (!best.feasible || solved.assignment.makespan < best.assignment.makespan) {
      best.feasible = true;
      best.bus_widths = widths;
      best.assignment = solved.assignment;
      best.search_mode = solved.search_mode;
    }
    // Re-allocate widths optimally for this assignment.
    const WidthAllocation allocation = allocate_widths_dp(
        table, solved.assignment.core_to_bus, num_buses, total_width);
    if (!allocation.feasible) break;
    if (allocation.makespan >= best.assignment.makespan &&
        allocation.bus_widths == widths) {
      break;  // fixed point
    }
    if (allocation.bus_widths == widths) break;  // no width change: converged
    widths = allocation.bus_widths;
  }
  // The alternating scheme is a heuristic: it proves nothing.
  best.proved_optimal = false;
  return best;
}

}  // namespace soctest
