#pragma once

#include "common/rng.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"

namespace soctest {

/// Longest-processing-time-first list scheduling, constraint-aware:
/// co-assignment groups are contracted, items sorted by decreasing minimum
/// test time, each placed on the allowed bus minimizing the resulting load
/// (ties: lower wiring cost). The wiring budget is respected greedily; when
/// no bus fits within the remaining budget the cheapest-wire bus is taken
/// and the result may be infeasible (feasible = false).
TamSolveResult solve_greedy_lpt(const TamProblem& problem);

struct SaSolverOptions {
  int iterations = 50000;
  double initial_temperature = 0.0;  ///< 0 = auto (scaled to makespan)
  double cooling = 0.9997;
  std::uint64_t seed = 1;
  /// Penalty per wiring-budget overflow unit, in cycles.
  double wire_penalty = 1000.0;
  /// Optional cooperative cancellation (portfolio racing): checked every
  /// iteration; on cancel the best assignment seen so far is returned.
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline (anytime mode): the annealing loop stops
  /// when it expires and returns the best assignment seen so far.
  Deadline deadline;
};

/// Simulated-annealing baseline: starts from greedy LPT, perturbs by moving
/// one item to another allowed bus or swapping two items across buses.
/// Objective: makespan + wire_penalty * budget overflow. Returns the best
/// *feasible* assignment seen (falls back to infeasible-best otherwise).
TamSolveResult solve_sa(const TamProblem& problem,
                        const SaSolverOptions& options = {});

}  // namespace soctest
