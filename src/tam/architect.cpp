#include "tam/architect.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "pack/exact_pack.hpp"
#include "pack/skyline.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/portfolio.hpp"
#include "tam/timing.hpp"

namespace soctest {

namespace {

/// Maps a packed-strip solve onto the DesignResult shape: one "bus" as wide
/// as the strip, every core on it, the schedule in pack_placements.
void fill_pack_result(DesignResult& result, std::size_t num_cores, int strip,
                      PackSolveResult solved) {
  result.feasible = solved.feasible;
  result.proved_optimal = solved.proved_optimal;
  result.bus_widths = {strip};
  result.assignment.core_to_bus.assign(num_cores, 0);
  result.assignment.makespan = solved.makespan;
  result.partitions_tried = 1;
  result.total_nodes = solved.nodes;
  result.stop = solved.stop;
  result.search_mode = SearchMode::kNone;
  result.certificate = solved.certificate;
  result.pack_placements = std::move(solved.placements);
}

void report_pack_progress(const DesignRequest& request,
                          const DesignResult& result, Cycles lower_bound) {
  if (!request.progress || !result.feasible) return;
  SolveProgress snapshot;
  snapshot.bus_widths = result.bus_widths;
  snapshot.t_cycles = static_cast<long long>(result.assignment.makespan);
  snapshot.lower_bound =
      lower_bound > 0 ? static_cast<long long>(lower_bound) : -1;
  request.progress(snapshot);
}

}  // namespace

DesignResult design_architecture(const Soc& soc, const DesignRequest& request) {
  const std::string soc_err = soc.validate();
  if (!soc_err.empty()) throw std::invalid_argument("invalid SOC: " + soc_err);

  // The rectangle-packing formulation replaces the whole fixed-bus flow:
  // no bus partition exists, so layout and per-bus ATE depth constraints
  // cannot apply to it.
  if (request.solver == InnerSolver::kPack ||
      request.solver == InnerSolver::kPackExact) {
    if (request.use_layout || request.d_max >= 0 || request.wire_budget >= 0) {
      throw std::invalid_argument(
          "--solver pack/pack-exact does not support layout constraints");
    }
    if (request.ate_depth_limit >= 0) {
      throw std::invalid_argument(
          "--solver pack/pack-exact does not support --ate-depth");
    }
    const int strip =
        request.bus_widths.empty()
            ? request.total_width
            : std::accumulate(request.bus_widths.begin(),
                              request.bus_widths.end(), 0);
    if (strip < 1) throw std::invalid_argument("pack: empty strip");
    const TestTimeTable& table = cached_test_time_table(soc, strip);
    const PackProblem problem =
        make_pack_problem(soc, table, strip, request.p_max_mw);
    PackSolveResult solved;
    if (request.solver == InnerSolver::kPack) {
      PackSolverOptions options;
      options.cancel = request.cancel;
      options.deadline = request.deadline;
      solved = solve_pack(problem, options);
    } else {
      PackExactOptions options;
      options.max_nodes = request.max_nodes;
      options.cancel = request.cancel;
      options.deadline = request.deadline;
      solved = solve_pack_exact(problem, options);
    }
    DesignResult result;
    fill_pack_result(result, soc.num_cores(), strip, std::move(solved));
    report_pack_progress(request, result, problem.lower_bound());
    return result;
  }

  const bool needs_layout =
      request.use_layout || request.d_max >= 0 || request.wire_budget >= 0;
  const int num_buses = request.bus_widths.empty()
                            ? request.num_buses
                            : static_cast<int>(request.bus_widths.size());

  std::optional<BusPlan> plan;
  std::optional<LayoutConstraints> layout;
  if (needs_layout) {
    if (!soc.has_placement()) {
      throw std::invalid_argument(
          "layout constraints requested but the SOC has no placement");
    }
    plan = plan_buses(soc, num_buses);
    layout.emplace(*plan, soc.num_cores(), request.d_max);
  }

  const int max_width = request.bus_widths.empty()
                            ? request.total_width - (num_buses - 1)
                            : *std::max_element(request.bus_widths.begin(),
                                                request.bus_widths.end());
  const TestTimeTable& table = cached_test_time_table(soc, std::max(1, max_width));

  // With a live deadline or cancellation source, kExact alone could expire
  // with no incumbent at all; the portfolio's greedy floor guarantees a
  // feasible answer whenever one exists, so it becomes the degradation
  // chain for anytime requests (docs/robustness.md).
  const bool anytime = request.deadline.finite() || request.cancel != nullptr;
  InnerSolver solver = request.solver;
  if (anytime && solver == InnerSolver::kExact) solver = InnerSolver::kPortfolio;

  DesignResult result;
  if (request.bus_widths.empty()) {
    WidthPartitionOptions options;
    options.solver = solver;
    options.max_nodes_per_solve = request.max_nodes;
    options.threads = request.threads;
    options.power_mode = request.power_mode;
    options.bus_depth_limit = request.ate_depth_limit;
    options.cancel = request.cancel;
    options.deadline = request.deadline;
    options.progress = request.progress;
    // Portfolio width searches without layout/ATE constraints additionally
    // race the rectangle-packing formulation; the packing wins only on a
    // strictly smaller makespan, so every pre-pack answer is preserved.
    // Explicitly requested portfolio only: the anytime kExact reroute keeps
    // its pre-pack behavior (a deadline must not change which formulation a
    // --solver exact run answers with).
    const bool race_pack = request.solver == InnerSolver::kPortfolio &&
                           request.pack_race && !needs_layout &&
                           request.ate_depth_limit < 0 &&
                           request.total_width >= 1;
    ArchitectureResult arch;
    bool pack_won = false;
    if (race_pack) {
      const TestTimeTable& pack_table =
          cached_test_time_table(soc, request.total_width);
      const PackProblem pack_problem =
          make_pack_problem(soc, pack_table, request.total_width,
                            request.p_max_mw);
      PackSolverOptions pack_options;
      pack_options.cancel = request.cancel;
      pack_options.deadline = request.deadline;
      FormulationRaceResult race = race_formulations(
          [&] {
            return optimize_widths(soc, table, num_buses, request.total_width,
                                   nullptr, request.wire_budget,
                                   request.p_max_mw, options);
          },
          pack_problem, pack_options);
      arch = std::move(race.fixed);
      if (race.pack_won) {
        pack_won = true;
        fill_pack_result(result, soc.num_cores(), request.total_width,
                         std::move(race.pack));
        result.partitions_tried += arch.partitions_tried;
        result.total_nodes += arch.total_nodes;
        report_pack_progress(request, result, pack_problem.lower_bound());
      }
    } else {
      arch = optimize_widths(soc, table, num_buses, request.total_width,
                             layout ? &*layout : nullptr, request.wire_budget,
                             request.p_max_mw, options);
    }
    if (!pack_won) {
      result.feasible = arch.feasible;
      result.proved_optimal = arch.proved_optimal;
      result.bus_widths = arch.bus_widths;
      result.assignment = arch.assignment;
      result.partitions_tried = arch.partitions_tried;
      result.total_nodes = arch.total_nodes;
      result.stop = arch.stop;
      result.search_mode = arch.search_mode;
      result.certificate = arch.certificate;
    }
  } else {
    const TamProblem problem =
        make_tam_problem(soc, table, request.bus_widths,
                         layout ? &*layout : nullptr, request.wire_budget,
                         request.p_max_mw, request.power_mode,
                         request.ate_depth_limit);
    // Streaming requests get the greedy floor as a first incumbent before
    // the real solve starts: even a single-partition request then produces
    // at least one partial whenever a feasible assignment exists. The
    // greedy result is reported only — it never warm-starts the solver, so
    // a progress callback cannot change the solve itself.
    long long progress_best = -1;
    const auto report_progress = [&](const TamSolveResult& incumbent) {
      if (!request.progress || !incumbent.feasible) return;
      const auto makespan =
          static_cast<long long>(incumbent.assignment.makespan);
      if (progress_best >= 0 && makespan >= progress_best) return;
      progress_best = makespan;
      SolveProgress snapshot;
      snapshot.bus_widths = request.bus_widths;
      snapshot.t_cycles = makespan;
      const Cycles lb = problem.lower_bound();
      snapshot.lower_bound = lb > 0 ? static_cast<long long>(lb) : -1;
      request.progress(snapshot);
    };
    if (request.progress && solver != InnerSolver::kGreedy) {
      report_progress(solve_greedy_lpt(problem));
    }
    TamSolveResult solved;
    bool have_certificate = false;
    switch (solver) {
      case InnerSolver::kExact: {
        ExactSolverOptions options;
        options.max_nodes = request.max_nodes;
        options.threads = request.threads;
        options.cancel = request.cancel;
        options.deadline = request.deadline;
        solved = solve_exact(problem, options);
        break;
      }
      case InnerSolver::kIlp: {
        MipOptions options;
        options.cancel = request.cancel;
        options.deadline = request.deadline;
        solved = solve_ilp(problem, options);
        break;
      }
      case InnerSolver::kGreedy:
        solved = solve_greedy_lpt(problem);
        break;
      case InnerSolver::kSa: {
        SaSolverOptions options;
        options.cancel = request.cancel;
        options.deadline = request.deadline;
        solved = solve_sa(problem, options);
        break;
      }
      case InnerSolver::kPortfolio: {
        PortfolioOptions options;
        options.max_nodes = request.max_nodes;
        options.threads = request.threads;
        options.cancel = request.cancel;
        options.deadline = request.deadline;
        const PortfolioResult race = solve_portfolio(problem, options);
        solved = race.best;
        result.certificate = race.certificate;
        have_certificate = true;
        break;
      }
    }
    report_progress(solved);
    result.feasible = solved.feasible;
    result.proved_optimal = solved.proved_optimal;
    result.bus_widths = request.bus_widths;
    result.assignment = solved.assignment;
    result.partitions_tried = 1;
    result.total_nodes = solved.nodes;
    result.stop = solved.stop;
    result.search_mode = solved.search_mode;
    if (!have_certificate) {
      if (!result.feasible) {
        result.certificate = certify_infeasible(
            /*proven=*/solved.proved_optimal, solved.stop);
      } else if (result.proved_optimal) {
        result.certificate = certify_optimal(
            static_cast<long long>(result.assignment.makespan));
      } else {
        const auto makespan =
            static_cast<long long>(result.assignment.makespan);
        const Cycles lb = problem.lower_bound();
        result.certificate =
            lb > 0 ? certify_bounded(makespan, static_cast<long long>(lb),
                                     solved.stop)
                   : certify_feasible(makespan, solved.stop);
      }
    }
  }

  result.bus_plan = std::move(plan);
  if (result.feasible && layout) {
    result.stub_wirelength =
        layout->assignment_wirelength(result.assignment.core_to_bus);
  }
  return result;
}

std::string describe_design(const Soc& soc, const DesignRequest& request,
                            const DesignResult& result) {
  std::ostringstream out;
  out << "SOC " << soc.name() << ": " << soc.num_cores() << " cores\n";
  out << "constraints:";
  if (request.d_max >= 0) out << " d_max=" << request.d_max;
  if (request.wire_budget >= 0) out << " wire_budget=" << request.wire_budget;
  if (request.p_max_mw >= 0) out << " p_max=" << request.p_max_mw << "mW";
  if (request.d_max < 0 && request.wire_budget < 0 && request.p_max_mw < 0) {
    out << " none";
  }
  out << "\n";
  if (!result.feasible) {
    out << "NO FEASIBLE ARCHITECTURE FOUND\n";
    out << "status=" << result.certificate.to_string() << "\n";
    return out.str();
  }
  out << "system test time: " << result.assignment.makespan << " cycles"
      << (result.proved_optimal ? " (optimal)" : " (heuristic)") << "\n";
  out << "status=" << result.certificate.to_string() << "\n";
  if (!result.pack_placements.empty()) {
    // Rectangle-packing formulation: no buses exist; report the packed
    // schedule (wires x, width w, cycles [start, end)) per core instead.
    out << "packed strip: width "
        << (result.bus_widths.empty() ? 0 : result.bus_widths.front())
        << "\n";
    for (const PackPlacement& p : result.pack_placements) {
      out << "  " << soc.core(p.core).name << ": wires [" << p.x << ","
          << p.x + p.width << ") cycles [" << p.start << "," << p.end
          << ")\n";
    }
    return out.str();
  }
  for (std::size_t j = 0; j < result.bus_widths.size(); ++j) {
    out << "  bus " << j << " (width " << result.bus_widths[j] << "):";
    Cycles load = 0;
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      if (result.assignment.core_to_bus[i] == static_cast<int>(j)) {
        out << " " << soc.core(i).name;
      }
    }
    // Report the bus load via a second pass with the test time table.
    const TestTimeTable& table = cached_test_time_table(soc, result.bus_widths[j]);
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      if (result.assignment.core_to_bus[i] == static_cast<int>(j)) {
        load += table.time(i, result.bus_widths[j]);
      }
    }
    out << "  [load " << load << "]\n";
  }
  if (result.bus_plan) {
    out << "trunk wirelength: " << result.bus_plan->total_trunk_length()
        << ", stub wirelength: " << result.stub_wirelength << "\n";
  }
  return out.str();
}

}  // namespace soctest
