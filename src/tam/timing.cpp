#include "tam/timing.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <string>

namespace soctest {

TestTimeTableMemo& test_time_table_memo() {
  // Unbounded (capacity 0): entries are pinned so the references
  // cached_test_time_table hands out stay valid for the process lifetime.
  static TestTimeTableMemo memo(/*capacity=*/0, /*num_shards=*/8);
  return memo;
}

const TestTimeTable& cached_test_time_table(const Soc& soc, int max_width,
                                            PartitionHeuristic heuristic) {
  std::ostringstream key;
  key << max_width << '|' << static_cast<int>(heuristic) << '|'
      << soc_table_fingerprint(soc);
  return *test_time_table_memo().get_or_create(key.str(), [&] {
    return TestTimeTable(soc, max_width, heuristic);
  });
}

std::vector<double> bus_clock_periods_ns(const BusPlan& plan,
                                         const std::vector<int>& assignment,
                                         const TamClockModel& model) {
  std::vector<int> max_stub(plan.num_buses(), 0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    const int bus = assignment[i];
    if (bus < 0 || static_cast<std::size_t>(bus) >= plan.num_buses()) {
      throw std::invalid_argument("assignment references unknown bus");
    }
    const int d = plan.distance(i, static_cast<std::size_t>(bus));
    if (d < 0) {
      throw std::invalid_argument("core " + std::to_string(i) +
                                  " unreachable from its bus");
    }
    max_stub[static_cast<std::size_t>(bus)] =
        std::max(max_stub[static_cast<std::size_t>(bus)], d);
  }
  std::vector<double> periods(plan.num_buses(), model.base_period_ns);
  for (std::size_t j = 0; j < plan.num_buses(); ++j) {
    const int critical = plan.buses[j].trunk.length() + max_stub[j];
    periods[j] += model.per_cell_ns * critical;
  }
  return periods;
}

double wall_clock_test_time_ns(const TamProblem& problem, const BusPlan& plan,
                               const std::vector<int>& assignment,
                               const TamClockModel& model) {
  const auto periods = bus_clock_periods_ns(plan, assignment, model);
  std::vector<Cycles> load(problem.num_buses(), 0);
  for (std::size_t i = 0; i < problem.num_cores(); ++i) {
    const auto j = static_cast<std::size_t>(assignment[i]);
    load[j] += problem.time[i][j];
  }
  double worst = 0.0;
  for (std::size_t j = 0; j < problem.num_buses(); ++j) {
    worst = std::max(worst, static_cast<double>(load[j]) * periods[j]);
  }
  return worst;
}

}  // namespace soctest
