#pragma once

#include <functional>

#include "layout/constraints.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {

/// Which inner assignment solver the width-partition search runs per
/// candidate width vector. kPortfolio races greedy-LPT, SA, and the exact
/// solver concurrently (see tam/portfolio.hpp) — and, on width-search
/// requests without layout/ATE constraints, additionally races the
/// rectangle-packing formulation (src/pack). kPack/kPackExact live in the
/// same enum so one CLI flag / service field names every solver, but they
/// switch the whole solve to the packing formulation instead of picking an
/// inner assignment solver (tam/architect.cpp routes them before the width
/// search).
enum class InnerSolver { kExact, kIlp, kGreedy, kSa, kPortfolio, kPack, kPackExact };

/// CLI-facing name of an inner solver ("exact", "ilp", ...), matching the
/// --solver flag values; used by reports and the run ledger.
const char* inner_solver_name(InnerSolver solver);

/// Snapshot of an improving incumbent, pushed through the optional
/// progress callback as the anytime search finds better architectures
/// (the solve service streams these as soctest-partial-v1 records).
struct SolveProgress {
  std::vector<int> bus_widths;
  long long t_cycles = -1;
  /// Valid global lower bound for the whole search; -1 when none exists.
  long long lower_bound = -1;
};

/// Called on the solving thread, zero or more times per solve, each call
/// with a strictly better (smaller t_cycles) incumbent than the last.
using ProgressFn = std::function<void(const SolveProgress&)>;

struct WidthPartitionOptions {
  InnerSolver solver = InnerSolver::kExact;
  /// Worker threads for the exact solver's root-splitting search and the
  /// portfolio race. 1 = serial, 0 = auto (default_thread_count()).
  int threads = 1;
  /// Try every distinct permutation of each width multiset onto the buses.
  /// Only meaningful when buses are distinguishable (layout constraints make
  /// them so); forced on automatically in that case.
  bool permute_widths = false;
  /// Node budget passed to the exact inner solver; < 0 unlimited.
  long long max_nodes_per_solve = -1;
  /// How p_max_mw is encoded (pairwise serialization vs bus-max-sum).
  PowerConstraintMode power_mode = PowerConstraintMode::kPairwiseSerialization;
  /// ATE vector-memory depth limit per bus; -1 disables.
  Cycles bus_depth_limit = -1;
  /// Optional cooperative cancellation: checked between partitions and
  /// inside every inner solve.
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline shared by the whole width search. On
  /// expiry the enumeration stops and the best architecture found so far is
  /// returned with a certificate bounding its gap. Partitions whose exact
  /// solve was cut short fall back to a greedy assignment so a deadline
  /// never turns a solvable partition into a silent skip.
  Deadline deadline;
  /// Optional incumbent-improvement callback (see ProgressFn). Invoked
  /// between inner solves on the calling thread; an empty function (the
  /// default) costs nothing.
  ProgressFn progress;
};

/// The output of architecture-level optimization: the chosen bus widths and
/// the core assignment achieving the best makespan.
struct ArchitectureResult {
  bool feasible = false;
  bool proved_optimal = false;  ///< every partition solved to optimality
  std::vector<int> bus_widths;
  TamAssignment assignment;
  long long partitions_tried = 0;
  long long total_nodes = 0;
  /// Why the search stopped early; kNone when every partition was examined.
  StopReason stop = StopReason::kNone;
  /// Execution strategy of the inner solve that produced the winning
  /// assignment (SearchMode::kNone for heuristic inner solvers).
  SearchMode search_mode = SearchMode::kNone;
  /// Quality certificate: optimal when the enumeration completed with every
  /// inner solve proven, feasible_bounded (gap vs the width-relaxed lower
  /// bound) when interrupted, infeasible when nothing was found.
  SolveCertificate certificate;
};

/// Enumerates all partitions of `total_width` into `num_buses` positive
/// widths (non-increasing to kill bus symmetry; optionally permuted when
/// buses are distinguishable) and solves the constrained assignment problem
/// for each, returning the architecture with the minimum test time.
///
/// This is the "architecture design" layer of the paper: the ILP assigns
/// cores for *given* bus widths; this search chooses the widths themselves.
ArchitectureResult optimize_widths(const Soc& soc, const TestTimeTable& table,
                                   int num_buses, int total_width,
                                   const LayoutConstraints* layout = nullptr,
                                   long long wire_budget = -1,
                                   double p_max_mw = -1.0,
                                   const WidthPartitionOptions& options = {});

/// All partitions of `total` into exactly `parts` positive non-increasing
/// integers (helper exposed for tests; count grows polynomially for fixed
/// `parts`).
std::vector<std::vector<int>> width_partitions(int total, int parts);

}  // namespace soctest
