#include "tam/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/obs.hpp"
#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max();

struct Item {
  std::vector<std::size_t> cores;
  std::vector<Cycles> time;     // per bus; kInfCycles when not allowed
  std::vector<long long> wire;  // per bus
  Cycles min_time = 0;
  double max_power = 0.0;  // max member power (bus-max-sum constraint)
};

/// Σ_j max power over an item-space assignment (0 when unconstrained).
double bus_max_power_sum(const TamProblem& problem,
                         const std::vector<Item>& items,
                         const std::vector<int>& item_bus) {
  if (problem.bus_power_budget < 0) return 0.0;
  std::vector<double> bus_max(problem.num_buses(), 0.0);
  for (std::size_t k = 0; k < items.size(); ++k) {
    auto& m = bus_max[static_cast<std::size_t>(item_bus[k])];
    m = std::max(m, items[k].max_power);
  }
  double sum = 0.0;
  for (double m : bus_max) sum += m;
  return sum;
}

std::vector<Item> contract_items(const TamProblem& problem) {
  const std::size_t n = problem.num_cores();
  const std::size_t b = problem.num_buses();
  std::vector<char> grouped(n, 0);
  std::vector<Item> items;
  auto make_item = [&](std::vector<std::size_t> cores) {
    Item item;
    item.cores = std::move(cores);
    item.time.assign(b, 0);
    item.wire.assign(b, 0);
    for (std::size_t j = 0; j < b; ++j) {
      for (std::size_t core : item.cores) {
        if (!problem.allowed[core][j]) {
          item.time[j] = kInfCycles;
          break;
        }
        item.time[j] += problem.time[core][j];
        if (!problem.wire_cost.empty()) item.wire[j] += problem.wire_cost[core][j];
      }
      if (item.time[j] == kInfCycles) item.wire[j] = 0;
    }
    item.min_time = kInfCycles;
    for (std::size_t j = 0; j < b; ++j) {
      if (item.time[j] != kInfCycles) item.min_time = std::min(item.min_time, item.time[j]);
    }
    if (!problem.core_power_mw.empty()) {
      for (std::size_t core : item.cores) {
        item.max_power = std::max(item.max_power, problem.core_power_mw[core]);
      }
    }
    return item;
  };
  for (const auto& group : problem.co_groups) {
    for (std::size_t core : group) grouped[core] = 1;
    items.push_back(make_item(group));
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!grouped[i]) items.push_back(make_item({i}));
  }
  return items;
}

TamSolveResult assemble(const TamProblem& problem,
                        const std::vector<Item>& items,
                        const std::vector<int>& item_bus, long long nodes) {
  TamSolveResult result;
  result.nodes = nodes;
  result.assignment.core_to_bus.assign(problem.num_cores(), -1);
  for (std::size_t k = 0; k < items.size(); ++k) {
    if (item_bus[k] < 0) return result;  // unplaceable item: infeasible
    for (std::size_t core : items[k].cores) {
      result.assignment.core_to_bus[core] = item_bus[k];
    }
  }
  result.assignment.makespan = problem.makespan(result.assignment.core_to_bus);
  result.feasible = problem.check_assignment(result.assignment.core_to_bus).empty();
  return result;
}

}  // namespace

TamSolveResult solve_greedy_lpt(const TamProblem& problem) {
  if (obs::enabled()) obs::counter("tam.greedy.solves").add(1);
  auto items = contract_items(problem);
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.min_time > b.min_time; });
  const std::size_t b = problem.num_buses();
  std::vector<Cycles> load(b, 0);
  std::vector<double> bus_max(b, 0.0);
  double power_sum = 0.0;
  long long wire_used = 0;
  std::vector<int> item_bus(items.size(), -1);
  for (std::size_t k = 0; k < items.size(); ++k) {
    const Item& item = items[k];
    int best_j = -1;
    bool best_feasible = false;
    for (std::size_t j = 0; j < b; ++j) {
      if (item.time[j] == kInfCycles) continue;
      const bool in_budget = problem.wire_budget < 0 ||
                             wire_used + item.wire[j] <= problem.wire_budget;
      const bool power_fits =
          problem.bus_power_budget < 0 ||
          power_sum + std::max(bus_max[j], item.max_power) - bus_max[j] <=
              problem.bus_power_budget + 1e-9;
      const bool depth_fits = problem.bus_depth_limit < 0 ||
                              load[j] + item.time[j] <= problem.bus_depth_limit;
      const bool feasible = in_budget && power_fits && depth_fits;
      auto better = [&] {
        if (best_j < 0) return true;
        if (feasible != best_feasible) return feasible;  // prefer feasible
        const auto jb = static_cast<std::size_t>(best_j);
        const Cycles lj = load[j] + item.time[j];
        const Cycles lb = load[jb] + item.time[jb];
        if (lj != lb) return lj < lb;
        return item.wire[j] < item.wire[jb];
      };
      if (better()) {
        best_j = static_cast<int>(j);
        best_feasible = feasible;
      }
    }
    if (best_j < 0) {
      // Item has no allowed bus at all; leave unassigned -> infeasible.
      return assemble(problem, items, item_bus, static_cast<long long>(k));
    }
    const auto jb = static_cast<std::size_t>(best_j);
    item_bus[k] = best_j;
    load[jb] += item.time[jb];
    wire_used += item.wire[jb];
    power_sum += std::max(bus_max[jb], item.max_power) - bus_max[jb];
    bus_max[jb] = std::max(bus_max[jb], item.max_power);
  }
  return assemble(problem, items, item_bus, static_cast<long long>(items.size()));
}

TamSolveResult solve_sa(const TamProblem& problem, const SaSolverOptions& options) {
  obs::Span span("tam.sa.solve", {{"iterations", options.iterations}});
  auto items = contract_items(problem);
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.min_time > b.min_time; });
  const std::size_t b = problem.num_buses();

  // Seed from the greedy solution expressed in item space.
  std::vector<int> item_bus(items.size(), -1);
  {
    std::vector<Cycles> load(b, 0);
    for (std::size_t k = 0; k < items.size(); ++k) {
      int best_j = -1;
      for (std::size_t j = 0; j < b; ++j) {
        if (items[k].time[j] == kInfCycles) continue;
        if (best_j < 0 || load[j] + items[k].time[j] <
                              load[static_cast<std::size_t>(best_j)] +
                                  items[k].time[static_cast<std::size_t>(best_j)]) {
          best_j = static_cast<int>(j);
        }
      }
      if (best_j < 0) return assemble(problem, items, item_bus, 0);
      item_bus[k] = best_j;
      load[static_cast<std::size_t>(best_j)] += items[k].time[static_cast<std::size_t>(best_j)];
    }
  }

  auto evaluate = [&](const std::vector<int>& assignment) -> double {
    std::vector<Cycles> load(b, 0);
    long long wire = 0;
    for (std::size_t k = 0; k < items.size(); ++k) {
      const auto j = static_cast<std::size_t>(assignment[k]);
      load[j] += items[k].time[j];
      wire += items[k].wire[j];
    }
    const Cycles makespan = *std::max_element(load.begin(), load.end());
    double cost = static_cast<double>(makespan);
    if (problem.wire_budget >= 0 && wire > problem.wire_budget) {
      cost += options.wire_penalty *
              static_cast<double>(wire - problem.wire_budget);
    }
    if (problem.bus_power_budget >= 0) {
      const double power = bus_max_power_sum(problem, items, assignment);
      if (power > problem.bus_power_budget) {
        cost += options.wire_penalty * (power - problem.bus_power_budget);
      }
    }
    if (problem.bus_depth_limit >= 0) {
      for (Cycles l : load) {
        if (l > problem.bus_depth_limit) {
          cost += options.wire_penalty *
                  static_cast<double>(l - problem.bus_depth_limit);
        }
      }
    }
    return cost;
  };
  auto in_budget = [&](const std::vector<int>& assignment) {
    if (problem.wire_budget >= 0) {
      long long wire = 0;
      for (std::size_t k = 0; k < items.size(); ++k) {
        wire += items[k].wire[static_cast<std::size_t>(assignment[k])];
      }
      if (wire > problem.wire_budget) return false;
    }
    if (problem.bus_power_budget >= 0 &&
        bus_max_power_sum(problem, items, assignment) >
            problem.bus_power_budget + 1e-9) {
      return false;
    }
    if (problem.bus_depth_limit >= 0) {
      std::vector<Cycles> load(problem.num_buses(), 0);
      for (std::size_t k = 0; k < items.size(); ++k) {
        const auto j = static_cast<std::size_t>(assignment[k]);
        load[j] += items[k].time[j];
      }
      for (Cycles l : load) {
        if (l > problem.bus_depth_limit) return false;
      }
    }
    return true;
  };

  Rng rng(options.seed);
  double cost = evaluate(item_bus);
  std::vector<int> best_feasible;
  double best_feasible_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_any = item_bus;
  double best_any_cost = cost;
  if (in_budget(item_bus)) {
    best_feasible = item_bus;
    best_feasible_cost = cost;
  }
  double temperature = options.initial_temperature > 0
                           ? options.initial_temperature
                           : std::max(1.0, cost * 0.05);
  long long moves = 0;
  long long accepted = 0;
  StopCheck stop_check(options.deadline, options.cancel,
                       failpoint::sites::kSaIter);
  for (int it = 0; it < options.iterations; ++it) {
    if (stop_check.should_stop()) break;
    std::vector<int> candidate = item_bus;
    if (items.size() >= 2 && rng.bernoulli(0.3)) {
      // Swap the buses of two items (when mutually allowed).
      const std::size_t a = rng.index(items.size());
      std::size_t c = rng.index(items.size());
      if (a == c) c = (c + 1) % items.size();
      const auto ja = static_cast<std::size_t>(candidate[a]);
      const auto jc = static_cast<std::size_t>(candidate[c]);
      if (ja == jc || items[a].time[jc] == kInfCycles ||
          items[c].time[ja] == kInfCycles) {
        continue;
      }
      std::swap(candidate[a], candidate[c]);
    } else {
      // Move one item to a different allowed bus.
      const std::size_t a = rng.index(items.size());
      const std::size_t j = rng.index(b);
      if (static_cast<int>(j) == candidate[a] || items[a].time[j] == kInfCycles) {
        continue;
      }
      candidate[a] = static_cast<int>(j);
    }
    ++moves;
    const double cand_cost = evaluate(candidate);
    const double delta = cand_cost - cost;
    if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
      ++accepted;
      item_bus = std::move(candidate);
      cost = cand_cost;
      if (cost < best_any_cost) {
        best_any_cost = cost;
        best_any = item_bus;
      }
      if (cost < best_feasible_cost && in_budget(item_bus)) {
        best_feasible_cost = cost;
        best_feasible = item_bus;
      }
    }
    temperature *= options.cooling;
  }
  if (obs::enabled()) {
    obs::counter("tam.sa.solves").add(1);
    obs::counter("tam.sa.moves").add(moves);
    obs::counter("tam.sa.accepted").add(accepted);
  }
  if (span.active()) {
    span.arg({"moves", moves});
    span.arg({"accepted", accepted});
  }
  const auto& chosen = best_feasible.empty() ? best_any : best_feasible;
  TamSolveResult result = assemble(problem, items, chosen, moves);
  result.stop = stop_check.reason();
  return result;
}

}  // namespace soctest
