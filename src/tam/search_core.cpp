#include "tam/search_core.hpp"

#include <algorithm>
#include <numeric>

namespace soctest {
namespace exactcore {

namespace {

/// Deterministic subgradient fit of the simplex multipliers. Maximizes
/// L(lambda) = sum_i min_{j allowed} lambda_j t_ij over the probability
/// simplex by projected subgradient steps with a fixed schedule, keeping the
/// best iterate. Admissibility never depends on the fit quality — any point
/// of the simplex yields a valid bound — so a handful of iterations is
/// enough to adapt the weights to heterogeneous bus widths.
void fit_lagrangian(CoreTables& t) {
  const std::size_t n = t.num_items;
  const std::size_t b = t.num_buses;
  t.lambda.assign(b, b == 0 ? 0.0 : 1.0 / static_cast<double>(b));
  if (n == 0 || b == 0) {
    t.lambda_time.assign(n * b, 0.0);
    t.lambda_min.assign(n, 0.0);
    t.lambda_suffix.assign(n + 1, 0.0);
    return;
  }

  const auto evaluate = [&](const std::vector<double>& lambda,
                            std::vector<double>* grad) {
    if (grad) grad->assign(b, 0.0);
    double value = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_j = b;
      for (std::size_t j = 0; j < b; ++j) {
        const Cycles cycles = t.time[k * b + j];
        if (cycles == kInfCycles) continue;
        const double weighted = lambda[j] * static_cast<double>(cycles);
        if (weighted < best) {  // ties keep the lowest bus: deterministic
          best = weighted;
          best_j = j;
        }
      }
      if (best_j == b) continue;  // no allowed bus: contributes nothing
      value += best;
      if (grad) (*grad)[best_j] += static_cast<double>(t.time[k * b + best_j]);
    }
    return value;
  };

  std::vector<double> lambda = t.lambda;
  std::vector<double> best_lambda = lambda;
  std::vector<double> grad;
  double best_value = evaluate(lambda, nullptr);
  constexpr int kIterations = 24;
  for (int iter = 0; iter < kIterations; ++iter) {
    evaluate(lambda, &grad);
    double mean = 0.0;
    for (double g : grad) mean += g;
    mean /= static_cast<double>(b);
    double norm = 0.0;
    for (double g : grad) norm = std::max(norm, std::abs(g - mean));
    if (norm <= 0.0) break;  // gradient is radial: lambda is stationary
    const double step = 0.5 / (norm * static_cast<double>(iter + 1));
    double sum = 0.0;
    for (std::size_t j = 0; j < b; ++j) {
      lambda[j] = std::max(0.0, lambda[j] + step * (grad[j] - mean));
      sum += lambda[j];
    }
    if (sum <= 0.0) break;
    for (double& l : lambda) l /= sum;
    const double value = evaluate(lambda, nullptr);
    if (value > best_value) {
      best_value = value;
      best_lambda = lambda;
    }
  }
  t.lambda = best_lambda;

  t.lambda_time.assign(n * b, std::numeric_limits<double>::infinity());
  t.lambda_min.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < b; ++j) {
      const Cycles cycles = t.time[k * b + j];
      if (cycles == kInfCycles) continue;
      const double weighted = t.lambda[j] * static_cast<double>(cycles);
      t.lambda_time[k * b + j] = weighted;
      best = std::min(best, weighted);
    }
    t.lambda_min[k] = std::isfinite(best) ? best : 0.0;
  }
  t.lambda_suffix.assign(n + 1, 0.0);
  for (std::size_t k = n; k-- > 0;) {
    t.lambda_suffix[k] = t.lambda_suffix[k + 1] + t.lambda_min[k];
  }
}

}  // namespace

CoreTables build_core_tables(const TamProblem& problem) {
  CoreTables t;
  const std::size_t n = problem.num_cores();
  const std::size_t b = problem.num_buses();
  t.num_buses = b;
  t.masked = b <= 64;
  t.has_wire = !problem.wire_cost.empty();
  t.has_power =
      problem.bus_power_budget >= 0 && !problem.core_power_mw.empty();

  // Assemble items (co-assignment groups contracted, then ungrouped cores)
  // in the same construction order as ever, so the canonical stable sort
  // below reproduces the historical branching sequence.
  std::vector<char> grouped(n, 0);
  std::vector<std::vector<std::size_t>> cores_of;
  for (const auto& group : problem.co_groups) {
    for (std::size_t core : group) grouped[core] = 1;
    cores_of.push_back(group);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!grouped[i]) cores_of.push_back({i});
  }
  const std::size_t m = cores_of.size();
  t.num_items = m;

  std::vector<Cycles> time(m * b, 0);
  std::vector<long long> wire(m * b, 0);
  std::vector<Cycles> min_time(m, kInfCycles);
  std::vector<long long> min_wire(m, kInfWire);
  std::vector<double> max_power(m, 0.0);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < b; ++j) {
      bool ok = true;
      Cycles cycles = 0;
      long long wires = 0;
      for (std::size_t core : cores_of[k]) {
        if (!problem.allowed[core][j]) {
          ok = false;
          break;
        }
        cycles += problem.time[core][j];
        if (t.has_wire) wires += problem.wire_cost[core][j];
      }
      time[k * b + j] = ok ? cycles : kInfCycles;
      wire[k * b + j] = ok ? wires : 0;
      if (ok) {
        min_time[k] = std::min(min_time[k], cycles);
        min_wire[k] = std::min(min_wire[k], wires);
      }
    }
    if (!problem.core_power_mw.empty()) {
      for (std::size_t core : cores_of[k]) {
        max_power[k] = std::max(max_power[k], problem.core_power_mw[core]);
      }
    }
  }

  // Big items first; stable on ties so the order is a pure function of the
  // problem (the witness-pass determinism guarantee leans on this).
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t c) {
                     return min_time[a] > min_time[c];
                   });

  t.time.resize(m * b);
  t.wire.resize(m * b);
  t.min_time.resize(m);
  t.min_wire.resize(m);
  t.max_power.resize(m);
  t.allowed.assign(m, 0);
  t.item_cores.resize(m);
  for (std::size_t k = 0; k < m; ++k) {
    const std::size_t src = order[k];
    std::copy_n(time.begin() + static_cast<std::ptrdiff_t>(src * b), b,
                t.time.begin() + static_cast<std::ptrdiff_t>(k * b));
    std::copy_n(wire.begin() + static_cast<std::ptrdiff_t>(src * b), b,
                t.wire.begin() + static_cast<std::ptrdiff_t>(k * b));
    t.min_time[k] = min_time[src];
    t.min_wire[k] = min_wire[src];
    t.max_power[k] = max_power[src];
    t.item_cores[k] = std::move(cores_of[src]);
    if (t.masked) {
      std::uint64_t mask = 0;
      for (std::size_t j = 0; j < b; ++j) {
        if (t.time[k * b + j] != kInfCycles) mask |= std::uint64_t{1} << j;
      }
      t.allowed[k] = mask;
    }
  }

  t.suffix_min_time.assign(m + 1, 0);
  t.suffix_min_wire.assign(m + 1, 0);
  for (std::size_t k = m; k-- > 0;) {
    t.suffix_min_time[k] =
        t.suffix_min_time[k + 1] +
        (t.min_time[k] == kInfCycles ? 0 : t.min_time[k]);
    t.suffix_min_wire[k] = t.suffix_min_wire[k + 1] +
                           (t.min_wire[k] == kInfWire ? 0 : t.min_wire[k]);
  }

  // Bus symmetry classes: identical time and wire columns are
  // interchangeable, so an item may open at most one empty bus per class.
  t.bus_class.assign(b, -1);
  int next_class = 0;
  for (std::size_t j = 0; j < b; ++j) {
    if (t.bus_class[j] >= 0) continue;
    t.bus_class[j] = next_class;
    for (std::size_t j2 = j + 1; j2 < b; ++j2) {
      if (t.bus_class[j2] >= 0) continue;
      bool same = true;
      for (std::size_t k = 0; k < m; ++k) {
        if (t.time[k * b + j] != t.time[k * b + j2] ||
            t.wire[k * b + j] != t.wire[k * b + j2]) {
          same = false;
          break;
        }
      }
      if (same) t.bus_class[j2] = next_class;
    }
    ++next_class;
  }
  t.num_classes = next_class;
  if (t.masked) {
    t.class_mask.assign(static_cast<std::size_t>(next_class), 0);
    for (std::size_t j = 0; j < b; ++j) {
      t.class_mask[static_cast<std::size_t>(t.bus_class[j])] |=
          std::uint64_t{1} << j;
    }
  }

  fit_lagrangian(t);
  return t;
}

}  // namespace exactcore

Cycles exact_search_lower_bound(const TamProblem& problem) {
  const exactcore::CoreTables t = exactcore::build_core_tables(problem);
  if (t.num_items == 0 || t.num_buses == 0) return 0;
  const auto b = static_cast<Cycles>(t.num_buses);
  const Cycles spread = (t.suffix_min_time[0] + b - 1) / b;
  Cycles item_min = 0;
  for (std::size_t k = 0; k < t.num_items; ++k) {
    if (t.min_time[k] == exactcore::kInfCycles) continue;
    item_min = std::max(item_min, t.min_time[k]);
  }
  const Cycles lag = exactcore::lagrangian_ceil(t.lambda_suffix[0]);
  return std::max({spread, item_min, lag});
}

}  // namespace soctest
