#pragma once

#include <optional>
#include <string>

#include "layout/bus_planner.hpp"
#include "layout/constraints.hpp"
#include "pack/pack_problem.hpp"
#include "tam/width_partition.hpp"

namespace soctest {

/// One-call facade over the whole flow: wrapper test-time modeling, bus
/// trunk planning, constraint extraction, and constrained architecture
/// optimization. This is the public API the examples exercise.
struct DesignRequest {
  /// Explicit bus widths; when empty, `num_buses`/`total_width` drive a
  /// width-partition search instead.
  std::vector<int> bus_widths;
  int num_buses = 2;
  int total_width = 32;

  /// Place-and-route constraint: maximum core-to-trunk detour distance in
  /// grid edges; -1 disables (assignments unrestricted by layout). Requires
  /// the SOC to be placed.
  int d_max = -1;
  /// Total stub wiring budget (grid edges); -1 disables.
  long long wire_budget = -1;
  /// Enables layout-based wire costs / routing even when d_max and
  /// wire_budget are off (so the report can show wirelength).
  bool use_layout = false;

  /// Test power ceiling in mW; -1 disables the power constraint.
  double p_max_mw = -1.0;
  /// How p_max_mw is encoded: the paper's pairwise serialization (exact for
  /// B=2) or the bus-max-sum extension (sound for any B).
  PowerConstraintMode power_mode = PowerConstraintMode::kPairwiseSerialization;

  /// ATE vector-memory depth per TAM channel (cycles); -1 disables. Caps
  /// every bus's total test length.
  Cycles ate_depth_limit = -1;

  InnerSolver solver = InnerSolver::kExact;
  /// Whether a kPortfolio width search may additionally race the
  /// rectangle-packing formulation (see tam/portfolio.hpp). Callers that
  /// realize power at the schedule level (--idle-insertion) turn this off:
  /// a packed winner would bypass the idle-insertion scheduler.
  bool pack_race = true;
  long long max_nodes = -1;
  /// Worker threads for the exact solver's root-splitting search and the
  /// portfolio race. 1 = serial, 0 = auto (default_thread_count()). Any
  /// value yields identical results for solves that complete (the exact
  /// solver's determinism guarantee).
  int threads = 1;
  /// Optional cooperative cancellation observed by every long-running stage.
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline (anytime mode, --time-limit-ms). With a
  /// finite deadline the kExact solver is routed through the portfolio so a
  /// greedy floor incumbent always exists; the result's certificate reports
  /// the achieved optimality gap.
  Deadline deadline;
  /// Optional incumbent-improvement callback (tam/width_partition.hpp).
  /// The width search reports each improving architecture; an explicit
  /// bus_widths request reports the greedy floor first and the solved
  /// assignment when it improves on it. Runs on the solving thread.
  ProgressFn progress;
};

struct DesignResult {
  bool feasible = false;
  bool proved_optimal = false;
  std::vector<int> bus_widths;
  TamAssignment assignment;
  /// Planned bus routes when layout was used.
  std::optional<BusPlan> bus_plan;
  /// Total stub wirelength of the chosen assignment (layout runs only).
  long long stub_wirelength = 0;
  long long partitions_tried = 0;
  long long total_nodes = 0;
  /// Why the solve stopped early; kNone for a run to completion.
  StopReason stop = StopReason::kNone;
  /// Execution strategy of the solve that produced the winning assignment
  /// (serial/parallel for exact searches, kNone for heuristics).
  SearchMode search_mode = SearchMode::kNone;
  /// Quality certificate for the returned architecture (docs/robustness.md).
  SolveCertificate certificate;
  /// Non-empty when the rectangle-packing formulation produced the result
  /// (--solver pack / pack-exact, or a portfolio formulation-race win):
  /// the packed schedule, sorted by (start, x). bus_widths then holds the
  /// single strip width and every core maps to "bus" 0.
  std::vector<PackPlacement> pack_placements;
};

/// Runs the full TAM architecture design flow on `soc`.
/// Throws std::runtime_error for structurally infeasible constraint sets
/// (unconnectable core, over-budget core power).
DesignResult design_architecture(const Soc& soc, const DesignRequest& request);

/// Multi-line human-readable report of a design (architecture, per-bus core
/// lists with test times, wirelength, constraint recap).
std::string describe_design(const Soc& soc, const DesignRequest& request,
                            const DesignResult& result);

}  // namespace soctest
