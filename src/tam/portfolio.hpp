#pragma once

#include <functional>
#include <string>

#include "pack/skyline.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/width_partition.hpp"

namespace soctest {

struct PortfolioOptions {
  /// Worker threads for the race; 0 = auto (default_thread_count()),
  /// clamped to at least 2 so both racers make progress.
  int threads = 0;
  /// Node budget for the exact racer; < 0 unlimited.
  long long max_nodes = -1;
  /// Threads handed to the exact solver's own root-splitting search
  /// (1 = serial exact inside the race).
  int exact_threads = 1;
  /// Optional externally known upper bound, combined with the greedy
  /// incumbent (the tighter wins) before seeding the exact solver.
  Cycles initial_upper_bound = -1;
  BoundMode bound_mode = BoundMode::kFull;
  SaSolverOptions sa;
  /// Optional cooperative cancellation from the caller (Ctrl-C, an outer
  /// race). Both racers observe it; the greedy floor still runs.
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline (anytime mode). The portfolio is the
  /// degradation chain: greedy always supplies a floor incumbent, the racers
  /// honor the deadline, and the certificate reports the achieved gap.
  Deadline deadline;
};

struct PortfolioResult {
  TamSolveResult best;
  /// Which racer supplied `best`: "exact", "greedy", or "sa".
  std::string winner;
  /// The heuristic incumbent fed into the exact solver's warm start
  /// (-1 when greedy found nothing feasible).
  Cycles heuristic_bound = -1;
  long long exact_nodes = 0;
  long long sa_moves = 0;
  /// True when the SA racer was cancelled because the exact solver proved
  /// optimality first.
  bool sa_cancelled = false;
  /// Quality certificate for `best`: optimal when the exact racer completed,
  /// feasible_bounded with a gap against the problem's combinatorial lower
  /// bound when the solve was interrupted, error when every racer faulted.
  SolveCertificate certificate;
};

/// Solver portfolio racing (the parallel-execution layer's front end):
/// greedy-LPT runs first and its makespan seeds the exact solver's warm
/// start (`ExactSolverOptions::initial_upper_bound`); the exact
/// branch-and-bound and simulated annealing then race on a thread pool, and
/// the SA racer is cancelled as soon as optimality is proved. The returned
/// assignment is deterministic whenever the exact racer completes: warm
/// starts do not change the exact solver's witness (see DESIGN.md).
PortfolioResult solve_portfolio(const TamProblem& problem,
                                const PortfolioOptions& options = {});

struct FormulationRaceResult {
  /// The fixed-bus racer's architecture (whatever `solve_fixed` returned).
  ArchitectureResult fixed;
  /// The rectangle-packing racer's result.
  PackSolveResult pack;
  /// True when the packing formulation strictly beat the fixed-bus
  /// makespan (ties keep the fixed-bus answer, preserving the results of
  /// every pre-pack run).
  bool pack_won = false;
};

/// Formulation-level portfolio: races the fixed-bus width search against
/// the rectangle-packing solver (src/pack) on a two-worker pool. Both
/// racers run to completion — each is internally deterministic, so the
/// combined result is bit-identical at any thread count; the pool only
/// buys wall-clock overlap. Emits `tam.portfolio.win_pack` /
/// `tam.portfolio.win_fixed` counters for the scraped stats.
FormulationRaceResult race_formulations(
    const std::function<ArchitectureResult()>& solve_fixed,
    const PackProblem& pack_problem, const PackSolverOptions& pack_options);

}  // namespace soctest
