#pragma once

#include <cstddef>
#include <vector>

#include "soc/soc.hpp"

namespace soctest {

/// Disjoint-set union over core indices; used to merge power-conflicting
/// cores into co-assignment groups.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::size_t find(std::size_t x);
  /// Returns true if the two sets were distinct and are now merged.
  bool unite(std::size_t a, std::size_t b);
  /// Groups with at least `min_size` members, each sorted ascending.
  std::vector<std::vector<std::size_t>> groups(std::size_t min_size = 1);

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
};

/// Pairs (i, k), i < k, whose combined test power exceeds `p_max_mw`. Such
/// cores must not be tested concurrently, i.e. must share a test bus.
std::vector<std::pair<std::size_t, std::size_t>> power_conflict_pairs(
    const Soc& soc, double p_max_mw);

/// Co-assignment groups induced by the conflict pairs (transitive closure);
/// only groups of size >= 2 are returned. p_max_mw < 0 yields no groups.
std::vector<std::vector<std::size_t>> power_co_groups(const Soc& soc,
                                                      double p_max_mw);

/// Cores whose own test power already exceeds the budget — the instance is
/// untestable under that budget regardless of architecture.
std::vector<std::size_t> overbudget_cores(const Soc& soc, double p_max_mw);

}  // namespace soctest
