#include "tam/staircase.hpp"

#include "obs/obs.hpp"

namespace soctest {

Staircase::Staircase(const TestTimeTable& table)
    : max_width_(table.max_width()), num_cores_(table.num_cores()) {
  if (max_width_ < 1 || num_cores_ == 0) {
    // Degenerate tables still get one addressable row of zeros so row()
    // never dereferences an empty buffer.
    max_width_ = max_width_ < 1 ? 1 : max_width_;
    val_.assign(static_cast<std::size_t>(max_width_) *
                    (num_cores_ == 0 ? 1 : num_cores_),
                0);
    return;
  }
  val_.resize(static_cast<std::size_t>(max_width_) * num_cores_);
  for (int w = 1; w <= max_width_; ++w) {
    Cycles* out = val_.data() + static_cast<std::size_t>(w - 1) * num_cores_;
    for (std::size_t i = 0; i < num_cores_; ++i) out[i] = table.time(i, w);
  }
  if (obs::enabled()) {
    obs::counter("tam.exact.staircase.builds").add(1);
    obs::counter("tam.exact.staircase.cells")
        .add(static_cast<long long>(val_.size()));
  }
}

Staircase::RowStats Staircase::row_stats(int width) const {
  const Cycles* r = row(width);
  RowStats stats;
  // Separate accumulators, no data-dependent branches: both reductions
  // vectorize over the contiguous row.
  Cycles total = 0;
  Cycles max_single = 0;
  for (std::size_t i = 0; i < num_cores_; ++i) {
    total += r[i];
    max_single = r[i] > max_single ? r[i] : max_single;
  }
  stats.total = total;
  stats.max_single = max_single;
  return stats;
}

}  // namespace soctest
