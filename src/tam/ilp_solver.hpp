#pragma once

#include "ilp/branch_and_bound.hpp"
#include "ilp/linear_program.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"

namespace soctest {

/// Builds the 0/1 ILP of the DAC 2000 formulation:
///
///   minimize   T
///   subject to Σ_j x_ij = 1                         (each core on one bus)
///              Σ_i t_ij x_ij - T <= 0               (bus load below makespan)
///              x_ij = 0 for forbidden (i,j)         (place-and-route)
///              x_ij - x_kj = 0 per co-group, per j  (power serialization)
///              Σ_ij d_ij x_ij <= L_max              (wiring budget, optional)
///              x_ij ∈ {0,1},  T >= 0
///
/// Forbidden variables are fixed to 0 via bounds rather than omitted so
/// variable indices stay the dense i*B+j layout (T is the last variable).
LinearProgram build_tam_ilp(const TamProblem& problem);

/// Solves the problem through the ILP model and the in-repo branch & bound —
/// the same method the paper used (ILP via lpsolve). Mirrors solve_exact's
/// result contract; cross-checked against solve_exact in the test suite.
TamSolveResult solve_ilp(const TamProblem& problem,
                         const MipOptions& options = {});

}  // namespace soctest
