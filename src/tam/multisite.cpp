#include "tam/multisite.hpp"

#include <stdexcept>

namespace soctest {

std::vector<MultisitePoint> multisite_sweep(const Soc& soc, int ate_channels,
                                            const MultisiteOptions& options) {
  if (ate_channels < options.num_buses) {
    throw std::invalid_argument("tester narrower than one chip's TAM");
  }
  std::vector<MultisitePoint> curve;
  for (int sites = 1; sites <= options.max_sites; ++sites) {
    MultisitePoint point;
    point.sites = sites;
    point.width_per_site = ate_channels / sites;
    if (point.width_per_site < options.num_buses) {
      curve.push_back(point);  // infeasible: can't give each bus a wire
      continue;
    }
    const TestTimeTable table(
        soc, point.width_per_site - (options.num_buses - 1));
    WidthPartitionOptions wp;
    wp.solver = options.solver;
    const ArchitectureResult result = optimize_widths(
        soc, table, options.num_buses, point.width_per_site, nullptr, -1,
        -1.0, wp);
    if (!result.feasible) {
      curve.push_back(point);
      continue;
    }
    point.feasible = true;
    point.test_time = result.assignment.makespan;
    point.throughput_kchips =
        1e6 * static_cast<double>(sites) /
        static_cast<double>(result.assignment.makespan);
    curve.push_back(point);
  }
  return curve;
}

MultisitePoint best_multisite(const Soc& soc, int ate_channels,
                              const MultisiteOptions& options) {
  MultisitePoint best;
  for (const auto& point : multisite_sweep(soc, ate_channels, options)) {
    if (point.feasible &&
        (!best.feasible || point.throughput_kchips > best.throughput_kchips)) {
      best = point;
    }
  }
  return best;
}

}  // namespace soctest
