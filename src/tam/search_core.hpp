#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "tam/tam_problem.hpp"

namespace soctest {
namespace exactcore {

constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max();
constexpr long long kInfWire = std::numeric_limits<long long>::max();

/// Structure-of-arrays tables for the exact TAM branch-and-bound. Built once
/// per problem (and shared read-only by every subtree worker of a parallel
/// solve), they replace the per-node vector-of-struct walks of the old
/// search: flat row-major time/wire matrices, per-item bitset masks of the
/// allowed buses, bus symmetry classes as bitsets, and the precomputed data
/// of the Lagrangian lower bound.
///
/// Item order is canonical and load-bearing: contracted co-assignment groups
/// first (in problem order), then ungrouped cores ascending, stably sorted
/// by descending min_time. Every search phase — serial DFS, LDS probe, root
/// prefix enumeration, subtree search, witness pass — branches over the same
/// item sequence, which is what makes the witness assignment thread-count
/// invariant.
struct CoreTables {
  std::size_t num_items = 0;
  std::size_t num_buses = 0;
  int num_classes = 0;
  bool masked = false;  ///< num_buses <= 64: bitset fast paths are valid
  bool has_wire = false;
  bool has_power = false;

  std::vector<Cycles> time;       ///< [item * num_buses + bus]; kInfCycles = forbidden
  std::vector<long long> wire;    ///< same layout
  std::vector<double> max_power;  ///< per item: max member power (bus-max-sum)
  std::vector<std::uint64_t> allowed;  ///< per item: bit j = bus j assignable
  std::vector<Cycles> min_time;        ///< per item, over allowed buses
  std::vector<long long> min_wire;
  std::vector<Cycles> suffix_min_time;     ///< [num_items + 1]
  std::vector<long long> suffix_min_wire;  ///< [num_items + 1]

  std::vector<int> bus_class;              ///< symmetry class per bus
  std::vector<std::uint64_t> class_mask;   ///< per class: member-bus bits

  /// Lagrangian relaxation of the makespan objective, fit once at the root:
  /// multipliers lambda_j >= 0 with sum 1, so for any completion with final
  /// loads L_j,  sum_j lambda_j L_j <= max_j L_j. Each unassigned item i
  /// contributes at least lambda_min[i] = min_{j allowed} lambda_j t_ij, so
  ///   bound(k) = sum_j lambda_j load_j + lambda_suffix[k]
  /// is an admissible makespan lower bound maintainable in O(1) per node.
  std::vector<double> lambda;         ///< per bus
  std::vector<double> lambda_time;    ///< [item * num_buses + bus]; +inf = forbidden
  std::vector<double> lambda_min;     ///< per item
  std::vector<double> lambda_suffix;  ///< [num_items + 1]

  std::vector<std::vector<std::size_t>> item_cores;  ///< result assembly

  Cycles time_at(std::size_t k, std::size_t j) const {
    return time[k * num_buses + j];
  }
  long long wire_at(std::size_t k, std::size_t j) const {
    return wire[k * num_buses + j];
  }
};

/// Builds the SoA tables (including the Lagrangian fit) from a TamProblem.
CoreTables build_core_tables(const TamProblem& problem);

/// Branch-free candidate kernel: from the item's allowed-bus mask and the
/// mask of currently-empty buses, drops every empty bus that is not the
/// lowest-indexed empty member of its symmetry class. One `e & (e - 1)` per
/// class — no per-bus scan, no per-node allocation.
inline std::uint64_t candidate_mask(const CoreTables& t, std::uint64_t allowed,
                                    std::uint64_t empty_mask) {
  std::uint64_t drop = 0;
  for (int c = 0; c < t.num_classes; ++c) {
    const std::uint64_t e = empty_mask & t.class_mask[static_cast<std::size_t>(c)];
    drop |= e & (e - 1);  // all but the lowest set bit
  }
  return allowed & ~drop;
}

/// Admissible integer ceiling of a floating-point Lagrangian bound value.
/// The margin absorbs accumulated rounding error so the integer bound can
/// never exceed the true bound (over-pruning would break exactness); it can
/// only weaken it by a cycle in pathological near-integer cases.
inline Cycles lagrangian_ceil(double value) {
  if (value <= 0.0) return 0;
  return static_cast<Cycles>(std::ceil(value - 1e-6));
}

}  // namespace exactcore

/// Root lower bound of the exact search's bound hierarchy: the classic
/// width-relaxed bound (max single-item minimum, remaining-work spread)
/// strengthened by the Lagrangian relaxation of the bus-capacity coupling.
/// Admissible: never exceeds the optimal makespan of a feasible problem.
/// Exported for width-partition pruning and for property tests.
Cycles exact_search_lower_bound(const TamProblem& problem);

}  // namespace soctest
