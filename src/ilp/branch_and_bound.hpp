#pragma once

#include <vector>

#include "ilp/linear_program.hpp"
#include "ilp/simplex.hpp"

namespace soctest {

enum class MipStatus { kOptimal, kInfeasible, kNodeLimit, kUnbounded };

struct MipResult {
  MipStatus status = MipStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
  long long nodes_explored = 0;
  /// Best LP bound at termination (== objective when optimal).
  double best_bound = 0.0;
};

struct MipOptions {
  long long max_nodes = 2'000'000;
  double integrality_tolerance = 1e-6;
  /// Gap below which a node is pruned against the incumbent; matters for
  /// integer-valued objectives where a gap < 1 proves optimality.
  double absolute_gap = 1e-6;
  /// Try to build an initial incumbent by rounding the root LP relaxation
  /// (nearest-integer, feasibility-checked, continuous completion
  /// re-optimized). Off by default: ablation A6 measured it neutral to
  /// slightly negative on this repo's model family — best-first search
  /// reaches an equal incumbent within a node or two anyway.
  bool root_rounding = false;
  SimplexOptions simplex;
};

/// Branch & bound over the integer variables of `lp`, using the simplex LP
/// relaxation for bounds. Best-first search; branches on the most fractional
/// integer variable. Minimization.
MipResult solve_mip(const LinearProgram& lp, const MipOptions& options = {});

}  // namespace soctest
