#pragma once

#include <atomic>
#include <vector>

#include "common/parallel.hpp"
#include "ilp/linear_program.hpp"
#include "ilp/simplex.hpp"
#include "runtime/deadline.hpp"

namespace soctest {

enum class MipStatus { kOptimal, kInfeasible, kNodeLimit, kUnbounded };

struct MipResult {
  MipStatus status = MipStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
  long long nodes_explored = 0;
  /// Best LP bound at termination (== objective when optimal).
  double best_bound = 0.0;
  /// Why the search stopped early; kNone when it ran to completion. A
  /// kNodeLimit status with stop == kDeadline/kCancelled was interrupted,
  /// not node-capped.
  StopReason stop = StopReason::kNone;
};

struct MipOptions {
  long long max_nodes = 2'000'000;
  double integrality_tolerance = 1e-6;
  /// Gap below which a node is pruned against the incumbent; matters for
  /// integer-valued objectives where a gap < 1 proves optimality.
  double absolute_gap = 1e-6;
  /// Try to build an initial incumbent by rounding the root LP relaxation
  /// (nearest-integer, feasibility-checked, continuous completion
  /// re-optimized). Off by default: ablation A6 measured it neutral to
  /// slightly negative on this repo's model family — best-first search
  /// reaches an equal incumbent within a node or two anyway.
  bool root_rounding = false;
  SimplexOptions simplex;
  /// Optional cooperative cancellation (portfolio racing). When the token
  /// fires mid-search the solver returns kNodeLimit with its incumbent.
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline (anytime mode). On expiry the solver
  /// returns kNodeLimit with its incumbent and stop = kDeadline; best_bound
  /// stays a valid lower bound for gap reporting.
  Deadline deadline;
  /// Optional racing incumbent shared with concurrent solvers (minimization
  /// objective value). The solver prunes nodes against min(own incumbent,
  /// shared value) and publishes its own improvements back with a CAS-min,
  /// so a bound found by any racer prunes all of them. When pruning by the
  /// shared value leaves the solver without an incumbent of its own, it
  /// reports kNodeLimit (the instance is not proven infeasible).
  std::atomic<double>* shared_incumbent = nullptr;
};

/// Branch & bound over the integer variables of `lp`, using the simplex LP
/// relaxation for bounds. Best-first search; branches on the most fractional
/// integer variable. Minimization.
MipResult solve_mip(const LinearProgram& lp, const MipOptions& options = {});

}  // namespace soctest
