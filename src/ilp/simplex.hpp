#pragma once

#include <vector>

#include "ilp/linear_program.hpp"

namespace soctest {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;     ///< valid when status == kOptimal
  std::vector<double> x;      ///< primal solution (original variable space)
  int iterations = 0;
};

struct SimplexOptions {
  int max_iterations = 200000;
  double tolerance = 1e-9;
};

/// Solves the LP relaxation of `lp` (integrality ignored) with a two-phase
/// dense-tableau simplex using Bland's anti-cycling rule.
///
/// Requirements: every variable must have a finite lower bound (all models in
/// this repo use lower bound 0). Finite upper bounds are handled as rows.
LpResult solve_lp(const LinearProgram& lp, const SimplexOptions& options = {});

}  // namespace soctest
