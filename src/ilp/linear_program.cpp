#include "ilp/linear_program.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace soctest {

int LinearProgram::add_variable(std::string name, double lower, double upper,
                                VarKind kind, double objective) {
  if (kind == VarKind::kBinary) {
    lower = std::max(lower, 0.0);
    upper = std::min(upper, 1.0);
  }
  if (lower > upper + 1e-12) {
    throw std::invalid_argument("variable " + name + " has inverted bounds");
  }
  vars_.push_back(Variable{std::move(name), lower, upper, kind, objective});
  return static_cast<int>(vars_.size()) - 1;
}

int LinearProgram::add_binary(std::string name, double objective) {
  return add_variable(std::move(name), 0.0, 1.0, VarKind::kBinary, objective);
}

int LinearProgram::add_row(std::string name,
                           std::vector<std::pair<int, double>> coeffs,
                           RowSense sense, double rhs) {
  for (const auto& [var, coeff] : coeffs) {
    (void)coeff;
    if (var < 0 || var >= num_variables()) {
      throw std::out_of_range("row " + name + " references unknown variable");
    }
  }
  rows_.push_back(Row{std::move(name), std::move(coeffs), sense, rhs});
  return static_cast<int>(rows_.size()) - 1;
}

void LinearProgram::set_objective(int var, double coeff) {
  vars_.at(static_cast<std::size_t>(var)).objective = coeff;
}

void LinearProgram::set_bounds(int var, double lower, double upper) {
  if (lower > upper + 1e-9) {
    throw std::invalid_argument("set_bounds: inverted interval");
  }
  auto& v = vars_.at(static_cast<std::size_t>(var));
  v.lower = lower;
  v.upper = upper;
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
  double obj = 0.0;
  for (std::size_t i = 0; i < vars_.size(); ++i) obj += vars_[i].objective * x.at(i);
  return obj;
}

bool LinearProgram::is_feasible(const std::vector<double>& x, double tol) const {
  if (x.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (x[i] < vars_[i].lower - tol || x[i] > vars_[i].upper + tol) return false;
    if (vars_[i].kind != VarKind::kContinuous &&
        std::abs(x[i] - std::round(x[i])) > tol) {
      return false;
    }
  }
  for (const auto& row : rows_) {
    double lhs = 0.0;
    for (const auto& [var, coeff] : row.coeffs) {
      lhs += coeff * x[static_cast<std::size_t>(var)];
    }
    switch (row.sense) {
      case RowSense::kLe:
        if (lhs > row.rhs + tol) return false;
        break;
      case RowSense::kGe:
        if (lhs < row.rhs - tol) return false;
        break;
      case RowSense::kEq:
        if (std::abs(lhs - row.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string LinearProgram::to_string() const {
  std::ostringstream out;
  out << "minimize";
  for (const auto& v : vars_) {
    if (v.objective != 0.0) out << " + " << v.objective << " " << v.name;
  }
  out << "\nsubject to\n";
  for (const auto& row : rows_) {
    out << "  " << row.name << ":";
    for (const auto& [var, coeff] : row.coeffs) {
      out << " + " << coeff << " " << vars_[static_cast<std::size_t>(var)].name;
    }
    switch (row.sense) {
      case RowSense::kLe: out << " <= "; break;
      case RowSense::kGe: out << " >= "; break;
      case RowSense::kEq: out << " = "; break;
    }
    out << row.rhs << "\n";
  }
  out << "bounds\n";
  for (const auto& v : vars_) {
    out << "  " << v.lower << " <= " << v.name << " <= " << v.upper;
    if (v.kind != VarKind::kContinuous) out << " integer";
    out << "\n";
  }
  return out.str();
}

}  // namespace soctest
