#include "ilp/simplex.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/obs.hpp"

namespace soctest {

namespace {

/// Dense two-phase tableau. Column layout:
///   [0, n)           shifted structural variables y_i = x_i - lo_i >= 0
///   [n, n+m)         one slack/surplus column per row (surplus has -1)
///   [n+m, n+m+a)     artificial columns (phase 1 only)
/// plus the rhs held separately. Two cost rows are maintained and updated by
/// the same row operations as the body: phase-1 (sum of artificials) and
/// phase-2 (original objective on y).
class Tableau {
 public:
  Tableau(const LinearProgram& lp, const SimplexOptions& options)
      : lp_(lp), opt_(options) {}

  LpResult solve() {
    build();
    LpResult result;
    // Phase 1: drive artificials to zero.
    if (num_artificial_ > 0) {
      const int it1 = iterate(/*phase1=*/true);
      if (it1 < 0) return iteration_limit_result();
      result.iterations += it1;
      if (phase1_objective() > 1e-7) {
        result.status = LpStatus::kInfeasible;
        return result;
      }
      pivot_out_basic_artificials();
    }
    // Phase 2: minimize the true objective.
    const int it2 = iterate(/*phase1=*/false);
    result.iterations += it2 < 0 ? opt_.max_iterations : it2;
    if (it2 < 0) return iteration_limit_result();
    if (unbounded_) {
      result.status = LpStatus::kUnbounded;
      return result;
    }
    result.status = LpStatus::kOptimal;
    result.x = extract_solution();
    result.objective = lp_.objective_value(result.x);
    return result;
  }

 private:
  void build() {
    n_ = lp_.num_variables();
    shift_.resize(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      const auto& v = lp_.variable(i);
      if (!std::isfinite(v.lower)) {
        throw std::invalid_argument(
            "simplex requires finite lower bounds (variable " + v.name + ")");
      }
      shift_[static_cast<std::size_t>(i)] = v.lower;
    }

    // Row list: model rows plus a `y_i <= up_i - lo_i` row per finite upper
    // bound. Each entry: dense coefficient vector over y, sense, rhs.
    struct RawRow {
      std::vector<double> a;
      RowSense sense;
      double rhs;
    };
    std::vector<RawRow> raw;
    for (int r = 0; r < lp_.num_rows(); ++r) {
      const auto& row = lp_.row(r);
      RawRow rr{std::vector<double>(static_cast<std::size_t>(n_), 0.0),
                row.sense, row.rhs};
      for (const auto& [var, coeff] : row.coeffs) {
        rr.a[static_cast<std::size_t>(var)] += coeff;
        rr.rhs -= coeff * shift_[static_cast<std::size_t>(var)];
      }
      raw.push_back(std::move(rr));
    }
    for (int i = 0; i < n_; ++i) {
      const auto& v = lp_.variable(i);
      if (std::isfinite(v.upper)) {
        RawRow rr{std::vector<double>(static_cast<std::size_t>(n_), 0.0),
                  RowSense::kLe, v.upper - v.lower};
        rr.a[static_cast<std::size_t>(i)] = 1.0;
        raw.push_back(std::move(rr));
      }
    }
    m_ = static_cast<int>(raw.size());

    // Normalize rhs >= 0.
    for (auto& rr : raw) {
      if (rr.rhs < 0) {
        for (auto& c : rr.a) c = -c;
        rr.rhs = -rr.rhs;
        rr.sense = rr.sense == RowSense::kLe   ? RowSense::kGe
                   : rr.sense == RowSense::kGe ? RowSense::kLe
                                               : RowSense::kEq;
      }
    }
    num_artificial_ = 0;
    for (const auto& rr : raw) {
      if (rr.sense != RowSense::kLe) ++num_artificial_;
    }
    cols_ = n_ + m_ + num_artificial_;
    // One contiguous buffer, row-major: row r lives at body_[r*cols_ ..).
    // The row operations below run over whole rows in index order, so the
    // flat layout changes neither an FP operation nor its sequence — pivots
    // stay bit-identical to the old vector-of-vectors tableau — while every
    // row walk becomes a linear scan the compiler can vectorize.
    body_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(cols_),
                 0.0);
    rhs_.assign(static_cast<std::size_t>(m_), 0.0);
    basis_.assign(static_cast<std::size_t>(m_), -1);
    is_artificial_.assign(static_cast<std::size_t>(cols_), false);

    int next_art = n_ + m_;
    for (int r = 0; r < m_; ++r) {
      double* row = row_ptr(r);
      const auto& rr = raw[static_cast<std::size_t>(r)];
      for (int i = 0; i < n_; ++i) row[static_cast<std::size_t>(i)] = rr.a[static_cast<std::size_t>(i)];
      rhs_[static_cast<std::size_t>(r)] = rr.rhs;
      const int slack = n_ + r;
      switch (rr.sense) {
        case RowSense::kLe:
          row[static_cast<std::size_t>(slack)] = 1.0;
          basis_[static_cast<std::size_t>(r)] = slack;
          break;
        case RowSense::kGe:
          row[static_cast<std::size_t>(slack)] = -1.0;
          row[static_cast<std::size_t>(next_art)] = 1.0;
          is_artificial_[static_cast<std::size_t>(next_art)] = true;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
        case RowSense::kEq:
          row[static_cast<std::size_t>(next_art)] = 1.0;
          is_artificial_[static_cast<std::size_t>(next_art)] = true;
          basis_[static_cast<std::size_t>(r)] = next_art++;
          break;
      }
    }

    // Cost rows. Phase 2 costs: original objective on y (constant term from
    // the shift is re-added in objective_value()). Phase 1: sum of artificials.
    cost2_.assign(static_cast<std::size_t>(cols_), 0.0);
    for (int i = 0; i < n_; ++i) {
      cost2_[static_cast<std::size_t>(i)] = lp_.variable(i).objective;
    }
    cost2_rhs_ = 0.0;
    cost1_.assign(static_cast<std::size_t>(cols_), 0.0);
    cost1_rhs_ = 0.0;
    for (int c = n_ + m_; c < cols_; ++c) cost1_[static_cast<std::size_t>(c)] = 1.0;
    // Price out the initial basis from both cost rows so reduced costs of
    // basic columns are zero.
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      price_out(cost1_, cost1_rhs_, r, b);
      price_out(cost2_, cost2_rhs_, r, b);
    }
  }

  void price_out(std::vector<double>& cost, double& cost_rhs, int r, int col) {
    const double factor = cost[static_cast<std::size_t>(col)];
    if (factor == 0.0) return;
    const double* row = row_ptr(r);
    for (int c = 0; c < cols_; ++c) cost[static_cast<std::size_t>(c)] -= factor * row[c];
    cost_rhs -= factor * rhs_[static_cast<std::size_t>(r)];
  }

  double phase1_objective() const { return -cost1_rhs_; }

  /// Runs Bland-rule simplex on the given phase's cost row. Returns iteration
  /// count, or -1 on iteration limit. Sets unbounded_ in phase 2.
  int iterate(bool phase1) {
    unbounded_ = false;
    std::vector<double>& cost = phase1 ? cost1_ : cost2_;
    int iters = 0;
    while (true) {
      if (iters >= opt_.max_iterations) return -1;
      // Bland: entering = smallest-index column with negative reduced cost.
      int enter = -1;
      for (int c = 0; c < cols_; ++c) {
        if (!phase1 && is_artificial_[static_cast<std::size_t>(c)]) continue;
        if (cost[static_cast<std::size_t>(c)] < -opt_.tolerance) {
          enter = c;
          break;
        }
      }
      if (enter < 0) return iters;  // optimal for this phase
      // Ratio test; Bland tie-break on smallest basis index.
      int leave = -1;
      double best_ratio = 0.0;
      for (int r = 0; r < m_; ++r) {
        const double a = at(r, enter);
        if (a > opt_.tolerance) {
          const double ratio = rhs_[static_cast<std::size_t>(r)] / a;
          if (leave < 0 || ratio < best_ratio - opt_.tolerance ||
              (ratio < best_ratio + opt_.tolerance &&
               basis_[static_cast<std::size_t>(r)] < basis_[static_cast<std::size_t>(leave)])) {
            leave = r;
            best_ratio = ratio;
          }
        }
      }
      if (leave < 0) {
        if (phase1) {
          // Phase-1 objective is bounded below by 0; cannot be unbounded.
          throw std::logic_error("phase 1 simplex reported unbounded");
        }
        unbounded_ = true;
        return iters;
      }
      pivot(leave, enter);
      ++iters;
    }
  }

  void pivot(int r, int enter) {
    double* prow = row_ptr(r);
    const double p = prow[enter];
    for (int c = 0; c < cols_; ++c) prow[c] /= p;
    rhs_[static_cast<std::size_t>(r)] /= p;
    for (int rr = 0; rr < m_; ++rr) {
      if (rr == r) continue;
      double* row = row_ptr(rr);
      const double f = row[enter];
      if (f == 0.0) continue;
      for (int c = 0; c < cols_; ++c) row[c] -= f * prow[c];
      rhs_[static_cast<std::size_t>(rr)] -= f * rhs_[static_cast<std::size_t>(r)];
    }
    for (auto* cost : {&cost1_, &cost2_}) {
      const double f = (*cost)[static_cast<std::size_t>(enter)];
      if (f == 0.0) continue;
      for (int c = 0; c < cols_; ++c) (*cost)[static_cast<std::size_t>(c)] -= f * prow[c];
      (cost == &cost1_ ? cost1_rhs_ : cost2_rhs_) -= f * rhs_[static_cast<std::size_t>(r)];
    }
    basis_[static_cast<std::size_t>(r)] = enter;
  }

  /// After phase 1, swap any artificial still basic (at level 0) for a
  /// non-artificial column when the row allows it. Rows that are entirely
  /// zero over non-artificial columns are redundant and remain inert.
  void pivot_out_basic_artificials() {
    for (int r = 0; r < m_; ++r) {
      if (!is_artificial_[static_cast<std::size_t>(basis_[static_cast<std::size_t>(r)])]) continue;
      const double* row = row_ptr(r);
      for (int c = 0; c < n_ + m_; ++c) {
        if (std::abs(row[c]) > 1e-7) {
          pivot(r, c);
          break;
        }
      }
    }
  }

  std::vector<double> extract_solution() const {
    std::vector<double> y(static_cast<std::size_t>(n_), 0.0);
    for (int r = 0; r < m_; ++r) {
      const int b = basis_[static_cast<std::size_t>(r)];
      if (b < n_) y[static_cast<std::size_t>(b)] = rhs_[static_cast<std::size_t>(r)];
    }
    std::vector<double> x(static_cast<std::size_t>(n_), 0.0);
    for (int i = 0; i < n_; ++i) {
      x[static_cast<std::size_t>(i)] = y[static_cast<std::size_t>(i)] + shift_[static_cast<std::size_t>(i)];
    }
    return x;
  }

  LpResult iteration_limit_result() const {
    LpResult r;
    r.status = LpStatus::kIterationLimit;
    return r;
  }

  double* row_ptr(int r) {
    return body_.data() +
           static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }
  const double* row_ptr(int r) const {
    return body_.data() +
           static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }
  double at(int r, int c) const { return row_ptr(r)[c]; }

  const LinearProgram& lp_;
  const SimplexOptions& opt_;
  int n_ = 0, m_ = 0, cols_ = 0, num_artificial_ = 0;
  std::vector<double> body_;  ///< row-major m_ x cols_ tableau body
  std::vector<double> rhs_;
  std::vector<int> basis_;
  std::vector<bool> is_artificial_;
  std::vector<double> cost1_, cost2_;
  double cost1_rhs_ = 0.0, cost2_rhs_ = 0.0;
  std::vector<double> shift_;
  bool unbounded_ = false;
};

}  // namespace

LpResult solve_lp(const LinearProgram& lp, const SimplexOptions& options) {
  Tableau tableau(lp, options);
  LpResult result = tableau.solve();
  // One guarded batch per solve (never per pivot): the observability layer
  // must stay invisible on this kernel when disabled.
  if (obs::enabled()) {
    obs::counter("ilp.simplex.solves").add(1);
    obs::counter("ilp.simplex.pivots").add(result.iterations);
  }
  return result;
}

}  // namespace soctest
