#pragma once

#include <limits>
#include <string>
#include <vector>

namespace soctest {

/// Row sense of a linear constraint.
enum class RowSense { kLe, kGe, kEq };

/// Variable domain kind. Binary is integer with bounds clamped to [0,1].
enum class VarKind { kContinuous, kInteger, kBinary };

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A mixed-integer linear program in "minimize" orientation:
///   min  c^T x
///   s.t. a_r^T x  (<= | = | >=)  b_r   for each row r
///        lo_i <= x_i <= up_i
///        x_i integral for integer/binary variables.
///
/// Dense enough for the TAM formulations in this repo (tens to a few hundred
/// variables); rows store sparse coefficient lists.
class LinearProgram {
 public:
  struct Variable {
    std::string name;
    double lower = 0.0;
    double upper = kInf;
    VarKind kind = VarKind::kContinuous;
    double objective = 0.0;
  };

  struct Row {
    std::string name;
    std::vector<std::pair<int, double>> coeffs;  // (variable index, coefficient)
    RowSense sense = RowSense::kLe;
    double rhs = 0.0;
  };

  /// Adds a variable; returns its index.
  int add_variable(std::string name, double lower, double upper,
                   VarKind kind = VarKind::kContinuous, double objective = 0.0);
  int add_binary(std::string name, double objective = 0.0);

  /// Adds a constraint row; returns its index. Coefficients for out-of-range
  /// variable indices throw.
  int add_row(std::string name, std::vector<std::pair<int, double>> coeffs,
              RowSense sense, double rhs);

  void set_objective(int var, double coeff);

  int num_variables() const { return static_cast<int>(vars_.size()); }
  int num_rows() const { return static_cast<int>(rows_.size()); }
  const Variable& variable(int i) const { return vars_.at(static_cast<std::size_t>(i)); }
  const Row& row(int r) const { return rows_.at(static_cast<std::size_t>(r)); }

  /// Tightens a variable's bounds (used by branch & bound). Throws if the
  /// resulting interval is inverted beyond tolerance.
  void set_bounds(int var, double lower, double upper);

  /// Objective value of a given assignment.
  double objective_value(const std::vector<double>& x) const;

  /// True if `x` satisfies all rows and bounds within `tol`.
  bool is_feasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// Human-readable dump (LP-format-ish) for debugging.
  std::string to_string() const;

 private:
  std::vector<Variable> vars_;
  std::vector<Row> rows_;
};

}  // namespace soctest
