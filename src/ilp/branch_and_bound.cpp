#include "ilp/branch_and_bound.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>

#include "obs/obs.hpp"
#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

const char* mip_status_name(MipStatus status) {
  switch (status) {
    case MipStatus::kOptimal:
      return "optimal";
    case MipStatus::kInfeasible:
      return "infeasible";
    case MipStatus::kNodeLimit:
      return "node_limit";
    case MipStatus::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

struct Node {
  double lp_bound;                 // LP relaxation objective (lower bound)
  std::vector<double> lower;       // per-variable bound overrides
  std::vector<double> upper;
  std::vector<double> x;           // LP solution at this node
  bool operator<(const Node& other) const {
    return lp_bound > other.lp_bound;  // min-heap on bound via priority_queue
  }
};

/// Most fractional integer variable, or -1 if the solution is integral.
int pick_branch_variable(const LinearProgram& lp, const std::vector<double>& x,
                         double tol) {
  int best = -1;
  double best_frac_dist = tol;
  for (int i = 0; i < lp.num_variables(); ++i) {
    if (lp.variable(i).kind == VarKind::kContinuous) continue;
    const double v = x[static_cast<std::size_t>(i)];
    const double frac = v - std::floor(v);
    const double dist = std::min(frac, 1.0 - frac);  // distance to integrality
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = i;
    }
  }
  return best;
}

/// Per-solve search tallies, batched into the obs counters once per call so
/// the per-node path stays plain integer increments.
struct MipTally {
  long long pruned_bound = 0;
  long long pruned_infeasible = 0;
  long long incumbents = 0;
  long long bound_cache_hits = 0;  ///< child box already in the bound cache
  long long bound_reused = 0;      ///< cached bound alone pruned the child
  long long bound_tightened = 0;   ///< child LP strictly beat the parent bound
};

MipResult solve_mip_impl(const LinearProgram& lp, const MipOptions& options,
                         MipTally& tally) {
  MipResult result;
  LinearProgram work = lp;  // bounds are mutated per node, then restored

  auto solve_node = [&](const std::vector<double>& lower,
                        const std::vector<double>& upper) -> LpResult {
    for (int i = 0; i < work.num_variables(); ++i) {
      work.set_bounds(i, lower[static_cast<std::size_t>(i)],
                      upper[static_cast<std::size_t>(i)]);
    }
    return solve_lp(work, options.simplex);
  };

  std::vector<double> root_lower, root_upper;
  for (int i = 0; i < lp.num_variables(); ++i) {
    root_lower.push_back(lp.variable(i).lower);
    root_upper.push_back(lp.variable(i).upper);
  }

  const LpResult root = solve_node(root_lower, root_upper);
  ++result.nodes_explored;
  if (root.status == LpStatus::kInfeasible) {
    result.status = MipStatus::kInfeasible;
    return result;
  }
  if (root.status == LpStatus::kUnbounded) {
    result.status = MipStatus::kUnbounded;
    return result;
  }
  if (root.status == LpStatus::kIterationLimit) {
    result.status = MipStatus::kNodeLimit;
    return result;
  }

  std::priority_queue<Node> open;
  open.push(Node{root.objective, root_lower, root_upper, root.x});

  // Bound cache: one entry per bound box ever generated as a child, keyed on
  // the integer variables' (lower, upper) overrides — the only bounds
  // branching mutates. Different branching paths reach identical boxes
  // (x<=1 then y>=2 vs y>=2 then x<=1); a hit means the box's subtree is
  // already in the tree or its cached bound already prunes it, so the LP
  // re-solve is skipped. Sound for exactness because the pruning threshold
  // only decreases over the run: a box prunable at first sight stays
  // prunable, and a duplicate subtree cannot change the optimum. Infeasible
  // boxes are cached with an infinite bound and an infeasibility marker so a
  // re-encounter is tallied as the same kind of prune as the first.
  struct CachedBound {
    double bound;
    bool infeasible;
  };
  std::unordered_map<std::string, CachedBound> bound_cache;
  std::vector<int> cache_vars;
  for (int i = 0; i < lp.num_variables(); ++i) {
    if (lp.variable(i).kind != VarKind::kContinuous) cache_vars.push_back(i);
  }
  const auto box_key = [&](const std::vector<double>& lower,
                           const std::vector<double>& upper) {
    std::string key(cache_vars.size() * 2 * sizeof(double), '\0');
    char* out = key.data();
    for (const int i : cache_vars) {
      std::memcpy(out, &lower[static_cast<std::size_t>(i)], sizeof(double));
      out += sizeof(double);
      std::memcpy(out, &upper[static_cast<std::size_t>(i)], sizeof(double));
      out += sizeof(double);
    }
    return key;
  };

  bool have_incumbent = false;
  double incumbent_obj = 0.0;
  std::vector<double> incumbent_x;
  result.best_bound = root.objective;
  // True when a node was pruned purely by the racing shared incumbent: the
  // search is then truncated, not proven infeasible.
  bool shared_pruned = false;

  // Upper bound for pruning: the tighter of our own incumbent and the racing
  // shared one. Returns +inf when neither exists yet.
  auto pruning_bound = [&]() -> double {
    double bound = std::numeric_limits<double>::infinity();
    if (have_incumbent) bound = incumbent_obj;
    if (options.shared_incumbent) {
      bound = std::min(
          bound, options.shared_incumbent->load(std::memory_order_relaxed));
    }
    return bound;
  };
  auto publish_incumbent = [&](double objective) {
    if (!options.shared_incumbent) return;
    double cur = options.shared_incumbent->load(std::memory_order_relaxed);
    while (objective < cur &&
           !options.shared_incumbent->compare_exchange_weak(
               cur, objective, std::memory_order_relaxed)) {
    }
  };

  if (options.root_rounding) {
    // Nearest-integer rounding of the root relaxation as a warm incumbent.
    std::vector<double> rounded = root.x;
    for (int i = 0; i < lp.num_variables(); ++i) {
      if (lp.variable(i).kind != VarKind::kContinuous) {
        rounded[static_cast<std::size_t>(i)] =
            std::round(rounded[static_cast<std::size_t>(i)]);
      }
    }
    // Re-optimize the continuous variables with integers fixed, so mixed
    // models (e.g. a makespan variable) get a consistent completion.
    std::vector<double> lower = root_lower;
    std::vector<double> upper = root_upper;
    bool in_bounds = true;
    for (int i = 0; i < lp.num_variables() && in_bounds; ++i) {
      if (lp.variable(i).kind == VarKind::kContinuous) continue;
      const double v = rounded[static_cast<std::size_t>(i)];
      if (v < lower[static_cast<std::size_t>(i)] - 1e-9 ||
          v > upper[static_cast<std::size_t>(i)] + 1e-9) {
        in_bounds = false;
        break;
      }
      lower[static_cast<std::size_t>(i)] = v;
      upper[static_cast<std::size_t>(i)] = v;
    }
    if (in_bounds) {
      const LpResult completed = solve_node(lower, upper);
      ++result.nodes_explored;
      if (completed.status == LpStatus::kOptimal &&
          lp.is_feasible(completed.x, options.integrality_tolerance)) {
        have_incumbent = true;
        incumbent_obj = completed.objective;
        incumbent_x = completed.x;
        publish_incumbent(incumbent_obj);
        ++tally.incumbents;
        if (obs::enabled()) {
          obs::instant("ilp.bb.incumbent",
                       {{"objective", incumbent_obj},
                        {"node", result.nodes_explored},
                        {"source", "root_rounding"}});
        }
      }
    }
  }

  StopCheck stop_check(options.deadline, options.cancel,
                       failpoint::sites::kIlpNode);
  while (!open.empty()) {
    const bool interrupted = stop_check.should_stop();
    if (interrupted || result.nodes_explored >= options.max_nodes) {
      result.status = MipStatus::kNodeLimit;
      result.stop = interrupted ? stop_check.reason() : StopReason::kNodeBudget;
      if (have_incumbent) {
        result.objective = incumbent_obj;
        result.x = std::move(incumbent_x);
      }
      result.best_bound = open.top().lp_bound;
      return result;
    }
    Node node = open.top();
    open.pop();
    result.best_bound = node.lp_bound;
    const double prune_at = pruning_bound();
    if (node.lp_bound >= prune_at - options.absolute_gap) {
      // Best-first: all remaining nodes are at least as bad.
      tally.pruned_bound += static_cast<long long>(open.size()) + 1;
      if (!have_incumbent) shared_pruned = true;
      break;
    }
    const int branch_var =
        pick_branch_variable(lp, node.x, options.integrality_tolerance);
    if (branch_var < 0) {
      // Integral solution.
      if (!have_incumbent || node.lp_bound < incumbent_obj) {
        have_incumbent = true;
        incumbent_obj = node.lp_bound;
        incumbent_x = node.x;
        publish_incumbent(incumbent_obj);
        ++tally.incumbents;
        if (obs::enabled()) {
          obs::instant("ilp.bb.incumbent", {{"objective", incumbent_obj},
                                            {"node", result.nodes_explored}});
        }
      }
      continue;
    }
    const double v = node.x[static_cast<std::size_t>(branch_var)];
    // Down branch: x <= floor(v); up branch: x >= ceil(v).
    for (int dir = 0; dir < 2; ++dir) {
      std::vector<double> lower = node.lower;
      std::vector<double> upper = node.upper;
      if (dir == 0) {
        upper[static_cast<std::size_t>(branch_var)] = std::floor(v);
      } else {
        lower[static_cast<std::size_t>(branch_var)] = std::ceil(v);
      }
      if (lower[static_cast<std::size_t>(branch_var)] >
          upper[static_cast<std::size_t>(branch_var)] + 1e-9) {
        continue;
      }
      const std::string key = box_key(lower, upper);
      if (const auto it = bound_cache.find(key); it != bound_cache.end()) {
        ++tally.bound_cache_hits;
        if (it->second.infeasible) {
          ++tally.pruned_infeasible;
        } else if (it->second.bound >= pruning_bound() - options.absolute_gap) {
          ++tally.bound_reused;
          ++tally.pruned_bound;
          if (!have_incumbent) shared_pruned = true;
        }
        // Otherwise the identical box is already queued elsewhere in the
        // tree: exploring the duplicate could only repeat work.
        continue;
      }
      const LpResult child = solve_node(lower, upper);
      ++result.nodes_explored;
      if (child.status != LpStatus::kOptimal) {
        ++tally.pruned_infeasible;
        bound_cache.emplace(
            key,
            CachedBound{std::numeric_limits<double>::infinity(), true});
        continue;
      }
      bound_cache.emplace(key, CachedBound{child.objective, false});
      if (child.objective > node.lp_bound + options.absolute_gap) {
        ++tally.bound_tightened;
      }
      if (child.objective >= pruning_bound() - options.absolute_gap) {
        ++tally.pruned_bound;
        if (!have_incumbent) shared_pruned = true;
        continue;
      }
      open.push(Node{child.objective, std::move(lower), std::move(upper), child.x});
    }
  }

  if (have_incumbent) {
    result.status = MipStatus::kOptimal;
    result.objective = incumbent_obj;
    result.x = std::move(incumbent_x);
    result.best_bound = incumbent_obj;
  } else {
    // Without an incumbent of our own, pruning by the racing shared bound
    // only shows someone else's solution is at least as good — it does not
    // prove infeasibility.
    result.status = shared_pruned ? MipStatus::kNodeLimit : MipStatus::kInfeasible;
  }
  return result;
}

}  // namespace

MipResult solve_mip(const LinearProgram& lp, const MipOptions& options) {
  obs::Span span("ilp.solve_mip",
                 {{"vars", lp.num_variables()}, {"rows", lp.num_rows()}});
  MipTally tally;
  MipResult result = solve_mip_impl(lp, options, tally);
  if (obs::enabled()) {
    obs::counter("ilp.bb.solves").add(1);
    obs::counter("ilp.bb.nodes").add(result.nodes_explored);
    obs::counter("ilp.bb.pruned_bound").add(tally.pruned_bound);
    obs::counter("ilp.bb.pruned_infeasible").add(tally.pruned_infeasible);
    obs::counter("ilp.bb.incumbents").add(tally.incumbents);
    obs::counter("ilp.bb.bound.cache_hits").add(tally.bound_cache_hits);
    obs::counter("ilp.bb.bound.reused").add(tally.bound_reused);
    obs::counter("ilp.bb.bound.tightened").add(tally.bound_tightened);
    obs::histogram("ilp.bb.nodes_per_solve")
        .observe(static_cast<double>(result.nodes_explored));
  }
  if (span.active()) {
    span.arg({"status", mip_status_name(result.status)});
    span.arg({"nodes", result.nodes_explored});
    span.arg({"objective", result.objective});
    span.arg({"best_bound", result.best_bound});
  }
  return result;
}

}  // namespace soctest
