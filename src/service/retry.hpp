#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/status.hpp"

namespace soctest {

/// Client-side retry knobs, shared by `soctest --client` and
/// `soctest-loadgen` (docs/robustness.md documents the contract).
struct RetryPolicy {
  /// Per-request transmission budget: 1 = send once, never retry. A retry
  /// is safe because responses are matched by id and the server's result
  /// cache makes a resent solve idempotent (same request key → same
  /// outcome; a cache hit differs only in the `cached`/timing envelope,
  /// which serial mode omits).
  int max_attempts = 1;
  /// Exponential backoff between reconnect attempts:
  ///   backoff(k) = min(max_backoff_ms, base_backoff_ms * multiplier^(k-1))
  ///                * (0.5 + 0.5 * jitter(k))
  /// where jitter(k) in [0,1) is splitmix64(jitter_seed ^ k) scaled — fully
  /// deterministic for a fixed seed, so chaos-gate runs reproduce. A
  /// server's explicit `retry_after_ms` advice on an admission rejection
  /// takes precedence over the computed backoff for that resend.
  double base_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
  /// Silence watchdog: with requests outstanding and no bytes from the
  /// server for this long, the connection is presumed half-open (or the
  /// worker hung) and is dropped + re-established; <= 0 disables. Must
  /// exceed the longest expected solve wall time.
  double response_timeout_ms = -1.0;
  std::uint64_t jitter_seed = 1;
  /// Consecutive failed connect() attempts before the batch as a whole
  /// gives up (server genuinely down, not just flaky).
  int max_connect_failures = 10;
};

/// What the retry layer did for one batch (cumulative across run_batch
/// calls on one client). Mirrored into obs counters `client.retry.*`.
struct RetryStats {
  long long attempts = 0;      ///< request transmissions, first sends included
  long long retries = 0;       ///< transmissions beyond a request's first
  long long reconnects = 0;    ///< connections re-established after the first
  double backoff_ms = 0.0;     ///< total time slept in reconnect backoff
  long long rejections_honored = 0;  ///< resends scheduled per retry_after_ms
  long long timeouts = 0;            ///< silence-watchdog connection drops
  long long duplicate_finals = 0;    ///< redundant finals dropped (id matched)
  long long gave_up = 0;  ///< requests that exhausted max_attempts
};

/// The deterministic backoff formula above, exposed pure for tests.
/// `attempt` is 1-based (the k-th backoff event).
double retry_backoff_ms(const RetryPolicy& policy, int attempt);

/// A pipelined JSONL client that survives the fault catalog in
/// docs/robustness.md: reconnects on connection drops and replays
/// unanswered requests, honors retry_after_ms on admission rejections,
/// ignores garbage lines, drops duplicate finals, and bounds every request
/// by the policy's attempt budget. Fault-free behavior is byte-compatible
/// with client_roundtrip(): responses are returned in arrival order, so a
/// serial server yields an identical stream. Single-threaded; the
/// connection persists across run_batch() calls.
class RetryingClient {
 public:
  RetryingClient(std::string endpoint, RetryPolicy policy);
  ~RetryingClient();

  RetryingClient(const RetryingClient&) = delete;
  RetryingClient& operator=(const RetryingClient&) = delete;

  /// Sends every line, returns all response lines (partials + finals) in
  /// arrival order. A request whose attempt budget is exhausted yields a
  /// synthesized ok=false final (code io_error) in place of the server's —
  /// counted in stats().gave_up; run_batch itself fails only when the
  /// server was never reachable at all.
  StatusOr<std::vector<std::string>> run_batch(
      const std::vector<std::string>& request_lines);

  const RetryStats& stats() const { return stats_; }

 private:
  struct Req;
  void close_fd();

  std::string endpoint_;
  RetryPolicy policy_;
  RetryStats stats_;
  int fd_ = -1;
  int backoff_events_ = 0;  ///< k for retry_backoff_ms, client lifetime
  bool ever_connected_ = false;
};

}  // namespace soctest
