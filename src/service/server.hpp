#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace soctest {

/// Server knobs (defaults match docs/service.md).
struct ServiceConfig {
  /// Worker threads; 0 = auto (hardware concurrency, SOCTEST_THREADS
  /// override). Ignored in serial mode.
  int workers = 0;
  /// Admission bound: requests beyond this many queued-or-running jobs are
  /// rejected with retry_after_ms backpressure advice instead of queued.
  std::size_t queue_capacity = 64;
  /// Result-cache entry budget (0 disables eviction, not the cache).
  std::size_t cache_capacity = 512;
  std::size_t cache_shards = 8;
  /// Deterministic mode: requests run in arrival order on the caller's
  /// thread and responses omit timing fields, so a fixed request stream
  /// produces a byte-identical response stream (golden tests).
  bool serial = false;
  /// Backpressure advice attached to queue-full rejections.
  double retry_after_ms = 50.0;
  /// Cap applied to per-request time_limit_ms (and the default when a
  /// request has none); < 0 = no cap. Lets an operator bound worst-case
  /// job occupancy no matter what clients ask for.
  double max_time_limit_ms = -1.0;
  /// When non-empty, append one soctest-ledger-v1 record per completed
  /// solve (docs/observability.md; service records carry no counter set —
  /// the registry is cumulative across a server's lifetime).
  std::string ledger_path;
  /// Socket transports reap a connection that has no request in flight,
  /// nothing buffered in either direction, and no bytes read for this long
  /// (half-open peers and byte-dribbling clients must not hold a slot
  /// forever); <= 0 disables. The stdio transport ignores it. Enforced by
  /// serve_unix_socket/serve_tcp, not the service itself.
  double idle_timeout_ms = -1.0;
};

/// Aggregate service state, from the service's own atomics (the obs
/// `service.*` metrics mirror these; this struct is for tools and tests
/// that have no TraceSession live).
struct ServiceStats {
  long long received = 0;   ///< submit() calls
  long long accepted = 0;   ///< admitted into the queue
  long long rejected = 0;   ///< refused by admission control
  long long completed = 0;  ///< responses delivered for accepted jobs
  long long errors = 0;     ///< responses with ok=false (excluding rejections)
  long long cache_hits = 0;
  long long cache_misses = 0;
};

/// The long-running solve service: bounded job queue + worker pool +
/// result cache. Transport-agnostic — transports (stdio, Unix socket; see
/// transport.hpp) feed request lines into submit() and write out whatever
/// the done callback delivers.
///
/// Threading: submit() may be called from any one producer at a time per
/// transport, and from multiple threads concurrently (tests do). The done
/// callback runs on a worker thread (concurrent mode) or on the caller's
/// thread (serial mode, rejections, and malformed requests); it must be
/// thread-safe and is invoked exactly once per submit().
class SolveService {
 public:
  explicit SolveService(const ServiceConfig& config);
  ~SolveService();  ///< drains outstanding jobs

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Parses and either runs/enqueues one request line or responds
  /// immediately (parse error, admission rejection, draining server).
  ///
  /// `partial`, when provided, receives zero or more soctest-partial-v1
  /// lines for a `"stream":true` request — one per improving incumbent,
  /// gap non-increasing — all delivered before the final `done` line and
  /// on the same thread that will run `done`. Non-streaming requests,
  /// cache hits, rejections, and errors never invoke it.
  void submit(const std::string& line, std::function<void(std::string)> done,
              std::function<void(std::string)> partial = nullptr);

  /// Stops admission and blocks until every accepted job has delivered its
  /// response. Idempotent; submit() after drain() responds with a
  /// resource_exhausted "server draining" rejection.
  void drain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  ServiceStats stats() const;
  ResultCache::Stats cache_stats() const { return cache_.stats(); }
  /// The soctest-stats-v1 scrape answer (role "serve"): cumulative
  /// counters plus the sliding-window req/s and latency percentiles.
  /// Lock-cheap — safe to call from the transport poll loop per probe.
  ServeStatsSnapshot stats_snapshot() const;
  const ServiceConfig& config() const { return config_; }

  /// Current queued-or-running job count (the admission-control measure).
  std::size_t queue_depth() const {
    return static_cast<std::size_t>(
        in_flight_.load(std::memory_order_relaxed));
  }

 private:
  struct Job;
  void run_job(const std::shared_ptr<Job>& job);
  std::string execute(const ServiceRequest& request, bool* cached,
                      const std::function<void(std::string)>& partial);
  void append_service_ledger(const ServiceRequest& request,
                             const SolveOutcome& outcome, double wall_ms);

  ServiceConfig config_;
  ResultCache cache_;
  std::unique_ptr<ThreadPool> pool_;  ///< null in serial mode
  /// Sliding-window telemetry behind stats_snapshot(); direct members (not
  /// registry-interned) because the window is per-service, not global.
  obs::RateCounter req_rate_;
  obs::WindowedHistogram latency_ms_;
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  std::atomic<bool> draining_{false};
  std::atomic<long long> in_flight_{0};
  std::atomic<long long> received_{0};
  std::atomic<long long> accepted_{0};
  std::atomic<long long> rejected_{0};
  std::atomic<long long> completed_{0};
  std::atomic<long long> errors_{0};
};

}  // namespace soctest
