#include "service/transport.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <condition_variable>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/net.hpp"

namespace soctest {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void shutdown_signal_handler(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
}

/// Writes one response line to a shared fd. Lines are written whole under a
/// mutex so concurrent workers cannot interleave bytes; net::write_all
/// tolerates EINTR and nonblocking fds.
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) return;
    std::string buffer = line;
    buffer.push_back('\n');
    if (!net::write_all(fd_, buffer.data(), buffer.size())) {
      failed_ = true;  // reader went away; keep draining jobs regardless
    }
  }

  bool failed() const { return failed_; }

 private:
  int fd_;
  std::mutex mu_;
  bool failed_ = false;
};

/// Incremental line reader over a raw fd, polling so a shutdown signal is
/// noticed between reads (C++ streams retry on EINTR, which would make a
/// blocked getline ignore SIGTERM until the next byte arrives).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next line (without the newline). Returns false on EOF, on a
  /// read error, or once shutdown was requested and the buffer is empty.
  bool next(std::string* line) {
    while (true) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (eof_) {
        if (buffer_.empty()) return false;
        line->swap(buffer_);  // unterminated final line
        buffer_.clear();
        return true;
      }
      if (shutdown_requested()) return false;
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;  // timeout or EINTR: re-check shutdown
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) {
        eof_ = true;
        continue;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Tracks submitted vs answered so a connection (or the stdio stream) can
/// wait until every accepted request has delivered its response before
/// closing — the "no lost jobs" half of graceful drain.
class ResponseBarrier {
 public:
  void submitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
  }
  void answered() {
    std::lock_guard<std::mutex> lock(mu_);
    ++answered_;
    cv_.notify_all();
  }
  void wait_all_answered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return answered_ >= submitted_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  long long submitted_ = 0;
  long long answered_ = 0;
};

/// Pumps one request stream into the service and responses back out.
void pump(SolveService& service, int in_fd, int out_fd) {
  LineReader reader(in_fd);
  LineWriter writer(out_fd);
  ResponseBarrier barrier;
  std::string line;
  while (reader.next(&line)) {
    if (line.empty()) continue;
    barrier.submitted();
    service.submit(
        line,
        [&writer, &barrier](std::string response) {
          writer.write_line(response);
          barrier.answered();
        },
        [&writer](std::string partial) { writer.write_line(partial); });
  }
  barrier.wait_all_answered();
}

/// One multiplexed connection. The poll loop owns reads; whichever worker
/// thread finishes a job writes its response (partials first, then the
/// final line) through the shared LineWriter. The connection closes only
/// once the client half-closed (or the server is draining) AND every
/// submitted request has been answered — per-connection graceful drain.
struct MuxConn {
  explicit MuxConn(int fd) : fd(fd), writer(fd) {}
  int fd;
  LineWriter writer;
  std::string inbuf;
  bool eof = false;
  std::atomic<long long> submitted{0};
  std::atomic<long long> answered{0};

  bool finished() const {
    return eof && answered.load(std::memory_order_acquire) >=
                      submitted.load(std::memory_order_relaxed);
  }
};

void submit_conn_line(SolveService& service,
                      const std::shared_ptr<MuxConn>& conn,
                      const std::string& line) {
  if (line.empty()) return;
  conn->submitted.fetch_add(1, std::memory_order_relaxed);
  service.submit(
      line,
      [conn](std::string response) {
        conn->writer.write_line(response);
        conn->answered.fetch_add(1, std::memory_order_release);
      },
      [conn](std::string partial) { conn->writer.write_line(partial); });
}

/// One read() worth of bytes from a ready connection, split into complete
/// lines and submitted. Level-triggered poll re-arms for any remainder.
void read_conn(SolveService& service, const std::shared_ptr<MuxConn>& conn) {
  char chunk[65536];
  const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn->eof = true;
  } else if (n == 0) {
    conn->eof = true;
  } else {
    conn->inbuf.append(chunk, static_cast<std::size_t>(n));
  }
  std::size_t nl;
  while ((nl = conn->inbuf.find('\n')) != std::string::npos) {
    const std::string line = conn->inbuf.substr(0, nl);
    conn->inbuf.erase(0, nl + 1);
    submit_conn_line(service, conn, line);
  }
  if (conn->eof && !conn->inbuf.empty()) {
    const std::string line = conn->inbuf;  // unterminated final line
    conn->inbuf.clear();
    submit_conn_line(service, conn, line);
  }
}

/// The shared poll loop behind the Unix-socket and TCP servers: accepts
/// connections, reads request lines from every live one, and retires each
/// connection once it is answered out. On shutdown (signal or `stop`) it
/// stops accepting and reading, lets outstanding jobs answer, drains the
/// service, and returns 0. Takes ownership of `listen_fd`.
int serve_listener(SolveService& service, int listen_fd,
                   const std::atomic<bool>* stop) {
  net::set_nonblocking(listen_fd);
  std::vector<std::shared_ptr<MuxConn>> conns;
  bool draining = false;

  while (true) {
    if (!draining &&
        (shutdown_requested() ||
         (stop != nullptr && stop->load(std::memory_order_relaxed)))) {
      draining = true;
    }
    // Retire connections whose every request has been answered. While
    // draining, unread input is deliberately dropped — the contract is
    // "everything submitted gets answered", not "everything buffered".
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [draining](const std::shared_ptr<MuxConn>& c) {
                                 const bool done =
                                     draining
                                         ? c->answered.load(
                                               std::memory_order_acquire) >=
                                               c->submitted.load(
                                                   std::memory_order_relaxed)
                                         : c->finished();
                                 if (done) ::close(c->fd);
                                 return done;
                               }),
                conns.end());
    if (draining && conns.empty()) break;

    std::vector<struct pollfd> pfds;
    std::vector<std::shared_ptr<MuxConn>> polled;
    if (!draining) {
      pfds.push_back({listen_fd, POLLIN, 0});
    }
    for (const auto& conn : conns) {
      if (conn->eof || draining) continue;
      pfds.push_back({conn->fd, POLLIN, 0});
      polled.push_back(conn);
    }
    const int ready =
        ::poll(pfds.empty() ? nullptr : pfds.data(),
               static_cast<nfds_t>(pfds.size()), /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    std::size_t base = 0;
    if (!draining) {
      if ((pfds[0].revents & (POLLIN | POLLERR)) != 0) {
        while (true) {
          const int conn_fd =
              ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
          if (conn_fd < 0) break;  // EAGAIN: accepted everything pending
          net::set_tcp_nodelay(conn_fd);
          conns.push_back(std::make_shared<MuxConn>(conn_fd));
        }
      }
      base = 1;
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if ((pfds[base + i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_conn(service, polled[i]);
      }
    }
  }

  for (const auto& conn : conns) ::close(conn->fd);
  service.drain();
  ::close(listen_fd);
  return 0;
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = shutdown_signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  // A client that disconnects mid-response must not kill the server with
  // SIGPIPE; writes fail with EPIPE and the connection is retired.
  ::signal(SIGPIPE, SIG_IGN);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() { g_shutdown.store(true, std::memory_order_relaxed); }

int serve_stdio(SolveService& service, int in_fd, int out_fd) {
  pump(service, in_fd, out_fd);
  service.drain();
  return 0;
}

int serve_unix_socket(SolveService& service, const std::string& path) {
  net::Endpoint endpoint;
  endpoint.path = path;
  StatusOr<int> listener = net::listen_endpoint(endpoint);
  if (!listener.ok()) return kExitIoError;
  const int code = serve_listener(service, listener.value(), nullptr);
  ::unlink(path.c_str());
  return code;
}

int serve_tcp(SolveService& service, const std::string& endpoint,
              std::atomic<int>* bound_port, const std::atomic<bool>* stop) {
  StatusOr<net::Endpoint> parsed = net::parse_endpoint(endpoint);
  if (!parsed.ok() || !parsed.value().tcp) return kExitIoError;
  int port = 0;
  StatusOr<int> listener = net::listen_endpoint(parsed.value(), &port);
  if (!listener.ok()) return kExitIoError;
  if (bound_port != nullptr) {
    bound_port->store(port, std::memory_order_release);
  }
  return serve_listener(service, listener.value(), stop);
}

StatusOr<std::vector<std::string>> client_roundtrip(
    const std::string& endpoint,
    const std::vector<std::string>& request_lines) {
  StatusOr<net::Endpoint> parsed = net::parse_endpoint(endpoint);
  if (!parsed.ok()) return parsed.status();
  StatusOr<int> connected = net::connect_endpoint(parsed.value());
  if (!connected.ok()) return connected.status();
  const int fd = connected.value();

  std::string out;
  for (const std::string& line : request_lines) {
    out += line;
    out.push_back('\n');
  }
  if (!net::write_all(fd, out.data(), out.size())) {
    ::close(fd);
    return io_error("write failed: " + std::string(std::strerror(errno)));
  }
  ::shutdown(fd, SHUT_WR);

  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_error("read failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::vector<std::string> responses;
  std::size_t start = 0;
  while (start < buffer.size()) {
    std::size_t nl = buffer.find('\n', start);
    if (nl == std::string::npos) nl = buffer.size();
    if (nl > start) responses.push_back(buffer.substr(start, nl - start));
    start = nl + 1;
  }
  return responses;
}

}  // namespace soctest
