#include "service/transport.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <memory>
#include <mutex>
#include <condition_variable>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/net.hpp"
#include "obs/obs.hpp"
#include "service/protocol.hpp"

namespace soctest {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void shutdown_signal_handler(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
}

long long steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Writes one response line to a shared fd. Lines are written whole under a
/// mutex so concurrent workers cannot interleave bytes; net::write_all
/// tolerates EINTR and nonblocking fds. Only the stdio transport uses this
/// (its peer is the parent process' pipe); socket connections buffer and
/// flush from the poll loop instead, so a stalled peer can never park a
/// worker thread inside write().
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) return;
    std::string buffer = line;
    buffer.push_back('\n');
    if (!net::write_all(fd_, buffer.data(), buffer.size())) {
      failed_ = true;  // reader went away; keep draining jobs regardless
    }
  }

  bool failed() const { return failed_; }

 private:
  int fd_;
  std::mutex mu_;
  bool failed_ = false;
};

/// Incremental line reader over a raw fd, polling so a shutdown signal is
/// noticed between reads (C++ streams retry on EINTR, which would make a
/// blocked getline ignore SIGTERM until the next byte arrives). Enforces
/// kMaxProtocolLineBytes: a line that outgrows the cap is discarded up to
/// its terminating newline and surfaced once with *oversized = true.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next line (without the newline). Returns false on EOF, on a
  /// read error, or once shutdown was requested and the buffer is empty.
  bool next(std::string* line, bool* oversized) {
    *oversized = false;
    while (true) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        if (discarding_) {
          buffer_.erase(0, nl + 1);
          discarding_ = false;
          line->clear();
          *oversized = true;
          return true;
        }
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (!discarding_ && buffer_.size() > kMaxProtocolLineBytes) {
        buffer_.clear();
        discarding_ = true;
        continue;
      }
      if (discarding_) buffer_.clear();  // bound the discard buffer too
      if (eof_) {
        if (discarding_) {
          discarding_ = false;
          line->clear();
          *oversized = true;
          return true;
        }
        if (buffer_.empty()) return false;
        line->swap(buffer_);  // unterminated final line
        buffer_.clear();
        return true;
      }
      if (shutdown_requested()) return false;
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;  // timeout or EINTR: re-check shutdown
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) {
        eof_ = true;
        continue;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
  bool discarding_ = false;  ///< swallowing the rest of an oversized line
};

/// Tracks submitted vs answered so a connection (or the stdio stream) can
/// wait until every accepted request has delivered its response before
/// closing — the "no lost jobs" half of graceful drain.
class ResponseBarrier {
 public:
  void submitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
  }
  void answered() {
    std::lock_guard<std::mutex> lock(mu_);
    ++answered_;
    cv_.notify_all();
  }
  void wait_all_answered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return answered_ >= submitted_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  long long submitted_ = 0;
  long long answered_ = 0;
};

/// Pumps one request stream into the service and responses back out.
void pump(SolveService& service, int in_fd, int out_fd) {
  LineReader reader(in_fd);
  LineWriter writer(out_fd);
  ResponseBarrier barrier;
  std::string line;
  bool oversized = false;
  while (reader.next(&line, &oversized)) {
    if (oversized) {
      obs::counter("service.transport.oversized").add();
      writer.write_line(oversized_line_response_json());
      continue;
    }
    if (line.empty()) continue;
    std::string ping_id;
    if (parse_ping(line, &ping_id)) {
      obs::counter("service.transport.pings").add();
      writer.write_line(pong_json(ping_id));
      continue;
    }
    std::string stats_id;
    if (parse_stats_probe(line, &stats_id)) {
      obs::counter("service.transport.stats_probes").add();
      ServeStatsSnapshot snap = service.stats_snapshot();
      snap.id = stats_id;
      writer.write_line(serve_stats_json(snap));
      continue;
    }
    barrier.submitted();
    service.submit(
        line,
        [&writer, &barrier](std::string response) {
          writer.write_line(response);
          barrier.answered();
        },
        [&writer](std::string partial) { writer.write_line(partial); });
  }
  barrier.wait_all_answered();
}

/// One multiplexed connection. The poll loop owns both reads and the
/// socket writes: a worker thread that finishes a job appends its whole
/// response line to `outbuf` under the mutex (so lines never interleave)
/// and pokes the wake pipe; the poll loop flushes on POLLOUT. A peer that
/// stops reading therefore stalls only its own buffer, never a worker
/// thread. The connection closes only once the client half-closed (or the
/// server is draining) AND every submitted request has been answered and
/// flushed — per-connection graceful drain.
struct MuxConn {
  MuxConn(int fd, int wake_fd)
      : fd(fd), wake_fd(wake_fd), last_activity_ms(steady_now_ms()) {}

  int fd;
  int wake_fd;  ///< write end of the poll loop's self-pipe
  std::string inbuf;
  bool eof = false;
  bool overflow = false;  ///< discarding an oversized line until newline
  std::atomic<long long> submitted{0};
  std::atomic<long long> answered{0};
  std::atomic<long long> last_activity_ms;

  std::mutex out_mu;
  std::string outbuf;        ///< guarded by out_mu
  bool write_failed = false;  ///< guarded by out_mu

  /// Queues one whole line (callable from any thread) and wakes the poll
  /// loop if the buffer was idle.
  void queue_line(const std::string& line) {
    bool was_empty = false;
    {
      std::lock_guard<std::mutex> lock(out_mu);
      if (write_failed) return;
      was_empty = outbuf.empty();
      outbuf.append(line);
      outbuf.push_back('\n');
    }
    last_activity_ms.store(steady_now_ms(), std::memory_order_relaxed);
    if (was_empty) {
      const char byte = 0;
      [[maybe_unused]] const ssize_t n = ::write(wake_fd, &byte, 1);
      // EAGAIN (pipe full) is fine: a wake byte is already pending.
    }
  }

  bool has_output() {
    std::lock_guard<std::mutex> lock(out_mu);
    return !outbuf.empty();
  }

  bool failed() {
    std::lock_guard<std::mutex> lock(out_mu);
    return write_failed;
  }

  /// Nonblocking flush from the poll loop. Returns false once the peer is
  /// gone (the connection keeps accounting, drops output).
  bool flush() {
    std::lock_guard<std::mutex> lock(out_mu);
    while (!outbuf.empty()) {
      const ssize_t n = ::write(fd, outbuf.data(), outbuf.size());
      if (n > 0) {
        outbuf.erase(0, static_cast<std::size_t>(n));
        last_activity_ms.store(steady_now_ms(), std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
      write_failed = true;
      outbuf.clear();
      return false;
    }
    return true;
  }

  bool answered_out() const {
    return answered.load(std::memory_order_acquire) >=
           submitted.load(std::memory_order_relaxed);
  }
};

void submit_conn_line(SolveService& service,
                      const std::shared_ptr<MuxConn>& conn,
                      const std::string& line) {
  if (line.empty()) return;
  std::string ping_id;
  if (parse_ping(line, &ping_id)) {
    obs::counter("service.transport.pings").add();
    conn->queue_line(pong_json(ping_id));
    return;
  }
  std::string stats_id;
  if (parse_stats_probe(line, &stats_id)) {
    // Answered from the poll loop like ping/pong: a scrape must see the
    // queue, not stand in it.
    obs::counter("service.transport.stats_probes").add();
    ServeStatsSnapshot snap = service.stats_snapshot();
    snap.id = stats_id;
    conn->queue_line(serve_stats_json(snap));
    return;
  }
  conn->submitted.fetch_add(1, std::memory_order_relaxed);
  service.submit(
      line,
      [conn](std::string response) {
        conn->queue_line(response);
        conn->answered.fetch_add(1, std::memory_order_release);
      },
      [conn](std::string partial) { conn->queue_line(partial); });
}

/// One read() worth of bytes from a ready connection, split into complete
/// lines and submitted. Level-triggered poll re-arms for any remainder.
/// Lines beyond kMaxProtocolLineBytes are answered with one structured
/// error and discarded up to the next newline (stream resync).
void read_conn(SolveService& service, const std::shared_ptr<MuxConn>& conn) {
  char chunk[65536];
  const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    conn->eof = true;
  } else if (n == 0) {
    conn->eof = true;
  } else {
    conn->inbuf.append(chunk, static_cast<std::size_t>(n));
    conn->last_activity_ms.store(steady_now_ms(), std::memory_order_relaxed);
  }
  while (true) {
    if (conn->overflow) {
      const auto nl = conn->inbuf.find('\n');
      if (nl == std::string::npos) {
        conn->inbuf.clear();
        break;
      }
      conn->inbuf.erase(0, nl + 1);
      conn->overflow = false;
    }
    const auto nl = conn->inbuf.find('\n');
    if (nl != std::string::npos) {
      // A complete line can still breach the cap when its newline lands in
      // the same chunk that crossed it — length-check before submitting.
      if (nl > kMaxProtocolLineBytes) {
        conn->inbuf.erase(0, nl + 1);
        obs::counter("service.transport.oversized").add();
        conn->queue_line(oversized_line_response_json());
        continue;
      }
      const std::string line = conn->inbuf.substr(0, nl);
      conn->inbuf.erase(0, nl + 1);
      submit_conn_line(service, conn, line);
      continue;
    }
    if (conn->inbuf.size() > kMaxProtocolLineBytes) {
      conn->overflow = true;
      conn->inbuf.clear();
      obs::counter("service.transport.oversized").add();
      conn->queue_line(oversized_line_response_json());
      continue;
    }
    break;
  }
  if (conn->eof && !conn->inbuf.empty() && !conn->overflow) {
    const std::string line = conn->inbuf;  // unterminated final line
    conn->inbuf.clear();
    submit_conn_line(service, conn, line);
  }
}

/// The shared poll loop behind the Unix-socket and TCP servers: accepts
/// connections, reads request lines from every live one, flushes queued
/// responses, reaps idle peers, and retires each connection once it is
/// answered out and flushed. On shutdown (signal or `stop`) it stops
/// accepting and reading, lets outstanding jobs answer, drains the
/// service, and returns 0. Takes ownership of `listen_fd`.
int serve_listener(SolveService& service, int listen_fd,
                   const std::atomic<bool>* stop) {
  net::set_nonblocking(listen_fd);
  int wake[2] = {-1, -1};
  if (::pipe2(wake, O_CLOEXEC | O_NONBLOCK) != 0) {
    ::close(listen_fd);
    return kExitIoError;
  }
  const double idle_timeout_ms = service.config().idle_timeout_ms;
  std::vector<std::shared_ptr<MuxConn>> conns;
  bool draining = false;

  while (true) {
    if (!draining &&
        (shutdown_requested() ||
         (stop != nullptr && stop->load(std::memory_order_relaxed)))) {
      draining = true;
    }
    const long long now_ms = steady_now_ms();
    // Retire connections whose every request has been answered AND whose
    // responses have left the buffer. While draining, unread input is
    // deliberately dropped — the contract is "everything submitted gets
    // answered", not "everything buffered". Idle peers (no request in
    // flight, nothing buffered, silent past the deadline) are reaped so a
    // half-open or byte-dribbling client cannot hold a slot forever; a
    // stalled reader is reaped on the same deadline once draining, or the
    // drain could never finish.
    conns.erase(
        std::remove_if(
            conns.begin(), conns.end(),
            [&](const std::shared_ptr<MuxConn>& c) {
              const bool failed = c->failed();
              const bool flushed = failed || !c->has_output();
              bool done = c->answered_out() &&
                          (draining ? flushed : flushed && (c->eof || failed));
              if (!done && idle_timeout_ms > 0 &&
                  now_ms - c->last_activity_ms.load(
                               std::memory_order_relaxed) >
                      static_cast<long long>(idle_timeout_ms)) {
                if (c->answered_out() && (draining || !c->eof)) {
                  obs::counter("service.transport.idle_reaped").add();
                  done = true;
                }
              }
              if (done) ::close(c->fd);
              return done;
            }),
        conns.end());
    if (draining && conns.empty()) break;

    std::vector<struct pollfd> pfds;
    std::vector<std::shared_ptr<MuxConn>> polled;
    pfds.push_back({wake[0], POLLIN, 0});
    if (!draining) {
      pfds.push_back({listen_fd, POLLIN, 0});
    }
    for (const auto& conn : conns) {
      short events = 0;
      if (!conn->eof && !draining) events |= POLLIN;
      if (conn->has_output()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({conn->fd, events, 0});
      polled.push_back(conn);
    }
    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                             /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    std::size_t base = 1;
    if ((pfds[0].revents & POLLIN) != 0) {
      char sink[256];
      while (::read(wake[0], sink, sizeof(sink)) > 0) {
      }
    }
    if (!draining) {
      if ((pfds[1].revents & (POLLIN | POLLERR)) != 0) {
        while (true) {
          const int conn_fd = ::accept4(listen_fd, nullptr, nullptr,
                                        SOCK_CLOEXEC | SOCK_NONBLOCK);
          if (conn_fd < 0) break;  // EAGAIN: accepted everything pending
          net::set_tcp_nodelay(conn_fd);
          conns.push_back(std::make_shared<MuxConn>(conn_fd, wake[1]));
        }
      }
      base = 2;
    }
    for (std::size_t i = 0; i < polled.size(); ++i) {
      const short revents = pfds[base + i].revents;
      if ((revents & POLLOUT) != 0) polled[i]->flush();
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !draining) {
        read_conn(service, polled[i]);
      }
    }
  }

  service.drain();
  ::close(wake[0]);
  ::close(wake[1]);
  ::close(listen_fd);
  return 0;
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = shutdown_signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
  // A client that disconnects mid-response must not kill the server with
  // SIGPIPE; writes fail with EPIPE and the connection is retired.
  ::signal(SIGPIPE, SIG_IGN);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() { g_shutdown.store(true, std::memory_order_relaxed); }

int serve_stdio(SolveService& service, int in_fd, int out_fd) {
  pump(service, in_fd, out_fd);
  service.drain();
  return 0;
}

int serve_unix_socket(SolveService& service, const std::string& path) {
  net::Endpoint endpoint;
  endpoint.path = path;
  StatusOr<int> listener = net::listen_endpoint(endpoint);
  if (!listener.ok()) return kExitIoError;
  const int code = serve_listener(service, listener.value(), nullptr);
  ::unlink(path.c_str());
  return code;
}

int serve_tcp(SolveService& service, const std::string& endpoint,
              std::atomic<int>* bound_port, const std::atomic<bool>* stop) {
  StatusOr<net::Endpoint> parsed = net::parse_endpoint(endpoint);
  if (!parsed.ok() || !parsed.value().tcp) return kExitIoError;
  int port = 0;
  StatusOr<int> listener = net::listen_endpoint(parsed.value(), &port);
  if (!listener.ok()) return kExitIoError;
  if (bound_port != nullptr) {
    bound_port->store(port, std::memory_order_release);
  }
  return serve_listener(service, listener.value(), stop);
}

StatusOr<std::vector<std::string>> client_roundtrip(
    const std::string& endpoint,
    const std::vector<std::string>& request_lines) {
  // Fail fast means a status, not a signal: a peer that closes mid-batch
  // must surface as an EPIPE write failure, never a SIGPIPE death.
  ::signal(SIGPIPE, SIG_IGN);
  StatusOr<net::Endpoint> parsed = net::parse_endpoint(endpoint);
  if (!parsed.ok()) return parsed.status();
  StatusOr<int> connected = net::connect_endpoint(parsed.value());
  if (!connected.ok()) return connected.status();
  const int fd = connected.value();

  std::string out;
  for (const std::string& line : request_lines) {
    out += line;
    out.push_back('\n');
  }
  if (!net::write_all(fd, out.data(), out.size())) {
    ::close(fd);
    return io_error("write failed: " + std::string(std::strerror(errno)));
  }
  ::shutdown(fd, SHUT_WR);

  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_error("read failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::vector<std::string> responses;
  std::size_t start = 0;
  while (start < buffer.size()) {
    std::size_t nl = buffer.find('\n', start);
    if (nl == std::string::npos) nl = buffer.size();
    if (nl > start) responses.push_back(buffer.substr(start, nl - start));
    start = nl + 1;
  }
  return responses;
}

}  // namespace soctest
