#include "service/transport.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace soctest {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void shutdown_signal_handler(int) {
  g_shutdown.store(true, std::memory_order_relaxed);
}

/// Writes one response line to a shared fd. Lines are written whole under a
/// mutex so concurrent workers cannot interleave bytes.
class LineWriter {
 public:
  explicit LineWriter(int fd) : fd_(fd) {}

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string buffer = line;
    buffer.push_back('\n');
    std::size_t off = 0;
    while (off < buffer.size()) {
      const ssize_t n =
          ::write(fd_, buffer.data() + off, buffer.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        failed_ = true;
        return;  // reader went away; keep draining jobs regardless
      }
      off += static_cast<std::size_t>(n);
    }
  }

  bool failed() const { return failed_; }

 private:
  int fd_;
  std::mutex mu_;
  bool failed_ = false;
};

/// Incremental line reader over a raw fd, polling so a shutdown signal is
/// noticed between reads (C++ streams retry on EINTR, which would make a
/// blocked getline ignore SIGTERM until the next byte arrives).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next line (without the newline). Returns false on EOF, on a
  /// read error, or once shutdown was requested and the buffer is empty.
  bool next(std::string* line) {
    while (true) {
      const auto nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (eof_) {
        if (buffer_.empty()) return false;
        line->swap(buffer_);  // unterminated final line
        buffer_.clear();
        return true;
      }
      if (shutdown_requested()) return false;
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
      if (ready < 0 && errno != EINTR) return false;
      if (ready <= 0) continue;  // timeout or EINTR: re-check shutdown
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) {
        eof_ = true;
        continue;
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// Tracks submitted vs answered so a connection (or the stdio stream) can
/// wait until every accepted request has delivered its response before
/// closing — the "no lost jobs" half of graceful drain.
class ResponseBarrier {
 public:
  void submitted() {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
  }
  void answered() {
    std::lock_guard<std::mutex> lock(mu_);
    ++answered_;
    cv_.notify_all();
  }
  void wait_all_answered() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return answered_ >= submitted_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  long long submitted_ = 0;
  long long answered_ = 0;
};

/// Pumps one request stream into the service and responses back out.
void pump(SolveService& service, int in_fd, int out_fd) {
  LineReader reader(in_fd);
  LineWriter writer(out_fd);
  ResponseBarrier barrier;
  std::string line;
  while (reader.next(&line)) {
    if (line.empty()) continue;
    barrier.submitted();
    service.submit(line, [&writer, &barrier](std::string response) {
      writer.write_line(response);
      barrier.answered();
    });
  }
  barrier.wait_all_answered();
}

}  // namespace

void install_shutdown_handlers() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = shutdown_signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() { g_shutdown.store(true, std::memory_order_relaxed); }

int serve_stdio(SolveService& service, int in_fd, int out_fd) {
  pump(service, in_fd, out_fd);
  service.drain();
  return 0;
}

int serve_unix_socket(SolveService& service, const std::string& path) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) return kExitIoError;
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) return kExitIoError;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd, 16) < 0) {
    ::close(listen_fd);
    return kExitIoError;
  }

  while (!shutdown_requested()) {
    struct pollfd pfd;
    pfd.fd = listen_fd;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    // One connection at a time: read it to EOF (the client half-closes),
    // answer everything it submitted, then close. A shutdown signal during
    // the connection stops the reader, but every request already submitted
    // still gets its response before the close.
    pump(service, conn_fd, conn_fd);
    ::close(conn_fd);
  }

  service.drain();
  ::close(listen_fd);
  ::unlink(path.c_str());
  return 0;
}

StatusOr<std::vector<std::string>> client_roundtrip(
    const std::string& path, const std::vector<std::string>& request_lines) {
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return invalid_argument_error("socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return io_error("cannot create socket");
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return io_error("cannot connect to " + path + ": " +
                    std::strerror(errno));
  }

  std::string out;
  for (const std::string& line : request_lines) {
    out += line;
    out.push_back('\n');
  }
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_error("write failed: " + std::string(std::strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return io_error("read failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  std::vector<std::string> responses;
  std::size_t start = 0;
  while (start < buffer.size()) {
    std::size_t nl = buffer.find('\n', start);
    if (nl == std::string::npos) nl = buffer.size();
    if (nl > start) responses.push_back(buffer.substr(start, nl - start));
    start = nl + 1;
  }
  return responses;
}

}  // namespace soctest
