#include "service/retry.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include "common/net.hpp"
#include "obs/obs.hpp"
#include "report/json.hpp"
#include "service/protocol.hpp"

namespace soctest {

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string extract_id(const std::string& line) {
  std::optional<JsonValue> doc = parse_json(line);
  if (!doc || !doc->is_object()) return std::string();
  return doc->string_or("id", "");
}

/// Lifts the request's trace context (id + the caller-authored root span
/// guid) so the retry layer can record its attempt spans under it.
void extract_trace(const std::string& line, std::string* trace_id,
                   std::string* span_guid) {
  std::optional<JsonValue> doc = parse_json(line);
  if (!doc || !doc->is_object()) return;
  const JsonValue* trace = doc->find("trace");
  if (trace == nullptr || !trace->is_object()) return;
  *trace_id = trace->string_or("trace_id", "");
  if (trace_id->empty()) return;
  *span_guid = trace->string_or("parent_span", "");
  if (span_guid->empty())
    *span_guid = trace_span_guid(*trace_id, "client.request");
}

double sink_now_us() {
  obs::TraceSink* sink = obs::current_sink();
  return sink != nullptr ? sink->now_us() : -1.0;
}

/// What one received line means to the retry layer.
struct Classified {
  enum Kind { kIgnore, kPartial, kFinal } kind = kIgnore;
  std::string id;
  bool rejection = false;     ///< admission rejection with retry advice
  double retry_after_ms = 0;  ///< valid when rejection
};

Classified classify_line(const std::string& line) {
  Classified c;
  std::optional<JsonValue> doc = parse_json(line);
  if (!doc || !doc->is_object()) return c;  // garbage: ignore
  const std::string schema = doc->string_or("schema", "");
  if (schema == kPartialSchema) {
    c.kind = Classified::kPartial;
    c.id = doc->string_or("id", "");
    return c;
  }
  if (schema != kResponseSchema) return c;  // pong or foreign: ignore
  c.kind = Classified::kFinal;
  c.id = doc->string_or("id", "");
  const JsonValue* ok = doc->find("ok");
  const JsonValue* error = doc->find("error");
  if (ok != nullptr && ok->is_bool() && !ok->boolean && error != nullptr &&
      error->is_object() &&
      error->string_or("code", "") == "resource_exhausted") {
    // rejection_json puts the advice at the top level of the response.
    const JsonValue* advice = doc->find("retry_after_ms");
    if (advice != nullptr && advice->is_number()) {
      c.rejection = true;
      c.retry_after_ms = advice->number;
    }
  }
  return c;
}

}  // namespace

double retry_backoff_ms(const RetryPolicy& policy, int attempt) {
  if (attempt < 1) attempt = 1;
  double raw = policy.base_backoff_ms;
  for (int i = 1; i < attempt && raw < policy.max_backoff_ms; ++i) {
    raw *= policy.backoff_multiplier;
  }
  raw = std::min(raw, policy.max_backoff_ms);
  raw = std::max(raw, 0.0);
  const std::uint64_t bits =
      splitmix64(policy.jitter_seed ^ static_cast<std::uint64_t>(attempt));
  const double frac =
      static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return raw * (0.5 + 0.5 * frac);
}

struct RetryingClient::Req {
  std::string line;
  std::string id;
  int attempts = 0;
  bool outstanding = false;   ///< sent, awaiting its final
  bool done = false;
  double resend_due_ms = -1;  ///< >= 0: resend scheduled (retry_after_ms)
  /// Trace context lifted from the request line (empty = untraced). The
  /// retry layer records one client.request root span (first send to
  /// settle, guid = the line's parent_span) and one client.attempt child
  /// per transmission, so the merged timeline shows every resend.
  std::string trace_id;
  std::string span_guid;
  double first_send_us = -1;    ///< sink time of the first transmission
  double attempt_start_us = -1; ///< open attempt's start; -1 = none open
  int open_attempt = 0;         ///< 1-based number of the open attempt
};

RetryingClient::RetryingClient(std::string endpoint, RetryPolicy policy)
    : endpoint_(std::move(endpoint)), policy_(std::move(policy)) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  // A dropped connection raises SIGPIPE on the next send; the whole point
  // of this layer is to survive that as an EPIPE write failure and
  // reconnect, so the default kill-the-process disposition is useless.
  ::signal(SIGPIPE, SIG_IGN);
}

RetryingClient::~RetryingClient() { close_fd(); }

void RetryingClient::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<std::vector<std::string>> RetryingClient::run_batch(
    const std::vector<std::string>& request_lines) {
  std::vector<Req> reqs;
  reqs.reserve(request_lines.size());
  for (const std::string& line : request_lines) {
    Req r;
    r.line = line;
    r.id = extract_id(line);
    extract_trace(line, &r.trace_id, &r.span_guid);
    reqs.push_back(std::move(r));
  }
  // (req index, line) in arrival order; a resend first erases the previous
  // attempt's buffered partials so the delivered stream stays monotone.
  std::vector<std::pair<std::size_t, std::string>> out;
  std::size_t remaining = reqs.size();
  if (remaining == 0) return std::vector<std::string>();

  std::string inbuf;
  double last_rx_ms = now_ms();
  int consecutive_connect_failures = 0;

  // Closes the open client.attempt span (if any): one span per
  // transmission, sibling children of the request's client.request root.
  const auto close_attempt = [](Req& r) {
    if (r.attempt_start_us < 0) return;
    const double now = sink_now_us();
    if (now >= 0) {
      obs::emit_span(
          "client.attempt", r.attempt_start_us, now - r.attempt_start_us,
          {obs::Arg("trace_id", r.trace_id),
           obs::Arg("span_guid",
                    trace_span_guid(r.trace_id,
                                    "client.attempt." +
                                        std::to_string(r.open_attempt))),
           obs::Arg("parent_guid", r.span_guid),
           obs::Arg("attempt", r.open_attempt)});
    }
    r.attempt_start_us = -1;
  };

  // Settles the trace for a finished request: closes the last attempt and
  // emits the client.request root span (first send to settle) whose guid
  // the request line already advertised as `trace.parent_span`.
  const auto finish_trace = [&close_attempt](Req& r) {
    if (r.trace_id.empty() || r.first_send_us < 0) return;
    close_attempt(r);
    const double now = sink_now_us();
    if (now < 0) return;
    obs::emit_span("client.request", r.first_send_us, now - r.first_send_us,
                   {obs::Arg("trace_id", r.trace_id),
                    obs::Arg("span_guid", r.span_guid),
                    obs::Arg("req_id", r.id),
                    obs::Arg("attempts", r.attempts)});
  };

  const auto give_up = [&](std::size_t idx) {
    Req& r = reqs[idx];
    r.done = true;
    r.outstanding = false;
    r.resend_due_ms = -1;
    finish_trace(r);
    ++stats_.gave_up;
    obs::counter("client.retry.gave_up").add();
    out.emplace_back(
        idx, error_response_json(
                 r.id,
                 io_error("client: retry budget exhausted after " +
                          std::to_string(r.attempts) + " attempts"),
                 /*include_timing=*/false, 0.0, r.trace_id));
    --remaining;
  };

  const auto disconnect = [&]() {
    close_fd();
    inbuf.clear();
    for (Req& r : reqs) {
      if (r.outstanding) r.outstanding = false;  // resent after reconnect
    }
  };

  // false only when the write itself failed (peer gone mid-send).
  const auto send_req = [&](std::size_t idx) -> bool {
    Req& r = reqs[idx];
    if (r.attempts > 0) {
      out.erase(std::remove_if(out.begin(), out.end(),
                               [idx](const auto& e) { return e.first == idx; }),
                out.end());
      ++stats_.retries;
    }
    ++r.attempts;
    ++stats_.attempts;
    obs::counter("client.retry.attempts").add();
    if (!r.trace_id.empty()) {
      close_attempt(r);
      const double now = sink_now_us();
      if (now >= 0) {
        if (r.first_send_us < 0) r.first_send_us = now;
        r.attempt_start_us = now;
        r.open_attempt = r.attempts;
      }
    }
    r.resend_due_ms = -1;
    std::string buf = r.line;
    buf.push_back('\n');
    if (!net::write_all(fd_, buf.data(), buf.size())) return false;
    r.outstanding = true;
    return true;
  };

  const auto handle_line = [&](const std::string& line) {
    const Classified c = classify_line(line);
    if (c.kind == Classified::kIgnore) return;
    // Oldest live request with this id; prefer outstanding ones, but a
    // final may also answer a request parked on a retry_after_ms schedule
    // (the earlier transmission's response arriving late).
    std::size_t match = reqs.size();
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const Req& r = reqs[i];
      if (r.done || r.id != c.id) continue;
      if (r.outstanding) {
        match = i;
        break;
      }
      if (match == reqs.size() && c.kind == Classified::kFinal &&
          r.attempts > 0) {
        match = i;  // scheduled-resend request; keep scanning for outstanding
      }
    }
    if (match == reqs.size()) {
      if (c.kind == Classified::kFinal) {
        for (const Req& r : reqs) {
          if (r.done && r.id == c.id) {
            ++stats_.duplicate_finals;
            break;
          }
        }
      }
      return;  // duplicate or unmatched: drop
    }
    Req& r = reqs[match];
    if (c.kind == Classified::kPartial) {
      out.emplace_back(match, line);
      return;
    }
    if (c.rejection && r.attempts < policy_.max_attempts) {
      r.outstanding = false;
      r.resend_due_ms = now_ms() + std::max(c.retry_after_ms, 0.0);
      ++stats_.rejections_honored;
      return;
    }
    r.done = true;
    r.outstanding = false;
    r.resend_due_ms = -1;
    finish_trace(r);
    out.emplace_back(match, line);
    --remaining;
  };

  while (remaining > 0) {
    if (fd_ < 0) {
      if (ever_connected_) {
        const double sleep_ms = retry_backoff_ms(policy_, ++backoff_events_);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
        stats_.backoff_ms += sleep_ms;
        obs::counter("client.retry.backoff_ms")
            .add(static_cast<long long>(std::llround(sleep_ms)));
      }
      StatusOr<net::Endpoint> parsed = net::parse_endpoint(endpoint_);
      if (!parsed.ok()) return parsed.status();
      StatusOr<int> connected = net::connect_endpoint(parsed.value());
      if (!connected.ok()) {
        ++consecutive_connect_failures;
        if (consecutive_connect_failures <= policy_.max_connect_failures) {
          if (!ever_connected_) {
            const double sleep_ms =
                retry_backoff_ms(policy_, ++backoff_events_);
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(sleep_ms));
            stats_.backoff_ms += sleep_ms;
            obs::counter("client.retry.backoff_ms")
                .add(static_cast<long long>(std::llround(sleep_ms)));
          }
          continue;
        }
        if (!ever_connected_) return connected.status();
        // Mid-batch: server stayed down past the budget. Fail the
        // still-open requests individually so the caller sees per-request
        // errors and the answered ones keep their real responses.
        for (std::size_t i = 0; i < reqs.size(); ++i) {
          if (!reqs[i].done) give_up(i);
        }
        break;
      }
      fd_ = connected.value();
      consecutive_connect_failures = 0;
      if (ever_connected_) ++stats_.reconnects;
      ever_connected_ = true;
      last_rx_ms = now_ms();
    }

    // Send everything due: fresh requests, replays after a drop, and
    // scheduled rejection resends whose retry_after_ms advice has elapsed.
    const double now = now_ms();
    bool io_failed = false;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      Req& r = reqs[i];
      if (r.done || r.outstanding) continue;
      if (r.resend_due_ms >= 0 && r.resend_due_ms > now) continue;
      if (r.attempts >= policy_.max_attempts) {
        give_up(i);
        continue;
      }
      if (!send_req(i)) {
        io_failed = true;
        break;
      }
    }
    if (io_failed) {
      disconnect();
      continue;
    }
    if (remaining == 0) break;

    double timeout_ms = 100.0;
    for (const Req& r : reqs) {
      if (r.done || r.resend_due_ms < 0) continue;
      timeout_ms = std::min(timeout_ms, std::max(r.resend_due_ms - now, 1.0));
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready < 0 && errno != EINTR) {
      disconnect();
      continue;
    }
    if (ready > 0 && (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      char chunk[65536];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        disconnect();
        continue;
      }
      last_rx_ms = now_ms();
      inbuf.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      while (true) {
        const std::size_t nl = inbuf.find('\n', start);
        if (nl == std::string::npos) break;
        if (nl > start) handle_line(inbuf.substr(start, nl - start));
        start = nl + 1;
      }
      inbuf.erase(0, start);
      if (inbuf.size() > kMaxProtocolLineBytes) {
        // The server never emits a line this long; the stream is broken.
        disconnect();
        continue;
      }
    } else {
      bool any_outstanding = false;
      for (const Req& r : reqs) any_outstanding |= r.outstanding;
      if (policy_.response_timeout_ms > 0 && any_outstanding &&
          now_ms() - last_rx_ms > policy_.response_timeout_ms) {
        ++stats_.timeouts;
        disconnect();
      }
    }
  }

  std::vector<std::string> result;
  result.reserve(out.size());
  for (auto& entry : out) result.push_back(std::move(entry.second));
  return result;
}

}  // namespace soctest
