#include "service/frontdoor.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/net.hpp"
#include "common/sharded_cache.hpp"
#include "obs/obs.hpp"
#include "report/json.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"

namespace soctest {

namespace {

std::uint64_t fingerprint_of(const JsonValue* doc) {
  if (doc == nullptr || !doc->is_object()) return 0;
  const std::string text = doc->string_or("soc_text", "");
  if (!text.empty()) return fnv1a64(text);
  // Default mirrors parse_request: a request with no soc field solves the
  // built-in "soc1".
  return fnv1a64(doc->string_or("soc", "soc1"));
}

/// Writes as much of `buf` as the fd accepts right now; keeps the
/// remainder for the next POLLOUT. False once the peer is gone.
bool flush_some(int fd, std::string* buf) {
  while (!buf->empty()) {
    const ssize_t n = ::write(fd, buf->data(), buf->size());
    if (n > 0) {
      buf->erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  return true;
}

/// Appends newly readable bytes to `inbuf`. Returns false on EOF or a
/// hard error (the caller retires the fd); true while the peer lives.
bool read_some(int fd, std::string* inbuf) {
  char chunk[65536];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      inbuf->append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

/// Pops one complete line from `inbuf` into `line`.
bool next_line(std::string* inbuf, std::string* line) {
  const auto pos = inbuf->find('\n');
  if (pos == std::string::npos) return false;
  line->assign(*inbuf, 0, pos);
  inbuf->erase(0, pos + 1);
  return true;
}

long long fd_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t request_fingerprint(const std::string& line) {
  const auto doc = parse_json(line);
  return fingerprint_of(doc ? &*doc : nullptr);
}

int shard_for_line(const std::string& line, int num_workers) {
  if (num_workers <= 1) return 0;
  return static_cast<int>(request_fingerprint(line) %
                          static_cast<std::uint64_t>(num_workers));
}

struct FrontDoor::Impl {
  /// One request shipped to a worker and not yet finally answered. The
  /// line is kept verbatim so a crash-retry resends exactly what the
  /// client sent.
  struct Pending {
    std::string id;
    std::string line;
    /// False until the line has actually been queued to a connected
    /// worker link: a lazy link that connects for the first time is a
    /// first send, not a retry, and must not inflate the retried stat.
    bool sent = false;
  };

  /// One (client connection, worker shard) pipe. Lazily connected: a
  /// client that only ever hits shard 2 holds no fd to the others.
  struct Link {
    int fd = -1;
    bool was_connected = false;  ///< distinguishes reconnect (retry) from first use
    std::string inbuf;
    std::string outbuf;
    std::deque<Pending> pending;
  };

  struct Client {
    int fd = -1;
    bool eof = false;   ///< client half-closed; finish pending, then close
    bool dead = false;  ///< write failed; drop responses, keep accounting
    bool overflow = false;  ///< discarding an oversized line until newline
    long long last_activity_ms = 0;
    std::string inbuf;
    std::string outbuf;
    std::vector<Link> links;
  };

  struct Worker {
    pid_t pid = -1;
    std::string socket_path;
    int restarts = 0;
    bool broken = false;  ///< restart budget exhausted; shard answers errors
    // Heartbeat liveness (config.heartbeat_ms > 0): a dedicated health
    // connection carrying only ping/pong, so probe latency measures the
    // worker's poll loop, not its job queue.
    int health_fd = -1;
    std::string health_inbuf;
    std::string health_outbuf;
    long long last_ping_ms = 0;
    long long last_pong_ms = 0;
    long long ping_seq = 0;
  };

  explicit Impl(FrontDoorConfig cfg) : config(std::move(cfg)) {}

  ~Impl() { cleanup(); }

  FrontDoorConfig config;
  std::string work_dir;
  bool owns_work_dir = false;
  int listen_fd = -1;
  int bound_port = 0;
  std::string bound_host;
  std::vector<Worker> workers;
  std::vector<std::unique_ptr<Client>> clients;
  std::size_t total_inflight = 0;
  bool draining = false;
  std::atomic<bool> stop_flag{false};

  mutable std::mutex mutex;  ///< guards worker pids + stat snapshots
  std::atomic<long long> st_received{0};
  std::atomic<long long> st_forwarded{0};
  std::atomic<long long> st_rejected{0};
  std::atomic<long long> st_completed{0};
  std::atomic<long long> st_partials{0};
  std::atomic<long long> st_errors{0};
  std::atomic<long long> st_restarts{0};
  std::atomic<long long> st_retried{0};
  std::atomic<long long> st_hung{0};

  std::vector<std::string> worker_argv(std::size_t idx) const {
    std::vector<std::string> argv;
    argv.push_back(config.serve_binary);
    argv.push_back("--socket");
    argv.push_back(workers[idx].socket_path);
    argv.push_back("--queue");
    argv.push_back(std::to_string(config.worker_queue));
    argv.push_back("--cache");
    argv.push_back(std::to_string(config.worker_cache));
    argv.push_back("--retry-after-ms");
    argv.push_back(std::to_string(config.retry_after_ms));
    // Workers talk only to the front door on private sockets; worker-side
    // idle reaping would just churn the lazily-held links (and the health
    // connection between pings), so it is disabled outright.
    argv.push_back("--idle-timeout-ms");
    argv.push_back("0");
    if (config.serial_workers) {
      argv.push_back("--serial");
    } else if (config.worker_threads > 0) {
      argv.push_back("--workers");
      argv.push_back(std::to_string(config.worker_threads));
    }
    if (config.max_time_limit_ms >= 0) {
      argv.push_back("--max-time-limit-ms");
      argv.push_back(std::to_string(config.max_time_limit_ms));
    }
    if (config.worker_ledgers) {
      argv.push_back("--ledger");
      argv.push_back(work_dir + "/worker-" + std::to_string(idx) +
                     ".ledger.jsonl");
    }
    return argv;
  }

  Status spawn_worker(std::size_t idx) {
    const auto pid = net::spawn_process(worker_argv(idx));
    if (!pid.ok()) return pid.status();
    std::lock_guard<std::mutex> lock(mutex);
    workers[idx].pid = pid.value();
    return Status::Ok();
  }

  /// Blocks until worker `idx` accepts connections (its serve loop is
  /// up). 10 s deadline — a worker that cannot bind its socket is a
  /// configuration error worth failing fast on.
  Status wait_worker_ready(std::size_t idx) {
    const net::Endpoint ep{false, "", 0, workers[idx].socket_path};
    for (int attempt = 0; attempt < 500; ++attempt) {
      const auto fd = net::connect_endpoint(ep);
      if (fd.ok()) {
        ::close(fd.value());
        return Status::Ok();
      }
      int status = 0;
      if (net::try_reap(workers[idx].pid, &status)) {
        std::lock_guard<std::mutex> lock(mutex);
        workers[idx].pid = -1;
        return internal_error("frontdoor: worker " + std::to_string(idx) +
                              " exited during startup (" + config.serve_binary +
                              ")");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return internal_error("frontdoor: worker " + std::to_string(idx) +
                          " never came up at " + workers[idx].socket_path);
  }

  Status start() {
    if (config.serve_binary.empty())
      return invalid_argument_error("frontdoor: serve_binary not set");
    if (config.workers < 1)
      return invalid_argument_error("frontdoor: need at least one worker");
    const auto parsed = net::parse_endpoint(config.listen);
    if (!parsed.ok()) return parsed.status();
    if (!parsed.value().tcp)
      return invalid_argument_error(
          "frontdoor: listen endpoint must be HOST:PORT, got '" +
          config.listen + "'");

    if (config.work_dir.empty()) {
      char tmpl[] = "/tmp/soctest-frontdoor-XXXXXX";
      if (::mkdtemp(tmpl) == nullptr)
        return io_error(std::string("frontdoor: mkdtemp: ") +
                        std::strerror(errno));
      work_dir = tmpl;
      owns_work_dir = true;
    } else {
      work_dir = config.work_dir;
      ::mkdir(work_dir.c_str(), 0755);  // best effort; bind will complain
    }

    workers.resize(static_cast<std::size_t>(config.workers));
    for (std::size_t i = 0; i < workers.size(); ++i) {
      workers[i].socket_path =
          work_dir + "/worker-" + std::to_string(i) + ".sock";
      if (auto s = spawn_worker(i); !s.ok()) return s;
    }
    for (std::size_t i = 0; i < workers.size(); ++i)
      if (auto s = wait_worker_ready(i); !s.ok()) return s;

    const auto fd = net::listen_endpoint(parsed.value(), &bound_port);
    if (!fd.ok()) return fd.status();
    listen_fd = fd.value();
    bound_host =
        parsed.value().host.empty() ? "127.0.0.1" : parsed.value().host;
    if (auto s = net::set_nonblocking(listen_fd); !s.ok()) return s;
    return Status::Ok();
  }

  void forward_to_client(Client& client, const std::string& line) {
    if (client.dead) return;
    client.outbuf.append(line);
    client.outbuf.push_back('\n');
  }

  void answer_locally(Client& client, const std::string& line) {
    forward_to_client(client, line);
  }

  void handle_request(Client& client, const std::string& line) {
    if (line.empty()) return;
    std::string ping_id;
    if (parse_ping(line, &ping_id)) {
      // Answered authoritatively, outside the received/forwarded ledger:
      // a pong proves the front door's poll loop is alive regardless of
      // worker health, and pings must never occupy admission slots.
      obs::counter("frontdoor.requests.pings").add();
      answer_locally(client, pong_json(ping_id));
      return;
    }
    st_received.fetch_add(1, std::memory_order_relaxed);
    obs::counter("frontdoor.requests.received").add();

    const auto doc = parse_json(line);
    const std::string id =
        doc && doc->is_object() ? doc->string_or("id", "") : "";

    if (total_inflight >= config.max_inflight) {
      st_rejected.fetch_add(1, std::memory_order_relaxed);
      obs::counter("frontdoor.requests.rejected").add();
      answer_locally(client,
                     rejection_json(id, config.retry_after_ms,
                                    "front door at capacity (" +
                                        std::to_string(total_inflight) +
                                        " requests in flight)"));
      return;
    }

    const std::uint64_t fp = fingerprint_of(doc ? &*doc : nullptr);
    const auto shard = static_cast<std::size_t>(
        fp % static_cast<std::uint64_t>(workers.size()));
    if (workers[shard].broken) {
      st_errors.fetch_add(1, std::memory_order_relaxed);
      obs::counter("frontdoor.requests.error").add();
      answer_locally(client,
                     error_response_json(
                         id,
                         internal_error("worker shard " +
                                        std::to_string(shard) +
                                        " unavailable (restart budget spent)"),
                         /*include_timing=*/false));
      return;
    }

    Link& link = client.links[shard];
    link.pending.push_back(Pending{id, line, /*sent=*/link.fd >= 0});
    if (link.fd >= 0) {
      link.outbuf.append(line);
      link.outbuf.push_back('\n');
    }
    ++total_inflight;
    st_forwarded.fetch_add(1, std::memory_order_relaxed);
    obs::counter("frontdoor.requests.forwarded").add();
  }

  /// One oversized line: answered authoritatively with the canonical
  /// structured error, counted as received + error so the
  /// received = forwarded + rejected + errors invariant holds.
  void answer_oversized(Client& c) {
    st_received.fetch_add(1, std::memory_order_relaxed);
    obs::counter("frontdoor.requests.received").add();
    st_errors.fetch_add(1, std::memory_order_relaxed);
    obs::counter("frontdoor.requests.error").add();
    obs::counter("frontdoor.requests.oversized").add();
    answer_locally(c, oversized_line_response_json());
  }

  /// Splits buffered client bytes into requests, enforcing the protocol
  /// line cap: an oversized line gets one authoritative structured error
  /// and is discarded up to the next newline, resynchronizing the stream.
  void handle_client_bytes(Client& c, bool eof_now) {
    while (true) {
      if (c.overflow) {
        const auto nl = c.inbuf.find('\n');
        if (nl == std::string::npos) {
          c.inbuf.clear();
          break;
        }
        c.inbuf.erase(0, nl + 1);
        c.overflow = false;
      }
      std::string line;
      if (next_line(&c.inbuf, &line)) {
        // A complete line can still breach the cap when its newline lands
        // in the same chunk that crossed it — length-check before routing.
        if (line.size() > kMaxProtocolLineBytes) {
          answer_oversized(c);
        } else {
          handle_request(c, line);
        }
        continue;
      }
      if (c.inbuf.size() > kMaxProtocolLineBytes) {
        c.overflow = true;
        c.inbuf.clear();
        answer_oversized(c);
        continue;
      }
      break;
    }
    if (eof_now) {
      if (!c.inbuf.empty() && !c.overflow) {
        handle_request(c, c.inbuf);  // unterminated final line
      }
      c.inbuf.clear();
      c.eof = true;
    }
  }

  void handle_worker_line(Client& client, std::size_t shard,
                          const std::string& line) {
    if (line.empty()) return;
    const auto doc = parse_json(line);
    const std::string schema =
        doc && doc->is_object() ? doc->string_or("schema", "") : "";
    if (schema == kPartialSchema) {
      st_partials.fetch_add(1, std::memory_order_relaxed);
      obs::counter("frontdoor.stream.partials").add();
      forward_to_client(client, line);
      return;
    }
    // Final response: settle the oldest outstanding request with this id.
    const std::string id =
        doc && doc->is_object() ? doc->string_or("id", "") : "";
    Link& link = client.links[shard];
    for (auto it = link.pending.begin(); it != link.pending.end(); ++it) {
      if (it->id == id) {
        link.pending.erase(it);
        if (total_inflight > 0) --total_inflight;
        st_completed.fetch_add(1, std::memory_order_relaxed);
        obs::counter("frontdoor.requests.completed").add();
        break;
      }
    }
    forward_to_client(client, line);
  }

  /// Answers every request pending on a broken shard with an internal
  /// error — accepted work is never silently dropped, even past the
  /// restart budget.
  void fail_shard_pending(std::size_t shard) {
    for (auto& client : clients) {
      Link& link = client->links[shard];
      for (const Pending& p : link.pending) {
        st_errors.fetch_add(1, std::memory_order_relaxed);
        obs::counter("frontdoor.requests.error").add();
        answer_locally(*client,
                       error_response_json(
                           p.id,
                           internal_error("worker shard " +
                                          std::to_string(shard) +
                                          " unavailable (restart budget "
                                          "spent)"),
                           /*include_timing=*/false));
        if (total_inflight > 0) --total_inflight;
      }
      link.pending.clear();
      link.outbuf.clear();
      link.inbuf.clear();
      if (link.fd >= 0) {
        ::close(link.fd);
        link.fd = -1;
      }
    }
  }

  void close_links_to(std::size_t shard) {
    for (auto& client : clients) {
      Link& link = client->links[shard];
      if (link.fd >= 0) {
        ::close(link.fd);
        link.fd = -1;
      }
      // Bytes in flight to or from the dead process are void; `pending`
      // alone is the source of truth for the resend.
      link.inbuf.clear();
      link.outbuf.clear();
    }
  }

  void close_health(Worker& w) {
    if (w.health_fd >= 0) {
      ::close(w.health_fd);
      w.health_fd = -1;
    }
    w.health_inbuf.clear();
    w.health_outbuf.clear();
  }

  long long heartbeat_timeout() const {
    return static_cast<long long>(config.heartbeat_timeout_ms > 0
                                      ? config.heartbeat_timeout_ms
                                      : 5.0 * config.heartbeat_ms);
  }

  /// Probes each live worker's poll loop. A worker whose health link goes
  /// silent past the timeout is hung, not crashed — waitpid will never
  /// fire for it — so it is SIGKILLed here and the ordinary crash path
  /// (reap, respawn, resend pending) finishes the recovery next tick.
  void heartbeat_tick() {
    if (config.heartbeat_ms <= 0 || draining) return;
    const long long now = fd_now_ms();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      Worker& w = workers[i];
      if (w.pid < 0 || w.broken) {
        close_health(w);
        continue;
      }
      if (w.health_fd < 0) {
        // (Re)connect lazily; a SIGSTOPped worker still accept()s into its
        // listen backlog, so connecting is not evidence of liveness —
        // only pongs are.
        const net::Endpoint ep{false, "", 0, w.socket_path};
        const auto fd = net::connect_endpoint(ep);
        if (!fd.ok()) continue;  // restarting; next tick
        w.health_fd = fd.value();
        net::set_nonblocking(w.health_fd);
        w.last_pong_ms = now;
        w.last_ping_ms = 0;
      }
      if (now - w.last_ping_ms >=
          static_cast<long long>(config.heartbeat_ms)) {
        w.health_outbuf.append(ping_json("hb-" + std::to_string(i) + "-" +
                                         std::to_string(++w.ping_seq)));
        w.health_outbuf.push_back('\n');
        w.last_ping_ms = now;
      }
      if (now - w.last_pong_ms > heartbeat_timeout()) {
        st_hung.fetch_add(1, std::memory_order_relaxed);
        obs::counter("frontdoor.workers.hung_restarts").add();
        close_health(w);
        ::kill(w.pid, SIGKILL);
      }
    }
  }

  void reap_workers() {
    for (std::size_t i = 0; i < workers.size(); ++i) {
      Worker& w = workers[i];
      if (w.pid < 0 || w.broken) continue;
      int status = 0;
      if (!net::try_reap(w.pid, &status)) continue;
      {
        std::lock_guard<std::mutex> lock(mutex);
        w.pid = -1;
      }
      close_health(w);
      close_links_to(i);
      ++w.restarts;
      if (w.restarts > config.max_restarts) {
        w.broken = true;
        fail_shard_pending(i);
        continue;
      }
      st_restarts.fetch_add(1, std::memory_order_relaxed);
      obs::counter("frontdoor.workers.restarts").add();
      // listen_endpoint unlinks the stale socket path, so the respawn
      // reuses it; links reconnect lazily once the socket accepts again.
      spawn_worker(i);  // spawn failure leaves pid=-1; links keep retrying
    }
  }

  /// Opens (or reopens) worker links that have work queued. After a
  /// reconnect the outbuf is rebuilt from `pending` — everything the dead
  /// process never answered goes again, in original order.
  void ensure_links() {
    for (auto& client : clients) {
      for (std::size_t shard = 0; shard < client->links.size(); ++shard) {
        Link& link = client->links[shard];
        if (link.fd >= 0 || link.pending.empty()) continue;
        const Worker& w = workers[shard];
        if (w.broken || w.pid < 0) continue;
        const net::Endpoint ep{false, "", 0, w.socket_path};
        const auto fd = net::connect_endpoint(ep);
        if (!fd.ok()) continue;  // worker still restarting; next tick
        link.fd = fd.value();
        net::set_nonblocking(link.fd);
        link.inbuf.clear();
        link.outbuf.clear();
        for (const Pending& p : link.pending) {
          link.outbuf.append(p.line);
          link.outbuf.push_back('\n');
        }
        long long resent = 0;
        for (Pending& p : link.pending) {
          if (p.sent) ++resent;
          p.sent = true;
        }
        if (resent > 0) {
          st_retried.fetch_add(resent, std::memory_order_relaxed);
          obs::counter("frontdoor.workers.retried").add(resent);
        }
        link.was_connected = true;
      }
    }
  }

  static std::size_t pending_total(const Client& client) {
    std::size_t n = 0;
    for (const Link& link : client.links) n += link.pending.size();
    return n;
  }

  void close_client(Client& client) {
    for (Link& link : client.links)
      if (link.fd >= 0) {
        ::close(link.fd);
        link.fd = -1;
      }
    if (client.fd >= 0) {
      ::close(client.fd);
      client.fd = -1;
    }
  }

  void sweep_clients() {
    const long long now = fd_now_ms();
    for (auto it = clients.begin(); it != clients.end();) {
      Client& c = **it;
      const std::size_t pending = pending_total(c);
      bool done = c.dead || (c.eof && pending == 0 && c.outbuf.empty());
      if (draining) done = done || (pending == 0 && c.outbuf.empty());
      // Idle reap: no request in flight and no byte moved in either
      // direction past the deadline means a half-open or byte-dribbling
      // peer; a client actually waiting on a solve (pending > 0) is never
      // reaped. last_activity_ms advances on reads and on flush progress,
      // so slow-but-live readers stay.
      if (!done && !c.dead && config.idle_timeout_ms > 0 && pending == 0 &&
          now - c.last_activity_ms >
              static_cast<long long>(config.idle_timeout_ms)) {
        obs::counter("frontdoor.clients.idle_reaped").add();
        done = true;
      }
      if (!done) {
        ++it;
        continue;
      }
      if (c.dead && pending > 0) {
        // Responses for a vanished client still count down in-flight.
        ++it;
        continue;
      }
      close_client(c);
      it = clients.erase(it);
    }
  }

  void accept_clients() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN, EINTR (next tick), or shutdown
      net::set_nonblocking(fd);
      net::set_tcp_nodelay(fd);
      auto client = std::make_unique<Client>();
      client->fd = fd;
      client->last_activity_ms = fd_now_ms();
      client->links.resize(workers.size());
      clients.push_back(std::move(client));
    }
  }

  int serve() {
    while (true) {
      if (!draining &&
          (shutdown_requested() ||
           stop_flag.load(std::memory_order_acquire)))
        draining = true;

      reap_workers();
      heartbeat_tick();
      ensure_links();
      sweep_clients();
      if (draining && clients.empty()) break;

      // One pollfd table per tick; `slots` maps entries back to owners.
      struct Slot {
        enum Kind { kListener, kClient, kLink, kHealth } kind;
        std::size_t client;
        std::size_t shard;
      };
      std::vector<pollfd> pfds;
      std::vector<Slot> slots;
      if (!draining) {
        pfds.push_back(pollfd{listen_fd, POLLIN, 0});
        slots.push_back(Slot{Slot::kListener, 0, 0});
      }
      for (std::size_t wi = 0; wi < workers.size(); ++wi) {
        Worker& w = workers[wi];
        if (w.health_fd < 0) continue;
        short ev = POLLIN;
        if (!w.health_outbuf.empty()) ev |= POLLOUT;
        pfds.push_back(pollfd{w.health_fd, ev, 0});
        slots.push_back(Slot{Slot::kHealth, 0, wi});
      }
      for (std::size_t ci = 0; ci < clients.size(); ++ci) {
        Client& c = *clients[ci];
        short events = 0;
        if (!draining && !c.eof && !c.dead) events |= POLLIN;
        if (!c.dead && !c.outbuf.empty()) events |= POLLOUT;
        if (events != 0 && c.fd >= 0) {
          pfds.push_back(pollfd{c.fd, events, 0});
          slots.push_back(Slot{Slot::kClient, ci, 0});
        }
        for (std::size_t shard = 0; shard < c.links.size(); ++shard) {
          Link& link = c.links[shard];
          if (link.fd < 0) continue;
          short ev = POLLIN;
          if (!link.outbuf.empty()) ev |= POLLOUT;
          pfds.push_back(pollfd{link.fd, ev, 0});
          slots.push_back(Slot{Slot::kLink, ci, shard});
        }
      }

      if (pfds.empty()) {
        // Draining with dead clients whose pendings await worker answers
        // cannot happen (their links are polled); nothing to wait on means
        // nothing left to do this tick.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }

      const int rc = ::poll(pfds.data(), pfds.size(), 100);
      if (rc < 0 && errno != EINTR) break;
      if (rc <= 0) continue;

      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        const Slot slot = slots[i];
        if (slot.kind == Slot::kListener) {
          accept_clients();
          continue;
        }
        if (slot.kind == Slot::kHealth) {
          Worker& w = workers[slot.shard];
          if (w.health_fd < 0) continue;  // closed earlier this tick
          if (pfds[i].revents & POLLOUT) {
            if (!flush_some(w.health_fd, &w.health_outbuf)) {
              close_health(w);  // reconnect (quietly) next tick
              continue;
            }
          }
          if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            const bool alive = read_some(w.health_fd, &w.health_inbuf);
            std::string line;
            std::string pong_id;
            while (next_line(&w.health_inbuf, &line)) {
              if (parse_pong(line, &pong_id)) w.last_pong_ms = fd_now_ms();
            }
            if (!alive) close_health(w);
          }
          continue;
        }
        Client& c = *clients[slot.client];
        if (slot.kind == Slot::kClient) {
          if (pfds[i].revents & POLLOUT) {
            const std::size_t before = c.outbuf.size();
            if (!flush_some(c.fd, &c.outbuf)) {
              c.dead = true;
              continue;
            }
            if (c.outbuf.size() != before) c.last_activity_ms = fd_now_ms();
          }
          if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            const std::size_t before = c.inbuf.size();
            const bool alive = read_some(c.fd, &c.inbuf);
            if (c.inbuf.size() != before) c.last_activity_ms = fd_now_ms();
            handle_client_bytes(c, /*eof_now=*/!alive);
          }
        } else {
          Link& link = c.links[slot.shard];
          if (link.fd < 0) continue;  // closed earlier this tick by a reap
          if (pfds[i].revents & POLLOUT) {
            if (!flush_some(link.fd, &link.outbuf)) {
              ::close(link.fd);
              link.fd = -1;  // reap/ensure_links recovers via pending
              link.inbuf.clear();
              link.outbuf.clear();
              continue;
            }
          }
          if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            bool alive = read_some(link.fd, &link.inbuf);
            std::string line;
            while (next_line(&link.inbuf, &line))
              handle_worker_line(c, slot.shard, line);
            if (link.inbuf.size() > kMaxProtocolLineBytes) {
              // A worker never legitimately emits a line this long; the
              // stream is corrupt. Drop the link — `pending` resends on
              // the fresh connection.
              alive = false;
            }
            if (!alive) {
              ::close(link.fd);
              link.fd = -1;
              link.inbuf.clear();
              link.outbuf.clear();
            }
          }
        }
      }
    }

    shutdown_workers();
    cleanup();
    return 0;
  }

  void shutdown_workers() {
    for (Worker& w : workers) {
      close_health(w);
      pid_t pid;
      {
        std::lock_guard<std::mutex> lock(mutex);
        pid = w.pid;
        w.pid = -1;
      }
      if (pid > 0) net::terminate_and_wait(pid);
    }
  }

  void cleanup() {
    for (auto& client : clients) close_client(*client);
    clients.clear();
    shutdown_workers();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    for (Worker& w : workers) {
      if (!w.socket_path.empty()) ::unlink(w.socket_path.c_str());
    }
    if (owns_work_dir && !work_dir.empty()) {
      if (config.worker_ledgers) {
        for (std::size_t i = 0; i < workers.size(); ++i)
          ::unlink((work_dir + "/worker-" + std::to_string(i) +
                    ".ledger.jsonl")
                       .c_str());
      }
      ::rmdir(work_dir.c_str());
      owns_work_dir = false;
    }
  }
};

FrontDoor::FrontDoor(FrontDoorConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

FrontDoor::~FrontDoor() = default;

Status FrontDoor::start() { return impl_->start(); }

int FrontDoor::serve() { return impl_->serve(); }

void FrontDoor::stop() {
  impl_->stop_flag.store(true, std::memory_order_release);
}

int FrontDoor::port() const { return impl_->bound_port; }

std::string FrontDoor::endpoint() const {
  return impl_->bound_host + ":" + std::to_string(impl_->bound_port);
}

std::vector<pid_t> FrontDoor::worker_pids() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<pid_t> pids;
  pids.reserve(impl_->workers.size());
  for (const auto& w : impl_->workers) pids.push_back(w.pid);
  return pids;
}

FrontDoorStats FrontDoor::stats() const {
  FrontDoorStats s;
  s.received = impl_->st_received.load(std::memory_order_relaxed);
  s.forwarded = impl_->st_forwarded.load(std::memory_order_relaxed);
  s.rejected = impl_->st_rejected.load(std::memory_order_relaxed);
  s.completed = impl_->st_completed.load(std::memory_order_relaxed);
  s.partials = impl_->st_partials.load(std::memory_order_relaxed);
  s.errors = impl_->st_errors.load(std::memory_order_relaxed);
  s.restarts = impl_->st_restarts.load(std::memory_order_relaxed);
  s.retried = impl_->st_retried.load(std::memory_order_relaxed);
  s.hung_restarts = impl_->st_hung.load(std::memory_order_relaxed);
  return s;
}

}  // namespace soctest
