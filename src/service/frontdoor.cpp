#include "service/frontdoor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/net.hpp"
#include "common/sharded_cache.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "report/json.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"

namespace soctest {

namespace {

std::uint64_t fingerprint_of(const JsonValue* doc) {
  if (doc == nullptr || !doc->is_object()) return 0;
  const std::string text = doc->string_or("soc_text", "");
  if (!text.empty()) return fnv1a64(text);
  // Default mirrors parse_request: a request with no soc field solves the
  // built-in "soc1".
  return fnv1a64(doc->string_or("soc", "soc1"));
}

/// Writes as much of `buf` as the fd accepts right now; keeps the
/// remainder for the next POLLOUT. False once the peer is gone.
bool flush_some(int fd, std::string* buf) {
  while (!buf->empty()) {
    const ssize_t n = ::write(fd, buf->data(), buf->size());
    if (n > 0) {
      buf->erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  return true;
}

/// Appends newly readable bytes to `inbuf`. Returns false on EOF or a
/// hard error (the caller retires the fd); true while the peer lives.
bool read_some(int fd, std::string* inbuf) {
  char chunk[65536];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      inbuf->append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return true;
      continue;
    }
    if (n == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

/// Pops one complete line from `inbuf` into `line`.
bool next_line(std::string* inbuf, std::string* line) {
  const auto pos = inbuf->find('\n');
  if (pos == std::string::npos) return false;
  line->assign(*inbuf, 0, pos);
  inbuf->erase(0, pos + 1);
  return true;
}

long long fd_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Sink time of "now", or -1 when tracing is off. The front door records
/// request arrival/queue times in this base so its relay/queue spans can
/// be emitted at settle time (the poll loop cannot hold a Span object
/// across ticks).
double sink_now_us() {
  obs::TraceSink* sink = obs::current_sink();
  return sink != nullptr ? sink->now_us() : -1.0;
}

/// The per-process numeric members a worker's soctest-stats-v1 reply may
/// carry, re-emitted per shard in the front door's merged reply. A subset
/// of kStatsFields (protocol.hpp); name-sorted like the replies are.
constexpr const char* kShardStatsFields[] = {
    "cache_hit_rate", "cache_hits", "cache_misses", "completed",
    "errors",         "p50_ms",     "p95_ms",       "queue_depth",
    "received",       "rejected",   "req_rate",     "uptime_s",
    "window_s",
};

}  // namespace

std::uint64_t request_fingerprint(const std::string& line) {
  const auto doc = parse_json(line);
  return fingerprint_of(doc ? &*doc : nullptr);
}

int shard_for_line(const std::string& line, int num_workers) {
  if (num_workers <= 1) return 0;
  return static_cast<int>(request_fingerprint(line) %
                          static_cast<std::uint64_t>(num_workers));
}

struct FrontDoor::Impl {
  /// One request shipped to a worker and not yet finally answered. The
  /// line is kept verbatim so a crash-retry resends exactly what the
  /// client sent.
  struct Pending {
    std::string id;
    std::string line;
    /// False until the line has actually been queued to a connected
    /// worker link: a lazy link that connects for the first time is a
    /// first send, not a retry, and must not inflate the retried stat.
    bool sent = false;
    /// A fanned-out soctest-stats-v1 probe riding the link for ordering
    /// and crash-resend, but outside the inflight/forwarded/retried
    /// accounting (probes are not requests).
    bool probe = false;
    /// Trace context lifted from the request's `trace` member (the line
    /// itself is still relayed verbatim). Empty = untraced.
    std::string trace_id;
    std::string trace_parent;
    /// Sink-time bookkeeping for the frontdoor.relay / frontdoor.queue
    /// spans, -1 when tracing is off at arrival. sent_us is the first
    /// time the line was queued to a connected worker.
    double arrival_us = -1.0;
    double sent_us = -1.0;
    /// Steady-clock arrival, feeding the windowed relay-latency
    /// histogram the stats scrape reports.
    long long arrival_ms = 0;
  };

  /// One (client connection, worker shard) pipe. Lazily connected: a
  /// client that only ever hits shard 2 holds no fd to the others.
  struct Link {
    int fd = -1;
    bool was_connected = false;  ///< distinguishes reconnect (retry) from first use
    std::string inbuf;
    std::string outbuf;
    std::deque<Pending> pending;
  };

  struct Client {
    int fd = -1;
    bool eof = false;   ///< client half-closed; finish pending, then close
    bool dead = false;  ///< write failed; drop responses, keep accounting
    bool overflow = false;  ///< discarding an oversized line until newline
    long long last_activity_ms = 0;
    std::string inbuf;
    std::string outbuf;
    std::vector<Link> links;
  };

  struct Worker {
    pid_t pid = -1;
    std::string socket_path;
    int restarts = 0;
    bool broken = false;  ///< restart budget exhausted; shard answers errors
    // Heartbeat liveness (config.heartbeat_ms > 0): a dedicated health
    // connection carrying only ping/pong, so probe latency measures the
    // worker's poll loop, not its job queue.
    int health_fd = -1;
    std::string health_inbuf;
    std::string health_outbuf;
    long long last_ping_ms = 0;
    long long last_pong_ms = 0;
    long long ping_seq = 0;
  };

  explicit Impl(FrontDoorConfig cfg) : config(std::move(cfg)) {}

  ~Impl() { cleanup(); }

  FrontDoorConfig config;
  std::string work_dir;
  bool owns_work_dir = false;
  int listen_fd = -1;
  int bound_port = 0;
  std::string bound_host;
  std::vector<Worker> workers;
  std::vector<std::unique_ptr<Client>> clients;
  std::size_t total_inflight = 0;
  bool draining = false;
  std::atomic<bool> stop_flag{false};

  mutable std::mutex mutex;  ///< guards worker pids + stat snapshots
  std::atomic<long long> st_received{0};
  std::atomic<long long> st_forwarded{0};
  std::atomic<long long> st_rejected{0};
  std::atomic<long long> st_completed{0};
  std::atomic<long long> st_partials{0};
  std::atomic<long long> st_errors{0};
  std::atomic<long long> st_restarts{0};
  std::atomic<long long> st_retried{0};
  std::atomic<long long> st_hung{0};

  /// Sliding-window telemetry for the stats scrape: fleet req/s and the
  /// end-to-end relay latency (client arrival to final settled).
  obs::RateCounter req_rate{60};
  obs::WindowedHistogram relay_latency_ms{60};
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();

  /// One in-flight stats fan-out: a client probe waiting for every
  /// shard's reply (or the deadline). Owned by the poll loop only.
  struct StatsWait {
    Client* client = nullptr;
    std::string probe_id;  ///< echoed in the merged reply
    long long deadline_ms = 0;
    std::vector<std::string> shard_ids;    ///< per-shard probe ids
    std::vector<std::string> shard_lines;  ///< worker replies, "" = none yet
    std::vector<bool> have;
  };
  std::vector<StatsWait> stats_waits;
  long long stats_token = 0;

  std::vector<std::string> worker_argv(std::size_t idx) const {
    std::vector<std::string> argv;
    argv.push_back(config.serve_binary);
    argv.push_back("--socket");
    argv.push_back(workers[idx].socket_path);
    argv.push_back("--queue");
    argv.push_back(std::to_string(config.worker_queue));
    argv.push_back("--cache");
    argv.push_back(std::to_string(config.worker_cache));
    argv.push_back("--retry-after-ms");
    argv.push_back(std::to_string(config.retry_after_ms));
    // Workers talk only to the front door on private sockets; worker-side
    // idle reaping would just churn the lazily-held links (and the health
    // connection between pings), so it is disabled outright.
    argv.push_back("--idle-timeout-ms");
    argv.push_back("0");
    if (config.serial_workers) {
      argv.push_back("--serial");
    } else if (config.worker_threads > 0) {
      argv.push_back("--workers");
      argv.push_back(std::to_string(config.worker_threads));
    }
    if (config.max_time_limit_ms >= 0) {
      argv.push_back("--max-time-limit-ms");
      argv.push_back(std::to_string(config.max_time_limit_ms));
    }
    if (config.worker_ledgers) {
      argv.push_back("--ledger");
      argv.push_back(work_dir + "/worker-" + std::to_string(idx) +
                     ".ledger.jsonl");
    }
    if (!config.trace_dir.empty()) {
      argv.push_back("--trace-dir");
      argv.push_back(config.trace_dir);
    }
    return argv;
  }

  Status spawn_worker(std::size_t idx) {
    const auto pid = net::spawn_process(worker_argv(idx));
    if (!pid.ok()) return pid.status();
    std::lock_guard<std::mutex> lock(mutex);
    workers[idx].pid = pid.value();
    return Status::Ok();
  }

  /// Blocks until worker `idx` accepts connections (its serve loop is
  /// up). 10 s deadline — a worker that cannot bind its socket is a
  /// configuration error worth failing fast on.
  Status wait_worker_ready(std::size_t idx) {
    const net::Endpoint ep{false, "", 0, workers[idx].socket_path};
    for (int attempt = 0; attempt < 500; ++attempt) {
      const auto fd = net::connect_endpoint(ep);
      if (fd.ok()) {
        ::close(fd.value());
        return Status::Ok();
      }
      int status = 0;
      if (net::try_reap(workers[idx].pid, &status)) {
        std::lock_guard<std::mutex> lock(mutex);
        workers[idx].pid = -1;
        return internal_error("frontdoor: worker " + std::to_string(idx) +
                              " exited during startup (" + config.serve_binary +
                              ")");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return internal_error("frontdoor: worker " + std::to_string(idx) +
                          " never came up at " + workers[idx].socket_path);
  }

  Status start() {
    if (config.serve_binary.empty())
      return invalid_argument_error("frontdoor: serve_binary not set");
    if (config.workers < 1)
      return invalid_argument_error("frontdoor: need at least one worker");
    const auto parsed = net::parse_endpoint(config.listen);
    if (!parsed.ok()) return parsed.status();
    if (!parsed.value().tcp)
      return invalid_argument_error(
          "frontdoor: listen endpoint must be HOST:PORT, got '" +
          config.listen + "'");

    if (config.work_dir.empty()) {
      char tmpl[] = "/tmp/soctest-frontdoor-XXXXXX";
      if (::mkdtemp(tmpl) == nullptr)
        return io_error(std::string("frontdoor: mkdtemp: ") +
                        std::strerror(errno));
      work_dir = tmpl;
      owns_work_dir = true;
    } else {
      work_dir = config.work_dir;
      ::mkdir(work_dir.c_str(), 0755);  // best effort; bind will complain
    }

    workers.resize(static_cast<std::size_t>(config.workers));
    for (std::size_t i = 0; i < workers.size(); ++i) {
      workers[i].socket_path =
          work_dir + "/worker-" + std::to_string(i) + ".sock";
      if (auto s = spawn_worker(i); !s.ok()) return s;
    }
    for (std::size_t i = 0; i < workers.size(); ++i)
      if (auto s = wait_worker_ready(i); !s.ok()) return s;

    const auto fd = net::listen_endpoint(parsed.value(), &bound_port);
    if (!fd.ok()) return fd.status();
    listen_fd = fd.value();
    bound_host =
        parsed.value().host.empty() ? "127.0.0.1" : parsed.value().host;
    if (auto s = net::set_nonblocking(listen_fd); !s.ok()) return s;
    return Status::Ok();
  }

  void forward_to_client(Client& client, const std::string& line) {
    if (client.dead) return;
    client.outbuf.append(line);
    client.outbuf.push_back('\n');
  }

  void answer_locally(Client& client, const std::string& line) {
    forward_to_client(client, line);
  }

  /// Fans one client stats probe out to every live shard. The per-shard
  /// probes ride the ordinary links as probe-flagged Pendings (so a worker
  /// respawn resends them like any queued line) but stay outside the
  /// inflight/forwarded accounting. stats_tick() assembles the merged
  /// reply when the last shard answers or the deadline passes.
  void start_stats_fanout(Client& client, const std::string& probe_id) {
    StatsWait wait;
    wait.client = &client;
    wait.probe_id = probe_id;
    wait.deadline_ms = fd_now_ms() + 2000;
    wait.shard_ids.resize(workers.size());
    wait.shard_lines.resize(workers.size());
    wait.have.assign(workers.size(), false);
    const long long token = ++stats_token;
    for (std::size_t shard = 0; shard < workers.size(); ++shard) {
      wait.shard_ids[shard] = "stats-" + std::to_string(token) + "-" +
                              std::to_string(shard);
      if (workers[shard].broken) continue;  // reported as {"broken":true}
      Link& link = client.links[shard];
      Pending pending;
      pending.id = wait.shard_ids[shard];
      pending.line = stats_probe_json(wait.shard_ids[shard]);
      pending.sent = link.fd >= 0;
      pending.probe = true;
      pending.arrival_ms = fd_now_ms();
      if (link.fd >= 0) {
        link.outbuf.append(pending.line);
        link.outbuf.push_back('\n');
      }
      link.pending.push_back(std::move(pending));
    }
    stats_waits.push_back(std::move(wait));
  }

  /// Emits the front door's two spans for a traced request at settle time:
  /// frontdoor.relay (arrival to final relayed; sibling of the worker's
  /// service.request, both children of the client's root span) and
  /// frontdoor.queue (arrival to first write toward a connected worker,
  /// child of relay — the admission-queue share of the relay time).
  void settle_trace(const Pending& p) {
    if (p.trace_id.empty() || p.arrival_us < 0) return;
    obs::TraceSink* sink = obs::current_sink();
    if (sink == nullptr) return;
    const double now = sink->now_us();
    const std::string relay_guid =
        trace_span_guid(p.trace_id, "frontdoor.relay");
    std::vector<obs::Arg> relay_args;
    relay_args.emplace_back("trace_id", p.trace_id);
    relay_args.emplace_back("span_guid", relay_guid);
    if (!p.trace_parent.empty())
      relay_args.emplace_back("parent_guid", p.trace_parent);
    relay_args.emplace_back("req_id", p.id);
    obs::emit_span("frontdoor.relay", p.arrival_us, now - p.arrival_us,
                   std::move(relay_args));
    if (p.sent_us >= p.arrival_us) {
      std::vector<obs::Arg> queue_args;
      queue_args.emplace_back("trace_id", p.trace_id);
      queue_args.emplace_back(
          "span_guid", trace_span_guid(p.trace_id, "frontdoor.queue"));
      queue_args.emplace_back("parent_guid", relay_guid);
      obs::emit_span("frontdoor.queue", p.arrival_us,
                     p.sent_us - p.arrival_us, std::move(queue_args));
    }
  }

  void handle_request(Client& client, const std::string& line) {
    if (line.empty()) return;
    std::string ping_id;
    if (parse_ping(line, &ping_id)) {
      // Answered authoritatively, outside the received/forwarded ledger:
      // a pong proves the front door's poll loop is alive regardless of
      // worker health, and pings must never occupy admission slots.
      obs::counter("frontdoor.requests.pings").add();
      answer_locally(client, pong_json(ping_id));
      return;
    }
    std::string stats_id;
    if (parse_stats_probe(line, &stats_id)) {
      // Like pings, probes live outside the admission accounting; unlike
      // pings the answer needs every worker's numbers, so the probe is
      // fanned out and the merged reply is sent when the last shard
      // answers (or the deadline turns stragglers into broken entries).
      obs::counter("frontdoor.requests.stats_probes").add();
      start_stats_fanout(client, stats_id);
      return;
    }
    st_received.fetch_add(1, std::memory_order_relaxed);
    obs::counter("frontdoor.requests.received").add();
    req_rate.add();

    const auto doc = parse_json(line);
    const std::string id =
        doc && doc->is_object() ? doc->string_or("id", "") : "";
    std::string trace_id;
    std::string trace_parent;
    if (doc && doc->is_object()) {
      if (const JsonValue* trace = doc->find("trace");
          trace != nullptr && trace->is_object()) {
        trace_id = trace->string_or("trace_id", "");
        trace_parent = trace->string_or("parent_span", "");
      }
    }
    const std::uint64_t fp = fingerprint_of(doc ? &*doc : nullptr);
    const auto shard = static_cast<std::size_t>(
        fp % static_cast<std::uint64_t>(workers.size()));

    if (total_inflight >= config.max_inflight) {
      st_rejected.fetch_add(1, std::memory_order_relaxed);
      obs::counter("frontdoor.requests.rejected").add();
      if (!config.ledger_path.empty()) {
        obs::RejectionRecord record;
        record.id = id;
        record.shard = static_cast<int>(shard);
        record.retry_after_ms = config.retry_after_ms;
        record.trace_id = trace_id;
        obs::append_rejection_record(config.ledger_path, record);
      }
      answer_locally(client,
                     rejection_json(id, config.retry_after_ms,
                                    "front door at capacity (" +
                                        std::to_string(total_inflight) +
                                        " requests in flight)",
                                    trace_id));
      return;
    }

    if (workers[shard].broken) {
      st_errors.fetch_add(1, std::memory_order_relaxed);
      obs::counter("frontdoor.requests.error").add();
      answer_locally(client,
                     error_response_json(
                         id,
                         internal_error("worker shard " +
                                        std::to_string(shard) +
                                        " unavailable (restart budget spent)"),
                         /*include_timing=*/false, 0.0, trace_id));
      return;
    }

    Link& link = client.links[shard];
    Pending pending;
    pending.id = id;
    pending.line = line;
    pending.sent = link.fd >= 0;
    pending.trace_id = std::move(trace_id);
    pending.trace_parent = std::move(trace_parent);
    pending.arrival_ms = fd_now_ms();
    if (!pending.trace_id.empty()) pending.arrival_us = sink_now_us();
    if (link.fd >= 0) {
      link.outbuf.append(line);
      link.outbuf.push_back('\n');
      pending.sent_us = pending.arrival_us;
    }
    link.pending.push_back(std::move(pending));
    ++total_inflight;
    st_forwarded.fetch_add(1, std::memory_order_relaxed);
    obs::counter("frontdoor.requests.forwarded").add();
  }

  /// One oversized line: answered authoritatively with the canonical
  /// structured error, counted as received + error so the
  /// received = forwarded + rejected + errors invariant holds.
  void answer_oversized(Client& c) {
    st_received.fetch_add(1, std::memory_order_relaxed);
    obs::counter("frontdoor.requests.received").add();
    st_errors.fetch_add(1, std::memory_order_relaxed);
    obs::counter("frontdoor.requests.error").add();
    obs::counter("frontdoor.requests.oversized").add();
    answer_locally(c, oversized_line_response_json());
  }

  /// Splits buffered client bytes into requests, enforcing the protocol
  /// line cap: an oversized line gets one authoritative structured error
  /// and is discarded up to the next newline, resynchronizing the stream.
  void handle_client_bytes(Client& c, bool eof_now) {
    while (true) {
      if (c.overflow) {
        const auto nl = c.inbuf.find('\n');
        if (nl == std::string::npos) {
          c.inbuf.clear();
          break;
        }
        c.inbuf.erase(0, nl + 1);
        c.overflow = false;
      }
      std::string line;
      if (next_line(&c.inbuf, &line)) {
        // A complete line can still breach the cap when its newline lands
        // in the same chunk that crossed it — length-check before routing.
        if (line.size() > kMaxProtocolLineBytes) {
          answer_oversized(c);
        } else {
          handle_request(c, line);
        }
        continue;
      }
      if (c.inbuf.size() > kMaxProtocolLineBytes) {
        c.overflow = true;
        c.inbuf.clear();
        answer_oversized(c);
        continue;
      }
      break;
    }
    if (eof_now) {
      if (!c.inbuf.empty() && !c.overflow) {
        handle_request(c, c.inbuf);  // unterminated final line
      }
      c.inbuf.clear();
      c.eof = true;
    }
  }

  void handle_worker_line(Client& client, std::size_t shard,
                          const std::string& line) {
    if (line.empty()) return;
    const auto doc = parse_json(line);
    const std::string schema =
        doc && doc->is_object() ? doc->string_or("schema", "") : "";
    if (schema == kPartialSchema) {
      st_partials.fetch_add(1, std::memory_order_relaxed);
      obs::counter("frontdoor.stream.partials").add();
      forward_to_client(client, line);
      return;
    }
    const std::string id =
        doc && doc->is_object() ? doc->string_or("id", "") : "";
    if (schema == kStatsSchema) {
      // A worker's scrape answer: captured for the merged reply, never
      // relayed raw (the client asked the fleet, not one shard).
      Link& link = client.links[shard];
      for (auto it = link.pending.begin(); it != link.pending.end(); ++it) {
        if (it->probe && it->id == id) {
          link.pending.erase(it);
          break;
        }
      }
      for (StatsWait& wait : stats_waits) {
        if (wait.client != &client) continue;
        if (shard < wait.shard_ids.size() && wait.shard_ids[shard] == id &&
            !wait.have[shard]) {
          wait.have[shard] = true;
          wait.shard_lines[shard] = line;
          break;
        }
      }
      return;
    }
    // Final response: settle the oldest outstanding request with this id.
    Link& link = client.links[shard];
    for (auto it = link.pending.begin(); it != link.pending.end(); ++it) {
      if (it->id == id && !it->probe) {
        relay_latency_ms.observe(
            static_cast<double>(fd_now_ms() - it->arrival_ms));
        settle_trace(*it);
        link.pending.erase(it);
        if (total_inflight > 0) --total_inflight;
        st_completed.fetch_add(1, std::memory_order_relaxed);
        obs::counter("frontdoor.requests.completed").add();
        break;
      }
    }
    forward_to_client(client, line);
  }

  /// Answers every request pending on a broken shard with an internal
  /// error — accepted work is never silently dropped, even past the
  /// restart budget.
  void fail_shard_pending(std::size_t shard) {
    for (auto& client : clients) {
      Link& link = client->links[shard];
      for (const Pending& p : link.pending) {
        if (p.probe) continue;  // stats_tick reports the shard as broken
        st_errors.fetch_add(1, std::memory_order_relaxed);
        obs::counter("frontdoor.requests.error").add();
        answer_locally(*client,
                       error_response_json(
                           p.id,
                           internal_error("worker shard " +
                                          std::to_string(shard) +
                                          " unavailable (restart budget "
                                          "spent)"),
                           /*include_timing=*/false, 0.0, p.trace_id));
        if (total_inflight > 0) --total_inflight;
      }
      link.pending.clear();
      link.outbuf.clear();
      link.inbuf.clear();
      if (link.fd >= 0) {
        ::close(link.fd);
        link.fd = -1;
      }
    }
  }

  void close_links_to(std::size_t shard) {
    for (auto& client : clients) {
      Link& link = client->links[shard];
      if (link.fd >= 0) {
        ::close(link.fd);
        link.fd = -1;
      }
      // Bytes in flight to or from the dead process are void; `pending`
      // alone is the source of truth for the resend.
      link.inbuf.clear();
      link.outbuf.clear();
    }
  }

  void close_health(Worker& w) {
    if (w.health_fd >= 0) {
      ::close(w.health_fd);
      w.health_fd = -1;
    }
    w.health_inbuf.clear();
    w.health_outbuf.clear();
  }

  long long heartbeat_timeout() const {
    return static_cast<long long>(config.heartbeat_timeout_ms > 0
                                      ? config.heartbeat_timeout_ms
                                      : 5.0 * config.heartbeat_ms);
  }

  /// Probes each live worker's poll loop. A worker whose health link goes
  /// silent past the timeout is hung, not crashed — waitpid will never
  /// fire for it — so it is SIGKILLed here and the ordinary crash path
  /// (reap, respawn, resend pending) finishes the recovery next tick.
  void heartbeat_tick() {
    if (config.heartbeat_ms <= 0 || draining) return;
    const long long now = fd_now_ms();
    for (std::size_t i = 0; i < workers.size(); ++i) {
      Worker& w = workers[i];
      if (w.pid < 0 || w.broken) {
        close_health(w);
        continue;
      }
      if (w.health_fd < 0) {
        // (Re)connect lazily; a SIGSTOPped worker still accept()s into its
        // listen backlog, so connecting is not evidence of liveness —
        // only pongs are.
        const net::Endpoint ep{false, "", 0, w.socket_path};
        const auto fd = net::connect_endpoint(ep);
        if (!fd.ok()) continue;  // restarting; next tick
        w.health_fd = fd.value();
        net::set_nonblocking(w.health_fd);
        w.last_pong_ms = now;
        w.last_ping_ms = 0;
      }
      if (now - w.last_ping_ms >=
          static_cast<long long>(config.heartbeat_ms)) {
        w.health_outbuf.append(ping_json("hb-" + std::to_string(i) + "-" +
                                         std::to_string(++w.ping_seq)));
        w.health_outbuf.push_back('\n');
        w.last_ping_ms = now;
      }
      if (now - w.last_pong_ms > heartbeat_timeout()) {
        st_hung.fetch_add(1, std::memory_order_relaxed);
        obs::counter("frontdoor.workers.hung_restarts").add();
        close_health(w);
        ::kill(w.pid, SIGKILL);
      }
    }
  }

  void reap_workers() {
    for (std::size_t i = 0; i < workers.size(); ++i) {
      Worker& w = workers[i];
      if (w.pid < 0 || w.broken) continue;
      int status = 0;
      if (!net::try_reap(w.pid, &status)) continue;
      {
        std::lock_guard<std::mutex> lock(mutex);
        w.pid = -1;
      }
      close_health(w);
      close_links_to(i);
      ++w.restarts;
      if (w.restarts > config.max_restarts) {
        w.broken = true;
        fail_shard_pending(i);
        continue;
      }
      st_restarts.fetch_add(1, std::memory_order_relaxed);
      obs::counter("frontdoor.workers.restarts").add();
      // listen_endpoint unlinks the stale socket path, so the respawn
      // reuses it; links reconnect lazily once the socket accepts again.
      spawn_worker(i);  // spawn failure leaves pid=-1; links keep retrying
    }
  }

  /// Opens (or reopens) worker links that have work queued. After a
  /// reconnect the outbuf is rebuilt from `pending` — everything the dead
  /// process never answered goes again, in original order.
  void ensure_links() {
    for (auto& client : clients) {
      for (std::size_t shard = 0; shard < client->links.size(); ++shard) {
        Link& link = client->links[shard];
        if (link.fd >= 0 || link.pending.empty()) continue;
        const Worker& w = workers[shard];
        if (w.broken || w.pid < 0) continue;
        const net::Endpoint ep{false, "", 0, w.socket_path};
        const auto fd = net::connect_endpoint(ep);
        if (!fd.ok()) continue;  // worker still restarting; next tick
        link.fd = fd.value();
        net::set_nonblocking(link.fd);
        link.inbuf.clear();
        link.outbuf.clear();
        for (const Pending& p : link.pending) {
          link.outbuf.append(p.line);
          link.outbuf.push_back('\n');
        }
        long long resent = 0;
        for (Pending& p : link.pending) {
          if (p.sent && !p.probe) ++resent;
          p.sent = true;
          // First time this line reaches a connected worker closes the
          // frontdoor.queue span; a crash-resend does not reopen it.
          if (p.sent_us < 0 && p.arrival_us >= 0) p.sent_us = sink_now_us();
        }
        if (resent > 0) {
          st_retried.fetch_add(resent, std::memory_order_relaxed);
          obs::counter("frontdoor.workers.retried").add(resent);
        }
        link.was_connected = true;
      }
    }
  }

  /// Emits a worker-reported number preserving integer-ness (counters stay
  /// unquoted integers through the double-backed parser round trip).
  static void emit_stat_number(JsonWriter& w, double v) {
    const auto i = static_cast<long long>(v);
    if (v == static_cast<double>(i)) {
      w.value(i);
    } else {
      w.value(v);
    }
  }

  /// The merged scrape reply: the front door's own name-sorted aggregates
  /// (same key discipline as serve_stats_json) plus a `shards` array
  /// re-emitting each worker's numeric fields, or `{"broken":true,...}`
  /// for a shard that is dead or never answered before the deadline.
  std::string merged_stats_json(const StatsWait& wait) {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value(kStatsSchema);
    if (!wait.probe_id.empty()) w.key("id").value(wait.probe_id);
    w.key("role").value("frontdoor");
    w.key("completed").value(st_completed.load(std::memory_order_relaxed));
    w.key("errors").value(st_errors.load(std::memory_order_relaxed));
    w.key("hung").value(st_hung.load(std::memory_order_relaxed));
    w.key("p50_ms").value(relay_latency_ms.percentile(0.50));
    w.key("p95_ms").value(relay_latency_ms.percentile(0.95));
    w.key("queue_depth").value(static_cast<long long>(total_inflight));
    w.key("received").value(st_received.load(std::memory_order_relaxed));
    w.key("rejected").value(st_rejected.load(std::memory_order_relaxed));
    w.key("req_rate").value(req_rate.rate());
    w.key("restarts").value(st_restarts.load(std::memory_order_relaxed));
    w.key("shards").begin_array();
    for (std::size_t k = 0; k < wait.have.size(); ++k) {
      w.begin_object();
      if (!wait.have[k]) {
        w.key("broken").value(true);
        w.key("shard").value(static_cast<long long>(k));
        w.end_object();
        continue;
      }
      const auto doc = parse_json(wait.shard_lines[k]);
      bool shard_key_emitted = false;
      for (const char* field : kShardStatsFields) {
        if (!shard_key_emitted && std::string_view(field) > "shard") {
          w.key("shard").value(static_cast<long long>(k));
          shard_key_emitted = true;
        }
        const JsonValue* v = doc ? doc->find(field) : nullptr;
        if (v != nullptr && v->is_number()) {
          w.key(field);
          emit_stat_number(w, v->number);
        }
      }
      if (!shard_key_emitted) w.key("shard").value(static_cast<long long>(k));
      w.end_object();
    }
    w.end_array();
    w.key("uptime_s")
        .value(std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started)
                   .count());
    w.key("window_s").value(60);
    w.key("workers").value(static_cast<long long>(workers.size()));
    w.end_object();
    return w.str();
  }

  /// Resolves stats fan-outs: a wait completes when every live shard has
  /// answered, or at its deadline (stragglers become broken entries). The
  /// leftover probe Pendings of a deadline-expired wait are dropped so
  /// they cannot pin links or stall the drain.
  void stats_tick() {
    if (stats_waits.empty()) return;
    const long long now = fd_now_ms();
    for (auto it = stats_waits.begin(); it != stats_waits.end();) {
      StatsWait& wait = *it;
      bool done = now >= wait.deadline_ms;
      if (!done) {
        done = true;
        for (std::size_t k = 0; k < wait.have.size(); ++k) {
          if (!wait.have[k] && !workers[k].broken) {
            done = false;
            break;
          }
        }
      }
      if (!done) {
        ++it;
        continue;
      }
      for (std::size_t k = 0; k < wait.shard_ids.size(); ++k) {
        auto& pending = wait.client->links[k].pending;
        for (auto pit = pending.begin(); pit != pending.end(); ++pit) {
          if (pit->probe && pit->id == wait.shard_ids[k]) {
            pending.erase(pit);
            break;
          }
        }
      }
      forward_to_client(*wait.client, merged_stats_json(wait));
      it = stats_waits.erase(it);
    }
  }

  static std::size_t pending_total(const Client& client) {
    std::size_t n = 0;
    for (const Link& link : client.links) n += link.pending.size();
    return n;
  }

  void close_client(Client& client) {
    for (Link& link : client.links)
      if (link.fd >= 0) {
        ::close(link.fd);
        link.fd = -1;
      }
    if (client.fd >= 0) {
      ::close(client.fd);
      client.fd = -1;
    }
  }

  void sweep_clients() {
    const long long now = fd_now_ms();
    for (auto it = clients.begin(); it != clients.end();) {
      Client& c = **it;
      const std::size_t pending = pending_total(c);
      bool done = c.dead || (c.eof && pending == 0 && c.outbuf.empty());
      if (draining) done = done || (pending == 0 && c.outbuf.empty());
      // Idle reap: no request in flight and no byte moved in either
      // direction past the deadline means a half-open or byte-dribbling
      // peer; a client actually waiting on a solve (pending > 0) is never
      // reaped. last_activity_ms advances on reads and on flush progress,
      // so slow-but-live readers stay.
      if (!done && !c.dead && config.idle_timeout_ms > 0 && pending == 0 &&
          now - c.last_activity_ms >
              static_cast<long long>(config.idle_timeout_ms)) {
        obs::counter("frontdoor.clients.idle_reaped").add();
        done = true;
      }
      if (!done) {
        ++it;
        continue;
      }
      if (c.dead && pending > 0) {
        // Responses for a vanished client still count down in-flight.
        ++it;
        continue;
      }
      Client* gone = &c;
      stats_waits.erase(
          std::remove_if(stats_waits.begin(), stats_waits.end(),
                         [gone](const StatsWait& w) {
                           return w.client == gone;
                         }),
          stats_waits.end());
      close_client(c);
      it = clients.erase(it);
    }
  }

  void accept_clients() {
    while (true) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN, EINTR (next tick), or shutdown
      net::set_nonblocking(fd);
      net::set_tcp_nodelay(fd);
      auto client = std::make_unique<Client>();
      client->fd = fd;
      client->last_activity_ms = fd_now_ms();
      client->links.resize(workers.size());
      clients.push_back(std::move(client));
    }
  }

  int serve() {
    while (true) {
      if (!draining &&
          (shutdown_requested() ||
           stop_flag.load(std::memory_order_acquire)))
        draining = true;

      reap_workers();
      heartbeat_tick();
      ensure_links();
      stats_tick();
      sweep_clients();
      if (draining && clients.empty()) break;

      // One pollfd table per tick; `slots` maps entries back to owners.
      struct Slot {
        enum Kind { kListener, kClient, kLink, kHealth } kind;
        std::size_t client;
        std::size_t shard;
      };
      std::vector<pollfd> pfds;
      std::vector<Slot> slots;
      if (!draining) {
        pfds.push_back(pollfd{listen_fd, POLLIN, 0});
        slots.push_back(Slot{Slot::kListener, 0, 0});
      }
      for (std::size_t wi = 0; wi < workers.size(); ++wi) {
        Worker& w = workers[wi];
        if (w.health_fd < 0) continue;
        short ev = POLLIN;
        if (!w.health_outbuf.empty()) ev |= POLLOUT;
        pfds.push_back(pollfd{w.health_fd, ev, 0});
        slots.push_back(Slot{Slot::kHealth, 0, wi});
      }
      for (std::size_t ci = 0; ci < clients.size(); ++ci) {
        Client& c = *clients[ci];
        short events = 0;
        if (!draining && !c.eof && !c.dead) events |= POLLIN;
        if (!c.dead && !c.outbuf.empty()) events |= POLLOUT;
        if (events != 0 && c.fd >= 0) {
          pfds.push_back(pollfd{c.fd, events, 0});
          slots.push_back(Slot{Slot::kClient, ci, 0});
        }
        for (std::size_t shard = 0; shard < c.links.size(); ++shard) {
          Link& link = c.links[shard];
          if (link.fd < 0) continue;
          short ev = POLLIN;
          if (!link.outbuf.empty()) ev |= POLLOUT;
          pfds.push_back(pollfd{link.fd, ev, 0});
          slots.push_back(Slot{Slot::kLink, ci, shard});
        }
      }

      if (pfds.empty()) {
        // Draining with dead clients whose pendings await worker answers
        // cannot happen (their links are polled); nothing to wait on means
        // nothing left to do this tick.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }

      const int rc = ::poll(pfds.data(), pfds.size(), 100);
      if (rc < 0 && errno != EINTR) break;
      if (rc <= 0) continue;

      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        const Slot slot = slots[i];
        if (slot.kind == Slot::kListener) {
          accept_clients();
          continue;
        }
        if (slot.kind == Slot::kHealth) {
          Worker& w = workers[slot.shard];
          if (w.health_fd < 0) continue;  // closed earlier this tick
          if (pfds[i].revents & POLLOUT) {
            if (!flush_some(w.health_fd, &w.health_outbuf)) {
              close_health(w);  // reconnect (quietly) next tick
              continue;
            }
          }
          if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            const bool alive = read_some(w.health_fd, &w.health_inbuf);
            std::string line;
            std::string pong_id;
            while (next_line(&w.health_inbuf, &line)) {
              if (parse_pong(line, &pong_id)) w.last_pong_ms = fd_now_ms();
            }
            if (!alive) close_health(w);
          }
          continue;
        }
        Client& c = *clients[slot.client];
        if (slot.kind == Slot::kClient) {
          if (pfds[i].revents & POLLOUT) {
            const std::size_t before = c.outbuf.size();
            if (!flush_some(c.fd, &c.outbuf)) {
              c.dead = true;
              continue;
            }
            if (c.outbuf.size() != before) c.last_activity_ms = fd_now_ms();
          }
          if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            const std::size_t before = c.inbuf.size();
            const bool alive = read_some(c.fd, &c.inbuf);
            if (c.inbuf.size() != before) c.last_activity_ms = fd_now_ms();
            handle_client_bytes(c, /*eof_now=*/!alive);
          }
        } else {
          Link& link = c.links[slot.shard];
          if (link.fd < 0) continue;  // closed earlier this tick by a reap
          if (pfds[i].revents & POLLOUT) {
            if (!flush_some(link.fd, &link.outbuf)) {
              ::close(link.fd);
              link.fd = -1;  // reap/ensure_links recovers via pending
              link.inbuf.clear();
              link.outbuf.clear();
              continue;
            }
          }
          if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            bool alive = read_some(link.fd, &link.inbuf);
            std::string line;
            while (next_line(&link.inbuf, &line))
              handle_worker_line(c, slot.shard, line);
            if (link.inbuf.size() > kMaxProtocolLineBytes) {
              // A worker never legitimately emits a line this long; the
              // stream is corrupt. Drop the link — `pending` resends on
              // the fresh connection.
              alive = false;
            }
            if (!alive) {
              ::close(link.fd);
              link.fd = -1;
              link.inbuf.clear();
              link.outbuf.clear();
            }
          }
        }
      }
    }

    shutdown_workers();
    cleanup();
    return 0;
  }

  void shutdown_workers() {
    for (Worker& w : workers) {
      close_health(w);
      pid_t pid;
      {
        std::lock_guard<std::mutex> lock(mutex);
        pid = w.pid;
        w.pid = -1;
      }
      if (pid > 0) net::terminate_and_wait(pid);
    }
  }

  void cleanup() {
    for (auto& client : clients) close_client(*client);
    clients.clear();
    shutdown_workers();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    for (Worker& w : workers) {
      if (!w.socket_path.empty()) ::unlink(w.socket_path.c_str());
    }
    if (owns_work_dir && !work_dir.empty()) {
      if (config.worker_ledgers) {
        for (std::size_t i = 0; i < workers.size(); ++i)
          ::unlink((work_dir + "/worker-" + std::to_string(i) +
                    ".ledger.jsonl")
                       .c_str());
      }
      ::rmdir(work_dir.c_str());
      owns_work_dir = false;
    }
  }
};

FrontDoor::FrontDoor(FrontDoorConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

FrontDoor::~FrontDoor() = default;

Status FrontDoor::start() { return impl_->start(); }

int FrontDoor::serve() { return impl_->serve(); }

void FrontDoor::stop() {
  impl_->stop_flag.store(true, std::memory_order_release);
}

int FrontDoor::port() const { return impl_->bound_port; }

std::string FrontDoor::endpoint() const {
  return impl_->bound_host + ":" + std::to_string(impl_->bound_port);
}

std::vector<pid_t> FrontDoor::worker_pids() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<pid_t> pids;
  pids.reserve(impl_->workers.size());
  for (const auto& w : impl_->workers) pids.push_back(w.pid);
  return pids;
}

std::string frontdoor_stats_line(const FrontDoorStats& stats) {
  // Name-sorted, the documented CLI metrics contract — same discipline as
  // `--metrics` tables and serve_stats_json, so log scrapers can binary
  // search and diffs stay stable as fields are added.
  const struct {
    const char* name;
    long long value;
  } fields[] = {
      {"completed", stats.completed}, {"errors", stats.errors},
      {"forwarded", stats.forwarded}, {"hung", stats.hung_restarts},
      {"partials", stats.partials},   {"received", stats.received},
      {"rejected", stats.rejected},   {"restarts", stats.restarts},
      {"retried", stats.retried},
  };
  std::string out = "soctest-frontdoor:";
  bool first = true;
  for (const auto& field : fields) {
    out += first ? " " : ", ";
    first = false;
    out += std::to_string(field.value);
    out += ' ';
    out += field.name;
  }
  return out;
}

FrontDoorStats FrontDoor::stats() const {
  FrontDoorStats s;
  s.received = impl_->st_received.load(std::memory_order_relaxed);
  s.forwarded = impl_->st_forwarded.load(std::memory_order_relaxed);
  s.rejected = impl_->st_rejected.load(std::memory_order_relaxed);
  s.completed = impl_->st_completed.load(std::memory_order_relaxed);
  s.partials = impl_->st_partials.load(std::memory_order_relaxed);
  s.errors = impl_->st_errors.load(std::memory_order_relaxed);
  s.restarts = impl_->st_restarts.load(std::memory_order_relaxed);
  s.retried = impl_->st_retried.load(std::memory_order_relaxed);
  s.hung_restarts = impl_->st_hung.load(std::memory_order_relaxed);
  return s;
}

}  // namespace soctest
