#include "service/chaos.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/net.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "service/transport.hpp"

namespace soctest {

namespace {

double chaos_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// One forwarding direction's in-flight bytes. Segments are FIFO: a
/// segment is only written once every earlier one has fully left, so
/// delays and tears add latency but never reorder bytes.
struct Seg {
  double due_ms = 0;
  std::string data;
};

constexpr std::size_t kMaxBuffered = 1u << 20;  ///< per-direction backpressure

}  // namespace

struct ChaosProxy::Conn {
  int client_fd = -1;
  int up_fd = -1;  ///< -1 for half-open connections
  bool client_eof = false;
  bool up_eof = false;
  bool client_shut = false;  ///< SHUT_WR already propagated to client
  bool up_shut = false;
  bool dead = false;
  std::deque<Seg> to_client;
  std::deque<Seg> to_up;

  // The per-connection fault plan, sampled once at accept.
  bool halfopen = false;
  bool tear = false;
  bool delay = false;
  long long drop_after_bytes = -1;  ///< total relayed bytes; -1 = never
  bool dropping = false;  ///< budget cut; close once the queues flush
  long long garbage_after_bytes = -1;
  bool garbage_injected = false;
  bool at_line_boundary = true;  ///< last byte queued toward client was '\n'
  long long relayed = 0;
  std::string garbage_line;
  Rng rng;

  explicit Conn(std::uint64_t seed) : rng(seed) {}
};

struct ChaosProxy::Impl {
  ChaosConfig config;
  int listen_fd = -1;
  long long accepted = 0;
  std::vector<std::unique_ptr<Conn>> conns;

  std::atomic<long long> st_connections{0};
  std::atomic<long long> st_drops{0};
  std::atomic<long long> st_tears{0};
  std::atomic<long long> st_delays{0};
  std::atomic<long long> st_garbage{0};
  std::atomic<long long> st_halfopen{0};
  std::atomic<long long> st_bytes_up{0};
  std::atomic<long long> st_bytes_down{0};
};

ChaosProxy::ChaosProxy(const ChaosConfig& config)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = config;
}

ChaosProxy::~ChaosProxy() {
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  for (const auto& conn : impl_->conns) {
    if (conn->client_fd >= 0) ::close(conn->client_fd);
    if (conn->up_fd >= 0) ::close(conn->up_fd);
  }
}

Status ChaosProxy::start() {
  StatusOr<net::Endpoint> parsed = net::parse_endpoint(impl_->config.listen);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value().tcp) {
    return invalid_argument_error("chaos proxy listens on TCP only: " +
                                  impl_->config.listen);
  }
  StatusOr<net::Endpoint> up = net::parse_endpoint(impl_->config.upstream);
  if (!up.ok()) return up.status();
  int port = 0;
  StatusOr<int> listener = net::listen_endpoint(parsed.value(), &port);
  if (!listener.ok()) return listener.status();
  impl_->listen_fd = listener.value();
  net::set_nonblocking(impl_->listen_fd);
  port_ = port;
  return Status();
}

std::string ChaosProxy::endpoint() const {
  StatusOr<net::Endpoint> parsed = net::parse_endpoint(impl_->config.listen);
  if (!parsed.ok()) return impl_->config.listen;
  return net::endpoint_name(parsed.value(), port_);
}

ChaosStats ChaosProxy::stats() const {
  ChaosStats s;
  s.connections = impl_->st_connections.load(std::memory_order_relaxed);
  s.drops = impl_->st_drops.load(std::memory_order_relaxed);
  s.tears = impl_->st_tears.load(std::memory_order_relaxed);
  s.delays = impl_->st_delays.load(std::memory_order_relaxed);
  s.garbage = impl_->st_garbage.load(std::memory_order_relaxed);
  s.halfopen = impl_->st_halfopen.load(std::memory_order_relaxed);
  s.bytes_to_upstream = impl_->st_bytes_up.load(std::memory_order_relaxed);
  s.bytes_to_client = impl_->st_bytes_down.load(std::memory_order_relaxed);
  return s;
}

namespace {

std::size_t buffered(const std::deque<Seg>& segs) {
  std::size_t total = 0;
  for (const Seg& seg : segs) total += seg.data.size();
  return total;
}

/// Flushes due segments; returns false on a hard write error.
bool flush_segs(int fd, std::deque<Seg>& segs, double now,
                std::atomic<long long>& byte_counter) {
  while (!segs.empty()) {
    Seg& head = segs.front();
    if (head.due_ms > now) return true;
    const ssize_t n = ::write(fd, head.data.data(), head.data.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    byte_counter.fetch_add(n, std::memory_order_relaxed);
    if (static_cast<std::size_t>(n) < head.data.size()) {
      head.data.erase(0, static_cast<std::size_t>(n));
      return true;
    }
    segs.pop_front();
  }
  return true;
}

}  // namespace

int ChaosProxy::serve(const std::atomic<bool>* stop) {
  Impl& im = *impl_;
  const ChaosConfig& cfg = im.config;
  StatusOr<net::Endpoint> up_parsed = net::parse_endpoint(cfg.upstream);
  if (!up_parsed.ok()) return kExitIoError;

  const auto kill_conn = [&](Conn& c) {
    if (c.client_fd >= 0) ::close(c.client_fd);
    if (c.up_fd >= 0) ::close(c.up_fd);
    c.client_fd = -1;
    c.up_fd = -1;
    c.dead = true;
  };

  // Queues freshly read bytes onto a direction, applying the connection's
  // delay/tear plan and (downstream only) garbage injection and the drop
  // byte budget.
  const auto forward = [&](Conn& c, std::deque<Seg>& segs, std::string bytes,
                           bool toward_client) {
    if (c.dropping) return;  // budget already cut; discard stragglers
    const double now = chaos_now_ms();
    if (c.drop_after_bytes >= 0 &&
        c.relayed + static_cast<long long>(bytes.size()) >=
            c.drop_after_bytes) {
      // The budget cuts mid-chunk: relay exactly the bytes that fit, then
      // close once they have flushed. Killing on the spot would discard
      // the whole tripping chunk — a peer that answers in one burst (a
      // slow serial server flushing its backlog at once) would then never
      // land a single byte across any dropped connection, starving the
      // client instead of exercising its replay path.
      bytes.resize(static_cast<std::size_t>(
          std::max<long long>(0, c.drop_after_bytes - c.relayed)));
      c.dropping = true;
      im.st_drops.fetch_add(1, std::memory_order_relaxed);
      obs::counter("chaos.faults.drops").add();
    }
    c.relayed += static_cast<long long>(bytes.size());
    double due = now + (c.delay ? cfg.delay_ms : 0.0);
    if (toward_client) {
      if (!c.dropping && !c.garbage_injected && c.garbage_after_bytes >= 0 &&
          c.relayed >= c.garbage_after_bytes && c.at_line_boundary) {
        segs.push_back({due, c.garbage_line});
        c.garbage_injected = true;
        im.st_garbage.fetch_add(1, std::memory_order_relaxed);
        obs::counter("chaos.faults.garbage").add();
      }
      if (!bytes.empty()) c.at_line_boundary = bytes.back() == '\n';
    }
    if (bytes.empty()) return;
    if (c.tear && bytes.size() >= 2) {
      const std::size_t cut = static_cast<std::size_t>(c.rng.uniform_int(
          1, static_cast<long long>(bytes.size()) - 1));
      segs.push_back({due, bytes.substr(0, cut)});
      segs.push_back({due + cfg.stall_ms, bytes.substr(cut)});
      im.st_tears.fetch_add(1, std::memory_order_relaxed);
      obs::counter("chaos.faults.tears").add();
    } else {
      segs.push_back({due, std::move(bytes)});
    }
  };

  const auto accept_conns = [&]() {
    while (true) {
      const int client_fd = ::accept4(im.listen_fd, nullptr, nullptr,
                                      SOCK_CLOEXEC | SOCK_NONBLOCK);
      if (client_fd < 0) break;
      net::set_tcp_nodelay(client_fd);
      auto conn =
          std::make_unique<Conn>(mix64(cfg.seed ^ mix64(im.accepted + 1)));
      ++im.accepted;
      im.st_connections.fetch_add(1, std::memory_order_relaxed);
      conn->client_fd = client_fd;
      // Sample the whole plan up front, in a fixed order, so the schedule
      // for connection N depends only on (seed, N).
      conn->halfopen = conn->rng.bernoulli(cfg.halfopen_prob);
      const bool drop = conn->rng.bernoulli(cfg.drop_prob);
      conn->drop_after_bytes = conn->rng.uniform_int(1, 6000);
      if (!drop) conn->drop_after_bytes = -1;
      conn->tear = conn->rng.bernoulli(cfg.tear_prob);
      conn->delay = conn->rng.bernoulli(cfg.delay_prob);
      const bool garbage = conn->rng.bernoulli(cfg.garbage_prob);
      conn->garbage_after_bytes = conn->rng.uniform_int(0, 2000);
      if (!garbage) conn->garbage_after_bytes = -1;
      switch (conn->rng.uniform_int(0, 2)) {
        case 0:
          conn->garbage_line = "{\"schema\":\"soctest-resp-v1\",\"id\":\"\n";
          break;  // truncated-but-terminated JSON
        case 1:
          conn->garbage_line = "\x01\x02garbage\x7f\xff\n";
          break;
        default:
          conn->garbage_line = "{\"schema\":\"no-such-schema-v9\"}\n";
          break;
      }
      if (conn->halfopen) {
        im.st_halfopen.fetch_add(1, std::memory_order_relaxed);
        obs::counter("chaos.faults.halfopen").add();
      } else {
        StatusOr<int> up = net::connect_endpoint(up_parsed.value());
        if (!up.ok()) {
          ::close(client_fd);
          continue;
        }
        conn->up_fd = up.value();
        net::set_nonblocking(conn->up_fd);
        if (conn->delay) {
          im.st_delays.fetch_add(1, std::memory_order_relaxed);
          obs::counter("chaos.faults.delays").add();
        }
      }
      im.conns.push_back(std::move(conn));
    }
  };

  while (true) {
    if (shutdown_requested() ||
        (stop != nullptr && stop->load(std::memory_order_relaxed))) {
      break;
    }
    const double now = chaos_now_ms();
    // Reap finished connections: killed ones, and relays where both sides
    // hit EOF and every buffered segment has flushed.
    im.conns.erase(
        std::remove_if(im.conns.begin(), im.conns.end(),
                       [&](const std::unique_ptr<Conn>& c) {
                         if (!c->dead && c->client_eof &&
                             (c->up_eof || c->up_fd < 0) &&
                             c->to_client.empty() && c->to_up.empty()) {
                           kill_conn(*c);
                         }
                         // A dropped connection dies only after the bytes
                         // inside its budget have left the building.
                         if (!c->dead && c->dropping &&
                             c->to_client.empty() && c->to_up.empty()) {
                           kill_conn(*c);
                         }
                         return c->dead;
                       }),
        im.conns.end());

    std::vector<struct pollfd> pfds;
    std::vector<std::pair<Conn*, bool>> owners;  // (conn, is_client_fd)
    pfds.push_back({im.listen_fd, POLLIN, 0});
    double next_due = now + 100.0;
    for (const auto& cp : im.conns) {
      Conn& c = *cp;
      if (c.client_fd >= 0) {
        short events = 0;
        if (!c.client_eof && !c.dropping && buffered(c.to_up) < kMaxBuffered)
          events |= POLLIN;
        if (!c.to_client.empty()) {
          if (c.to_client.front().due_ms <= now) {
            events |= POLLOUT;
          } else {
            next_due = std::min(next_due, c.to_client.front().due_ms);
          }
        }
        if (events != 0) {
          pfds.push_back({c.client_fd, events, 0});
          owners.emplace_back(&c, true);
        }
      }
      if (c.up_fd >= 0) {
        short events = 0;
        if (!c.up_eof && !c.dropping && buffered(c.to_client) < kMaxBuffered)
          events |= POLLIN;
        if (!c.to_up.empty()) {
          if (c.to_up.front().due_ms <= now) {
            events |= POLLOUT;
          } else {
            next_due = std::min(next_due, c.to_up.front().due_ms);
          }
        }
        if (events != 0) {
          pfds.push_back({c.up_fd, events, 0});
          owners.emplace_back(&c, false);
        }
      }
    }
    const int timeout =
        std::max(1, static_cast<int>(next_due - now) + 1);
    const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                             std::min(timeout, 100));
    if (ready < 0 && errno != EINTR) break;
    if ((pfds[0].revents & POLLIN) != 0) accept_conns();

    for (std::size_t i = 0; i < owners.size(); ++i) {
      Conn& c = *owners[i].first;
      const bool is_client = owners[i].second;
      const short revents = pfds[1 + i].revents;
      if (c.dead || revents == 0) continue;
      const int fd = is_client ? c.client_fd : c.up_fd;
      const double flush_now = chaos_now_ms();
      if ((revents & POLLOUT) != 0) {
        std::deque<Seg>& segs = is_client ? c.to_client : c.to_up;
        auto& counter = is_client ? im.st_bytes_down : im.st_bytes_up;
        if (!flush_segs(fd, segs, flush_now, counter)) {
          kill_conn(c);
          continue;
        }
        // EOF propagation: the source side closed and everything it sent
        // has now been relayed.
        if (segs.empty()) {
          if (is_client && c.up_eof && !c.client_shut) {
            ::shutdown(fd, SHUT_WR);
            c.client_shut = true;
          } else if (!is_client && c.client_eof && !c.up_shut) {
            ::shutdown(fd, SHUT_WR);
            c.up_shut = true;
          }
        }
      }
      if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[65536];
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno != EINTR && errno != EAGAIN &&
            errno != EWOULDBLOCK) {
          kill_conn(c);
          continue;
        }
        if (n == 0) {
          if (is_client) {
            c.client_eof = true;
            if (c.up_fd >= 0 && c.to_up.empty() && !c.up_shut) {
              ::shutdown(c.up_fd, SHUT_WR);
              c.up_shut = true;
            }
          } else {
            c.up_eof = true;
            if (c.to_client.empty() && !c.client_shut) {
              ::shutdown(c.client_fd, SHUT_WR);
              c.client_shut = true;
            }
          }
          continue;
        }
        if (n > 0) {
          std::string bytes(chunk, static_cast<std::size_t>(n));
          if (is_client) {
            if (c.up_fd < 0) continue;  // half-open: read and discard
            forward(c, c.to_up, std::move(bytes), /*toward_client=*/false);
          } else {
            forward(c, c.to_client, std::move(bytes), /*toward_client=*/true);
          }
        }
      }
    }
  }

  for (const auto& cp : im.conns) kill_conn(*cp);
  im.conns.clear();
  ::close(im.listen_fd);
  im.listen_fd = -1;
  return 0;
}

}  // namespace soctest
