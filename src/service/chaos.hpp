#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/status.hpp"

namespace soctest {

/// Fault schedule for the chaos TCP proxy (docs/robustness.md catalogs the
/// faults). Every fault decision is drawn from a PRNG seeded with
/// (seed, connection index), so a fixed seed reproduces the exact same
/// fault schedule run over run — the chaos gate depends on it.
struct ChaosConfig {
  std::string listen = "127.0.0.1:0";  ///< where clients connect
  std::string upstream;                ///< real server endpoint
  std::uint64_t seed = 1;
  /// Per-connection probabilities, each sampled once at accept time.
  double drop_prob = 0.0;      ///< close both sides after a random byte count
  double tear_prob = 0.0;      ///< split every downstream write, stall tail
  double delay_prob = 0.0;     ///< delay all forwarded bytes by delay_ms
  double garbage_prob = 0.0;   ///< inject one garbage line toward the client
  double halfopen_prob = 0.0;  ///< accept, read, never connect upstream
  double stall_ms = 25.0;      ///< tear: extra latency on the torn-off tail
  double delay_ms = 5.0;       ///< delay: fixed per-chunk forwarding latency
};

/// What the proxy did, for the tool's exit line and tests. Mirrored into
/// the obs counters `chaos.faults.*`.
struct ChaosStats {
  long long connections = 0;
  long long drops = 0;
  long long tears = 0;
  long long delays = 0;
  long long garbage = 0;
  long long halfopen = 0;
  long long bytes_to_upstream = 0;
  long long bytes_to_client = 0;
};

/// A deterministic fault-injecting TCP proxy between JSONL clients and a
/// solve server (or front door). Faults are byte-level and line-aware:
/// garbage is injected only at response-line boundaries (and always
/// newline-terminated), so the proxy corrupts the *stream* — drops, stalls,
/// junk lines — but never splices bytes into a real response line; torn
/// writes delay a chunk's tail without reordering. Single-threaded poll
/// loop; forwarding within each direction is always in order.
class ChaosProxy {
 public:
  explicit ChaosProxy(const ChaosConfig& config);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listen endpoint (resolving port 0) and connects nothing yet.
  Status start();

  /// Runs the proxy loop until `stop` is set or a shutdown signal arrives
  /// (transport.hpp handlers). Open connections are dropped on stop — a
  /// chaos proxy owes its clients nothing. Returns 0 on a clean stop.
  int serve(const std::atomic<bool>* stop = nullptr);

  int port() const { return port_; }
  std::string endpoint() const;  ///< canonical listen endpoint text
  ChaosStats stats() const;

 private:
  struct Conn;
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

}  // namespace soctest
