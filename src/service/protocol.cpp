#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <map>

#include "common/sharded_cache.hpp"
#include "report/json.hpp"

namespace soctest {

namespace {

/// Integer-valued JSON number, rejecting fractions ("widths":[16.5] is a
/// client bug worth a loud error, not a silent truncation).
bool as_int(const JsonValue& value, long long* out) {
  if (!value.is_number()) return false;
  if (value.number != std::floor(value.number)) return false;
  *out = static_cast<long long>(value.number);
  return true;
}

Status bad_field(const std::string& name, const std::string& why) {
  return invalid_argument_error("request field '" + name + "': " + why);
}

}  // namespace

const char* power_mode_name(PowerConstraintMode mode) {
  switch (mode) {
    case PowerConstraintMode::kPairwiseSerialization:
      return "pairwise";
    case PowerConstraintMode::kBusMaxSum:
      return "busmax";
  }
  return "pairwise";
}

StatusOr<ServiceRequest> parse_request(const std::string& line) {
  std::string error;
  const auto doc = parse_json(line, &error);
  if (!doc) return parse_error("request is not valid JSON: " + error);
  if (!doc->is_object()) return parse_error("request must be a JSON object");
  const std::string schema = doc->string_or("schema", "");
  if (schema != kRequestSchema) {
    return invalid_argument_error(
        schema.empty() ? "request has no \"schema\" member"
                       : "unsupported request schema '" + schema +
                             "' (this server speaks " + kRequestSchema + ")");
  }

  ServiceRequest request;
  for (const auto& [name, value] : doc->members) {
    long long n = 0;
    if (name == "schema") {
      continue;
    } else if (name == "id") {
      if (!value.is_string()) return bad_field(name, "expected a string");
      request.id = value.text;
    } else if (name == "soc") {
      if (!value.is_string()) return bad_field(name, "expected a string");
      request.soc = value.text;
    } else if (name == "soc_text") {
      if (!value.is_string()) return bad_field(name, "expected a string");
      request.soc_text = value.text;
    } else if (name == "widths") {
      if (!value.is_array()) return bad_field(name, "expected an array");
      if (value.items.size() > static_cast<std::size_t>(kMaxRequestBuses)) {
        return bad_field(name, "more than " + std::to_string(kMaxRequestBuses) +
                                   " buses");
      }
      for (const JsonValue& w : value.items) {
        if (!as_int(w, &n) || n < 1 || n > kMaxRequestWidth) {
          return bad_field(name, "widths must be integers in [1, " +
                                     std::to_string(kMaxRequestWidth) + "]");
        }
        request.widths.push_back(static_cast<int>(n));
      }
      if (request.widths.empty()) return bad_field(name, "empty list");
    } else if (name == "buses") {
      if (!as_int(value, &n) || n < 1 || n > kMaxRequestBuses) {
        return bad_field(name, "expected an integer in [1, " +
                                   std::to_string(kMaxRequestBuses) + "]");
      }
      request.buses = static_cast<int>(n);
    } else if (name == "width") {
      if (!as_int(value, &n) || n < 1 || n > kMaxRequestWidth) {
        return bad_field(name, "expected an integer in [1, " +
                                   std::to_string(kMaxRequestWidth) + "]");
      }
      request.total_width = static_cast<int>(n);
    } else if (name == "dmax") {
      if (!as_int(value, &n)) return bad_field(name, "expected an integer");
      request.d_max = static_cast<int>(n);
    } else if (name == "wire_budget") {
      if (!as_int(value, &n)) return bad_field(name, "expected an integer");
      request.wire_budget = n;
    } else if (name == "pmax") {
      if (!value.is_number()) return bad_field(name, "expected a number");
      request.p_max = value.number;
    } else if (name == "power_mode") {
      if (!value.is_string()) return bad_field(name, "expected a string");
      if (value.text == "pairwise") {
        request.power_mode = PowerConstraintMode::kPairwiseSerialization;
      } else if (value.text == "busmax") {
        request.power_mode = PowerConstraintMode::kBusMaxSum;
      } else {
        return bad_field(name, "expected pairwise or busmax");
      }
    } else if (name == "ate_depth") {
      if (!as_int(value, &n)) return bad_field(name, "expected an integer");
      request.ate_depth = n;
    } else if (name == "solver") {
      if (!value.is_string()) return bad_field(name, "expected a string");
      if (value.text == "exact") {
        request.solver = InnerSolver::kExact;
      } else if (value.text == "ilp") {
        request.solver = InnerSolver::kIlp;
      } else if (value.text == "greedy") {
        request.solver = InnerSolver::kGreedy;
      } else if (value.text == "sa") {
        request.solver = InnerSolver::kSa;
      } else if (value.text == "portfolio") {
        request.solver = InnerSolver::kPortfolio;
      } else if (value.text == "pack") {
        request.solver = InnerSolver::kPack;
      } else if (value.text == "pack-exact") {
        request.solver = InnerSolver::kPackExact;
      } else {
        return bad_field(name, "unknown solver '" + value.text + "'");
      }
    } else if (name == "seed") {
      if (!as_int(value, &n) || n < 0) {
        return bad_field(name, "expected a non-negative integer");
      }
      request.seed = static_cast<std::uint64_t>(n);
    } else if (name == "threads") {
      if (!as_int(value, &n) || n < 0 || n > kMaxRequestThreads) {
        return bad_field(name, "expected an integer in [0, " +
                                   std::to_string(kMaxRequestThreads) +
                                   "] (0 = auto)");
      }
      request.threads = static_cast<int>(n);
    } else if (name == "time_limit_ms") {
      if (!value.is_number()) return bad_field(name, "expected a number");
      request.time_limit_ms = value.number;
    } else if (name == "no_cache") {
      if (!value.is_bool()) return bad_field(name, "expected a boolean");
      request.no_cache = value.boolean;
    } else if (name == "stream") {
      if (!value.is_bool()) return bad_field(name, "expected a boolean");
      request.stream = value.boolean;
    } else if (name == "trace") {
      if (!value.is_object()) return bad_field(name, "expected an object");
      for (const auto& [tname, tvalue] : value.members) {
        if (tname == "trace_id") {
          if (!tvalue.is_string() || tvalue.text.empty()) {
            return bad_field("trace.trace_id", "expected a non-empty string");
          }
          request.trace_id = tvalue.text;
        } else if (tname == "parent_span") {
          if (!tvalue.is_string()) {
            return bad_field("trace.parent_span", "expected a string");
          }
          request.trace_parent = tvalue.text;
        } else {
          return invalid_argument_error("unknown request field 'trace." +
                                        tname + "'");
        }
      }
      if (request.trace_id.empty()) {
        return bad_field(name, "trace object requires trace_id");
      }
    } else {
      return invalid_argument_error("unknown request field '" + name + "'");
    }
  }
  if (request.widths.empty() && request.total_width < request.buses) {
    return invalid_argument_error(
        "width must be at least buses (one wire per bus)");
  }
  return request;
}

std::string request_json(const ServiceRequest& request) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kRequestSchema);
  if (!request.id.empty()) w.key("id").value(request.id);
  w.key("soc").value(request.soc);
  if (!request.soc_text.empty()) w.key("soc_text").value(request.soc_text);
  if (!request.widths.empty()) {
    w.key("widths").begin_array();
    for (int width : request.widths) w.value(width);
    w.end_array();
  } else {
    w.key("buses").value(request.buses);
    w.key("width").value(request.total_width);
  }
  if (request.d_max >= 0) w.key("dmax").value(request.d_max);
  if (request.wire_budget >= 0) w.key("wire_budget").value(request.wire_budget);
  if (request.p_max >= 0) w.key("pmax").value(request.p_max);
  if (request.power_mode != PowerConstraintMode::kPairwiseSerialization) {
    w.key("power_mode").value(power_mode_name(request.power_mode));
  }
  if (request.ate_depth >= 0) {
    w.key("ate_depth").value(static_cast<long long>(request.ate_depth));
  }
  w.key("solver").value(inner_solver_name(request.solver));
  if (request.seed != 0) {
    w.key("seed").value(static_cast<long long>(request.seed));
  }
  if (request.threads != 1) w.key("threads").value(request.threads);
  if (request.time_limit_ms >= 0) {
    w.key("time_limit_ms").value(request.time_limit_ms);
  }
  if (request.no_cache) w.key("no_cache").value(true);
  if (request.stream) w.key("stream").value(true);
  if (!request.trace_id.empty()) {
    w.key("trace").begin_object();
    w.key("trace_id").value(request.trace_id);
    if (!request.trace_parent.empty()) {
      w.key("parent_span").value(request.trace_parent);
    }
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::string partial_json(const PartialRecord& partial) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kPartialSchema);
  w.key("id").value(partial.id);
  if (!partial.trace_id.empty()) w.key("trace_id").value(partial.trace_id);
  w.key("seq").value(partial.seq);
  w.key("widths").begin_array();
  for (int width : partial.widths) w.value(width);
  w.end_array();
  w.key("t_cycles").value(partial.t_cycles);
  w.key("lower_bound").value(partial.lower_bound);
  w.key("gap").value(partial.gap);
  w.end_object();
  return w.str();
}

ClientBatchSummary summarize_client_batch(
    const std::vector<std::string>& request_lines,
    const std::vector<std::string>& response_lines) {
  ClientBatchSummary summary;
  summary.requests = request_lines.size();

  // Multiset of outstanding request ids. Unparseable request lines still
  // occupy a slot under the id the server would recover for them ("" when
  // nothing is recoverable) — the server answers those with an error
  // response carrying that id.
  std::map<std::string, std::size_t> outstanding;
  for (const std::string& line : request_lines) {
    std::string id;
    if (const auto doc = parse_json(line); doc && doc->is_object()) {
      id = doc->string_or("id", "");
    }
    ++outstanding[id];
  }

  for (const std::string& line : response_lines) {
    const auto doc = parse_json(line);
    if (!doc || !doc->is_object()) continue;
    const std::string schema = doc->string_or("schema", "");
    if (schema == kPartialSchema) {
      ++summary.partials;
      continue;
    }
    if (schema != kResponseSchema) continue;
    ++summary.finals;
    const std::string id = doc->string_or("id", "");
    const auto it = outstanding.find(id);
    if (it != outstanding.end() && it->second > 0) {
      if (--it->second == 0) outstanding.erase(it);
    }
  }

  for (const auto& [id, count] : outstanding) {
    for (std::size_t i = 0; i < count; ++i) summary.missing_ids.push_back(id);
  }
  return summary;
}

std::string response_json(const SolveOutcome& outcome,
                          const ResponseMeta& meta) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kResponseSchema);
  w.key("id").value(meta.id);
  if (!meta.trace_id.empty()) w.key("trace_id").value(meta.trace_id);
  w.key("ok").value(outcome.ok);
  if (!outcome.ok) {
    w.key("error").begin_object();
    w.key("code").value(outcome.error_code);
    w.key("message").value(outcome.error_message);
    w.end_object();
  }
  w.key("cached").value(meta.cached);
  if (outcome.ok) {
    w.key("feasible").value(outcome.feasible);
    w.key("status").value(outcome.status);
    w.key("stop").value(outcome.stop);
    w.key("widths").begin_array();
    for (int width : outcome.widths) w.value(width);
    w.end_array();
    w.key("t_cycles").value(outcome.t_cycles);
    w.key("lower_bound").value(outcome.lower_bound);
    w.key("gap").value(outcome.gap);
  }
  if (meta.include_timing) {
    w.key("queue_ms").value(meta.queue_ms);
    w.key("wall_ms").value(meta.wall_ms);
  }
  w.end_object();
  return w.str();
}

std::string error_response_json(const std::string& id, const Status& status,
                                bool include_timing, double wall_ms,
                                const std::string& trace_id) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kResponseSchema);
  w.key("id").value(id);
  if (!trace_id.empty()) w.key("trace_id").value(trace_id);
  w.key("ok").value(false);
  w.key("error").begin_object();
  w.key("code").value(status_code_name(status.code()));
  w.key("message").value(status.message());
  w.end_object();
  w.key("cached").value(false);
  if (include_timing) w.key("wall_ms").value(wall_ms);
  w.end_object();
  return w.str();
}

namespace {

/// Shared shape of ping and pong: {"schema":...,"id":...}.
std::string probe_json(const char* schema, const std::string& id) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(schema);
  w.key("id").value(id);
  w.end_object();
  return w.str();
}

bool parse_probe(const char* schema, const std::string& line,
                 std::string* id) {
  if (line.find(schema) == std::string::npos) return false;
  const auto doc = parse_json(line);
  if (!doc || !doc->is_object()) return false;
  if (doc->string_or("schema", "") != schema) return false;
  *id = doc->string_or("id", "");
  return true;
}

}  // namespace

std::string ping_json(const std::string& id) {
  return probe_json(kPingSchema, id);
}

std::string pong_json(const std::string& id) {
  return probe_json(kPongSchema, id);
}

bool parse_ping(const std::string& line, std::string* id) {
  return parse_probe(kPingSchema, line, id);
}

bool parse_pong(const std::string& line, std::string* id) {
  return parse_probe(kPongSchema, line, id);
}

std::string oversized_line_response_json() {
  return error_response_json(
      "",
      resource_exhausted_error(
          "request line exceeds the " +
          std::to_string(kMaxProtocolLineBytes) +
          "-byte protocol cap (docs/service.md); bytes up to the next "
          "newline were discarded"),
      /*include_timing=*/false);
}

std::string rejection_json(const std::string& id, double retry_after_ms,
                           const std::string& message,
                           const std::string& trace_id) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kResponseSchema);
  w.key("id").value(id);
  if (!trace_id.empty()) w.key("trace_id").value(trace_id);
  w.key("ok").value(false);
  w.key("error").begin_object();
  w.key("code").value(status_code_name(StatusCode::kResourceExhausted));
  w.key("message").value(message);
  w.end_object();
  w.key("cached").value(false);
  w.key("retry_after_ms").value(retry_after_ms);
  w.end_object();
  return w.str();
}

std::string trace_span_guid(std::string_view trace_id,
                            std::string_view label) {
  std::string key;
  key.reserve(trace_id.size() + 1 + label.size());
  key.append(trace_id);
  key.push_back('/');
  key.append(label);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(key)));
  return std::string(buf, 16);
}

void stamp_trace(obs::Span& span, const ServiceRequest& request,
                 std::string_view span_name) {
  // The untraced fast path: one empty() check, no Arg construction.
  if (request.trace_id.empty() || !span.active()) return;
  span.arg({"trace_id", request.trace_id});
  span.arg({"span_guid", trace_span_guid(request.trace_id, span_name)});
  if (!request.trace_parent.empty()) {
    span.arg({"parent_guid", request.trace_parent});
  }
}

std::string stats_probe_json(const std::string& id) {
  return probe_json(kStatsSchema, id);
}

bool parse_stats_probe(const std::string& line, std::string* id) {
  if (line.find(kStatsSchema) == std::string::npos) return false;
  const auto doc = parse_json(line);
  if (!doc || !doc->is_object()) return false;
  if (doc->string_or("schema", "") != kStatsSchema) return false;
  // Replies reuse the schema tag; only a reply carries `role`.
  if (doc->find("role") != nullptr) return false;
  *id = doc->string_or("id", "");
  return true;
}

std::string serve_stats_json(const ServeStatsSnapshot& snapshot) {
  const long long lookups = snapshot.cache_hits + snapshot.cache_misses;
  const double hit_rate =
      lookups > 0 ? static_cast<double>(snapshot.cache_hits) /
                        static_cast<double>(lookups)
                  : 0.0;
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kStatsSchema);
  if (!snapshot.id.empty()) w.key("id").value(snapshot.id);
  w.key("role").value(snapshot.role);
  w.key("cache_hit_rate").value(hit_rate);
  w.key("cache_hits").value(snapshot.cache_hits);
  w.key("cache_misses").value(snapshot.cache_misses);
  w.key("completed").value(snapshot.completed);
  w.key("errors").value(snapshot.errors);
  w.key("p50_ms").value(snapshot.p50_ms);
  w.key("p95_ms").value(snapshot.p95_ms);
  w.key("queue_depth").value(snapshot.queue_depth);
  w.key("received").value(snapshot.received);
  w.key("rejected").value(snapshot.rejected);
  w.key("req_rate").value(snapshot.req_rate);
  w.key("uptime_s").value(snapshot.uptime_s);
  w.key("window_s").value(snapshot.window_s);
  w.end_object();
  return w.str();
}

}  // namespace soctest
