#include "service/server.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "common/parallel.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "report/json.hpp"
#include "runtime/deadline.hpp"
#include "soc/builtin.hpp"
#include "soc/soc_format.hpp"
#include "tam/architect.hpp"

namespace soctest {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

StatusOr<Soc> load_request_soc(const ServiceRequest& request) {
  if (!request.soc_text.empty()) {
    return parse_soc_string(request.soc_text,
                            request.id.empty() ? "<inline>" : request.id);
  }
  if (request.soc == "soc1") return builtin_soc1();
  if (request.soc == "soc2") return builtin_soc2();
  if (request.soc == "soc3") return builtin_soc3();
  if (request.soc == "soc4") return builtin_soc4();
  return parse_soc_file(request.soc);
}

/// Best-effort id recovery from a line parse_request rejected, so even the
/// error response for a half-broken request can be matched by the client.
std::string recover_id(const std::string& line) {
  const auto doc = parse_json(line);
  if (doc && doc->is_object()) return doc->string_or("id", "");
  return "";
}

/// Runs the actual design flow for one admitted request. Never throws:
/// every failure becomes an ok=false outcome.
SolveOutcome solve_request(const ServiceRequest& request, const Soc& soc,
                           const CancellationToken* cancel,
                           double effective_time_limit_ms,
                           const ProgressFn& progress) {
  SolveOutcome outcome;
  try {
    DesignRequest design_request;
    design_request.progress = progress;
    design_request.bus_widths = request.widths;
    design_request.num_buses = request.buses;
    design_request.total_width = request.total_width;
    design_request.d_max = request.d_max;
    design_request.wire_budget = request.wire_budget;
    design_request.p_max_mw = request.p_max;
    design_request.power_mode = request.power_mode;
    design_request.ate_depth_limit = request.ate_depth;
    design_request.solver = request.solver;
    design_request.threads = request.threads;
    design_request.cancel = cancel;
    if (effective_time_limit_ms >= 0) {
      design_request.deadline = Deadline::after_ms(effective_time_limit_ms);
    }
    const DesignResult design = design_architecture(soc, design_request);
    if (design.certificate.status == SolveStatus::kError) {
      outcome.error_code = status_code_name(StatusCode::kInternal);
      outcome.error_message = design.certificate.error.empty()
                                  ? "solve failed"
                                  : design.certificate.error;
      return outcome;
    }
    outcome.ok = true;
    outcome.feasible = design.feasible;
    outcome.status = solve_status_name(design.certificate.status);
    outcome.stop = stop_reason_name(design.stop);
    outcome.widths = design.bus_widths;
    outcome.t_cycles =
        design.feasible ? static_cast<long long>(design.assignment.makespan)
                        : -1;
    outcome.lower_bound = design.certificate.lower_bound;
    outcome.gap = design.certificate.gap();
    outcome.solve_mode = search_mode_name(design.search_mode);
  } catch (const std::invalid_argument& e) {
    outcome.ok = false;
    outcome.error_code = status_code_name(StatusCode::kInvalidArgument);
    outcome.error_message = e.what();
  } catch (const std::runtime_error& e) {
    // The architect throws std::runtime_error for structurally infeasible
    // constraint sets — a legitimate (and deterministic) solve answer.
    outcome.ok = true;
    outcome.feasible = false;
    outcome.status = solve_status_name(SolveStatus::kInfeasible);
    outcome.stop = stop_reason_name(StopReason::kNone);
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.error_code = status_code_name(StatusCode::kInternal);
    outcome.error_message = e.what();
  }
  return outcome;
}

}  // namespace

struct SolveService::Job {
  ServiceRequest request;
  std::function<void(std::string)> done;
  std::function<void(std::string)> partial;
  Clock::time_point enqueued;
};

SolveService::SolveService(const ServiceConfig& config)
    : config_(config),
      cache_(config.cache_capacity,
             config.cache_shards == 0 ? 1 : config.cache_shards) {
  if (!config_.serial) {
    pool_ = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(resolve_thread_count(config_.workers)));
  }
}

SolveService::~SolveService() { drain(); }

void SolveService::submit(const std::string& line,
                          std::function<void(std::string)> done,
                          std::function<void(std::string)> partial) {
  received_.fetch_add(1, std::memory_order_relaxed);
  obs::counter("service.requests.received").add();
  req_rate_.add();

  StatusOr<ServiceRequest> parsed = parse_request(line);
  if (!parsed.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("service.requests.error").add();
    done(error_response_json(recover_id(line), parsed.status(),
                             /*include_timing=*/!config_.serial));
    return;
  }
  const std::string id = parsed.value().id;

  if (draining()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("service.requests.rejected").add();
    done(rejection_json(id, config_.retry_after_ms, "server draining",
                        parsed.value().trace_id));
    return;
  }

  auto job = std::make_shared<Job>();
  job->request = parsed.take();
  job->done = std::move(done);
  if (job->request.stream) job->partial = std::move(partial);
  job->enqueued = Clock::now();

  if (config_.serial) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
    run_job(job);
    return;
  }

  // Admission control: the queued-or-running count is bounded by
  // queue_capacity; beyond it the request is refused with backpressure
  // advice instead of building unbounded latency.
  const long long depth = in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (static_cast<std::size_t>(depth) >= config_.queue_capacity) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("service.requests.rejected").add();
    job->done(rejection_json(id, config_.retry_after_ms,
                             "queue full (" +
                                 std::to_string(config_.queue_capacity) +
                                 " jobs in flight)",
                             job->request.trace_id));
    return;
  }
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::histogram("service.queue.depth")
        .observe(static_cast<double>(depth + 1));
  }
  pool_->post([this, job] {
    run_job(job);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void SolveService::run_job(const std::shared_ptr<Job>& job) {
  const double queue_ms = config_.serial ? 0.0 : ms_since(job->enqueued);
  if (obs::enabled()) {
    obs::histogram("service.queue.wait_ms").observe(queue_ms);
  }
  bool cached = false;
  std::string response;
  {
    obs::Span span("service.request", {{"id", job->request.id},
                                       {"soc", job->request.soc},
                                       {"solver",
                                        inner_solver_name(
                                            job->request.solver)}});
    // Adopt the caller's trace context: this span becomes the worker-side
    // child of the client/frontdoor span named in trace.parent_span.
    stamp_trace(span, job->request, "service.request");
    response = execute(job->request, &cached, job->partial);
    if (span.active()) span.arg({"cached", cached});
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  job->done(std::move(response));
}

std::string SolveService::execute(
    const ServiceRequest& request, bool* cached,
    const std::function<void(std::string)>& partial) {
  const auto start = Clock::now();
  ResponseMeta meta;
  meta.id = request.id;
  meta.trace_id = request.trace_id;
  meta.include_timing = !config_.serial;

  StatusOr<Soc> loaded = load_request_soc(request);
  if (!loaded.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("service.requests.error").add();
    latency_ms_.observe(ms_since(start));
    return error_response_json(request.id, loaded.status(),
                               meta.include_timing, ms_since(start),
                               request.trace_id);
  }
  const Soc soc = loaded.take();

  const bool use_cache = cacheable_request(request);
  std::string key;
  if (use_cache) {
    key = solve_cache_key(request, soc);
    if (auto hit = cache_.get(key)) {
      obs::counter("service.cache.hits").add();
      meta.cached = true;
      *cached = true;
      meta.queue_ms = 0.0;
      meta.wall_ms = ms_since(start);
      latency_ms_.observe(meta.wall_ms);
      append_service_ledger(request, *hit, meta.wall_ms);
      if (hit->ok) {
        obs::counter("service.requests.ok").add();
      }
      return response_json(*hit, meta);
    }
    obs::counter("service.cache.misses").add();
  }

  // Cap the client's budget with the operator's: a server must be able to
  // bound worst-case job occupancy regardless of what clients ask for.
  double limit_ms = request.time_limit_ms;
  if (config_.max_time_limit_ms >= 0 &&
      (limit_ms < 0 || limit_ms > config_.max_time_limit_ms)) {
    limit_ms = config_.max_time_limit_ms;
  }

  // Streaming: translate incumbent improvements into soctest-partial-v1
  // lines. The callback runs on this job's thread, so the sequence state
  // needs no lock; the strictly-better filter here is the protocol's
  // monotonic-gap guarantee (the lower bound is fixed per request, so
  // decreasing t_cycles implies non-increasing gap).
  ProgressFn progress;
  long long partial_seq = 0;
  long long partial_best = -1;
  if (partial && request.stream) {
    progress = [&](const SolveProgress& snapshot) {
      if (snapshot.t_cycles < 0) return;
      if (partial_best >= 0 && snapshot.t_cycles >= partial_best) return;
      partial_best = snapshot.t_cycles;
      PartialRecord record;
      record.id = request.id;
      record.trace_id = request.trace_id;
      record.seq = ++partial_seq;
      record.widths = snapshot.bus_widths;
      record.t_cycles = snapshot.t_cycles;
      record.lower_bound = snapshot.lower_bound;
      record.gap = snapshot.lower_bound > 0
                       ? static_cast<double>(snapshot.t_cycles -
                                             snapshot.lower_bound) /
                             static_cast<double>(snapshot.lower_bound)
                       : -1.0;
      obs::counter("service.stream.partials").add();
      partial(partial_json(record));
    };
  }

  CancellationToken cancel;
  SolveOutcome outcome =
      solve_request(request, soc, &cancel, limit_ms, progress);
  if (outcome.ok) {
    obs::counter("service.requests.ok").add();
  } else {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::counter("service.requests.error").add();
  }
  if (use_cache && cacheable_outcome(outcome)) {
    cache_.put(key, std::make_shared<const SolveOutcome>(outcome));
  }
  meta.wall_ms = ms_since(start);
  if (obs::enabled()) {
    obs::histogram("service.solve.wall_ms").observe(meta.wall_ms);
  }
  latency_ms_.observe(meta.wall_ms);
  append_service_ledger(request, outcome, meta.wall_ms);
  return response_json(outcome, meta);
}

void SolveService::append_service_ledger(const ServiceRequest& request,
                                         const SolveOutcome& outcome,
                                         double wall_ms) {
  if (config_.ledger_path.empty()) return;
  obs::LedgerRecord record;
  record.soc = request.soc_text.empty() ? request.soc : "<inline>";
  record.widths = outcome.widths;
  record.solver = inner_solver_name(request.solver);
  record.seed = request.seed;
  record.threads_configured = request.threads;
  record.threads_effective = resolve_thread_count(request.threads);
  record.feasible = outcome.feasible;
  record.status = outcome.ok ? outcome.status : "error";
  record.gap = outcome.gap;
  record.t_cycles = outcome.t_cycles;
  record.solve_mode = outcome.solve_mode;
  record.wall_ms = wall_ms;
  record.trace_id = request.trace_id;
  record.exit_code = outcome.ok ? (outcome.feasible ? 0 : 1) : kExitInternal;
  // Deliberately no counter snapshot: the registry is cumulative across the
  // server's lifetime, so per-request values would be meaningless.
  obs::append_ledger_record(config_.ledger_path, record);
}

void SolveService::drain() {
  draining_.store(true, std::memory_order_release);
  if (pool_) pool_->wait_all();
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  s.received = received_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  const ResultCache::Stats cache = cache_.stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  return s;
}

ServeStatsSnapshot SolveService::stats_snapshot() const {
  ServeStatsSnapshot snap;
  snap.role = "serve";
  const ServiceStats s = stats();
  snap.received = s.received;
  snap.completed = s.completed;
  snap.rejected = s.rejected;
  snap.errors = s.errors;
  snap.cache_hits = s.cache_hits;
  snap.cache_misses = s.cache_misses;
  snap.queue_depth = static_cast<long long>(queue_depth());
  snap.req_rate = req_rate_.rate();
  snap.p50_ms = latency_ms_.percentile(0.50);
  snap.p95_ms = latency_ms_.percentile(0.95);
  snap.uptime_s =
      std::chrono::duration<double>(Clock::now() - started_).count();
  return snap;
}

}  // namespace soctest
