#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

#include "runtime/status.hpp"

namespace soctest {

/// The scale-out front door (docs/service.md, docs/operations.md): one
/// poll-driven proxy process that listens on TCP, spawns N `soctest-serve`
/// worker processes on private Unix sockets, and shards every request to
/// a worker keyed by the SOC content fingerprint — the same fnv1a64 the
/// result cache keys on, so identical SOCs always land on the same worker
/// and its LRU shard stays hot (cache affinity for free).
///
/// Forwarding is verbatim in both directions: the front door never
/// rewrites request or response bytes. It demultiplexes by connection —
/// each client connection gets its own lazily-opened connection per
/// worker — so client-chosen ids never collide across clients. Within one
/// client connection, finals are matched to outstanding requests by id
/// (first match wins), which is also the crash-retry bookkeeping;
/// clients that reuse ids with different request bodies should expect
/// retry accounting to treat same-id requests as interchangeable.
///
/// Fault handling: a worker that exits is detected by waitpid, respawned
/// (up to `max_restarts` times), and every request that was in flight on
/// it is resent to the fresh process — no request accepted by the front
/// door is ever silently lost. Past the restart budget the shard is
/// declared broken and its requests are answered with internal errors.
/// With heartbeats enabled the same machinery also covers *hung* workers:
/// a worker that stops answering pings on its health connection is
/// SIGKILLed and then handled exactly like a crash.
///
/// Two request kinds are answered authoritatively instead of relayed:
/// soctest-ping-v1 (a pong, straight from the poll loop — client health
/// checks measure the front door, not a worker queue) and lines exceeding
/// kMaxProtocolLineBytes (a structured error; relaying a line the front
/// door refused to buffer is impossible by construction).
///
/// Backpressure: beyond `max_inflight` outstanding requests the front
/// door rejects with `retry_after_ms` itself (before any worker sees the
/// request); worker-level queue-full rejections pass through verbatim, so
/// the advice reaches the client end to end either way.
struct FrontDoorConfig {
  /// TCP listen endpoint, HOST:PORT; port 0 binds an ephemeral port
  /// (read it back via port()).
  std::string listen = "127.0.0.1:0";
  int workers = 2;
  /// Path to the soctest-serve binary to spawn.
  std::string serve_binary;
  /// Directory for worker sockets (and ledgers); empty = private mkdtemp,
  /// removed on shutdown.
  std::string work_dir;
  /// Run workers with --serial (deterministic per-shard streams).
  bool serial_workers = false;
  int worker_threads = 0;           ///< --workers passed to each worker
  std::size_t worker_queue = 64;    ///< --queue per worker
  std::size_t worker_cache = 512;   ///< --cache per worker
  double max_time_limit_ms = -1.0;  ///< --max-time-limit-ms when >= 0
  /// Give each worker its own ledger file in work_dir
  /// (worker-<i>.ledger.jsonl) for fleet-wide SLO analysis.
  bool worker_ledgers = false;
  /// Front-door admission bound across all clients and workers.
  std::size_t max_inflight = 256;
  double retry_after_ms = 50.0;
  /// Respawn budget per worker before its shard is declared broken.
  /// Hung-worker kills (heartbeat timeouts) spend the same budget.
  int max_restarts = 3;
  /// Heartbeat interval for worker liveness probes; 0 disables. Each
  /// worker gets a dedicated health connection on which the front door
  /// sends soctest-ping-v1 every interval; the worker's transport answers
  /// pongs from its poll loop without queuing behind solves. A worker
  /// silent past heartbeat_timeout_ms is *hung* (SIGSTOP, deadlock,
  /// runaway) — crash supervision alone never notices it — and is
  /// SIGKILLed so the ordinary respawn-and-resend machinery takes over.
  ///
  /// Caveat: serial workers solve on their poll thread, so the timeout
  /// must exceed the longest expected single solve; that is why the
  /// default is off.
  double heartbeat_ms = 0.0;
  /// Silence threshold before a worker is declared hung; <= 0 derives
  /// 5 * heartbeat_ms.
  double heartbeat_timeout_ms = 0.0;
  /// Reap a client connection with no request in flight, nothing
  /// buffered, and no bytes read for this long (half-open peers must not
  /// hold slots forever); <= 0 disables.
  double idle_timeout_ms = 60000.0;
  /// When non-empty, each worker is spawned with `--trace-dir` pointing
  /// here, so every process of the fleet drops its soctest-trace-v1 shard
  /// (worker-<pid>, frontdoor-<pid>, ...) into one directory for
  /// `soctest-perf trace-merge`. The front door's own shard is written by
  /// its driver (tools/soctest_frontdoor.cpp), not by this class.
  std::string trace_dir;
  /// When non-empty, append one minimal `"kind":"rejected"` ledger record
  /// (id, shard, retry_after_ms, trace_id) per admission-control
  /// rejection, so loadgen's rejected count reconciles offline against
  /// the solve ledgers. Completed solves are recorded by the workers'
  /// own ledgers (worker_ledgers), never here.
  std::string ledger_path;
};

struct FrontDoorStats {
  long long received = 0;   ///< request lines read from clients
  long long forwarded = 0;  ///< shipped to a worker
  long long rejected = 0;   ///< refused by front-door admission control
  long long completed = 0;  ///< final responses relayed back
  long long partials = 0;   ///< soctest-partial-v1 records relayed back
  long long errors = 0;     ///< answered by the front door with an error
  long long restarts = 0;   ///< worker processes respawned after a crash
  long long retried = 0;    ///< in-flight requests resent after a respawn
  long long hung_restarts = 0;  ///< workers killed for heartbeat silence
};

class FrontDoor {
 public:
  explicit FrontDoor(FrontDoorConfig config);
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  /// Spawns the workers, waits until each accepts connections, and binds
  /// the TCP listener. Call once, before serve().
  Status start();

  /// Runs the poll loop until shutdown_requested() or stop(). Returns the
  /// process exit code (0 = clean drain: every in-flight request answered,
  /// workers SIGTERMed and reaped).
  int serve();

  /// Asks a serve() running on another thread to drain and return; unlike
  /// request_shutdown() it is scoped to this instance (tests).
  void stop();

  int port() const;               ///< bound TCP port after start()
  std::string endpoint() const;   ///< "host:port" after start()
  std::vector<pid_t> worker_pids() const;
  FrontDoorStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The sharding contract, exposed pure for tests and capacity planning:
/// fnv1a64 of the request's `soc_text` when present, else of its `soc`
/// name (defaulting like the parser does). Unparseable lines fingerprint
/// to 0 — they shard to worker 0, which answers them with parse errors.
std::uint64_t request_fingerprint(const std::string& line);

/// request_fingerprint(line) % num_workers (0 when num_workers <= 1).
int shard_for_line(const std::string& line, int num_workers);

/// The front door's exit stats line ("soctest-frontdoor: 3 completed,
/// ... 0 retried"), fields name-sorted like every other CLI metrics dump
/// (the documented contract `--metrics` and `soctest-perf diff` rely on).
/// Exposed pure so a test can pin the ordering.
std::string frontdoor_stats_line(const FrontDoorStats& stats);

}  // namespace soctest
