#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/status.hpp"
#include "tam/tam_problem.hpp"
#include "tam/width_partition.hpp"

namespace soctest {

// Versioned JSON-lines solve protocol (docs/service.md):
//   request  = one "soctest-req-v1" JSON object per line
//   response = one "soctest-resp-v1" JSON object per line
//   partial  = zero or more "soctest-partial-v1" JSON objects per
//              streaming request, before its final response
// Responses carry the request's `id`, so a pipelined client can match them
// even when a concurrent server completes jobs out of order. The serial
// (deterministic) server mode additionally preserves request order and
// omits timing fields, making response streams byte-identical across runs.
//
// Streaming: a request with `"stream":true` opts into partial records —
// one per improving incumbent the anytime solver finds, gap monotonically
// non-increasing, always terminated by the ordinary final response on the
// same connection. Clients that never set `stream` never see a partial, so
// strict non-streaming parsers keep working unchanged.

inline constexpr const char* kRequestSchema = "soctest-req-v1";
inline constexpr const char* kResponseSchema = "soctest-resp-v1";
inline constexpr const char* kPartialSchema = "soctest-partial-v1";
inline constexpr const char* kPingSchema = "soctest-ping-v1";
inline constexpr const char* kPongSchema = "soctest-pong-v1";
inline constexpr const char* kStatsSchema = "soctest-stats-v1";

/// Hard cap on one protocol line, enforced by every poll-based line reader
/// (server transport, front door, clients). Sized to hold a request whose
/// soc_text is at the .soc parser's own 16 MiB input cap even after JSON
/// escaping doubles it; anything longer is a broken or hostile peer, and a
/// newline-less byte stream must never grow a read buffer without bound.
/// Readers answer one structured resource_exhausted error per oversized
/// line and discard bytes until the next newline resynchronizes the stream.
inline constexpr std::size_t kMaxProtocolLineBytes = 32u << 20;

/// Sanity bounds on request fields, enforced by parse_request. They exist
/// for robustness, not modeling: a fuzzer (or a hostile client) can write
/// "width": 99999999 and the per-width staircase tables would try to
/// allocate it. Real designs sit orders of magnitude below these.
inline constexpr long long kMaxRequestWidth = 1 << 16;
inline constexpr int kMaxRequestBuses = 4096;
inline constexpr int kMaxRequestThreads = 4096;

/// One parsed solve request. Defaults mirror the CLI's: a request only
/// states what it wants to override.
struct ServiceRequest {
  std::string id;
  /// Builtin name (soc1..soc4) or a .soc file path, like `soctest --soc`.
  std::string soc = "soc1";
  /// Inline .soc source; when non-empty it overrides `soc` (the server
  /// never touches the filesystem for such requests).
  std::string soc_text;
  std::vector<int> widths;  ///< explicit bus widths (skips width search)
  int buses = 2;
  int total_width = 32;
  int d_max = -1;
  long long wire_budget = -1;
  double p_max = -1.0;
  PowerConstraintMode power_mode = PowerConstraintMode::kPairwiseSerialization;
  long long ate_depth = -1;
  InnerSolver solver = InnerSolver::kExact;
  /// Sweep-point seed: not interpreted by the solve (concrete SOCs are
  /// seedless) but part of the cache key and the ledger record, so synthetic
  /// sweeps that regenerate SOCs per seed never alias cache entries.
  std::uint64_t seed = 0;
  int threads = 1;
  /// Per-request wall-clock budget; < 0 means unlimited. Deadline-limited
  /// results are anytime (timing-dependent) and therefore bypass the cache.
  double time_limit_ms = -1.0;
  bool no_cache = false;  ///< skip cache lookup AND fill for this request
  /// Opt into soctest-partial-v1 incumbent streaming for this request.
  /// Delivery-only: it never affects the solve or the cache key (a cache
  /// hit simply answers with the final response and no partials).
  bool stream = false;
  /// Distributed-trace context from the optional `trace` request object
  /// (docs/observability.md). `trace_id` groups spans recorded in different
  /// processes; `trace_parent` is the hex span guid (see trace_span_guid)
  /// of the caller's span, adopted as `parent_guid` by the worker's
  /// service.request span. Both empty = untraced request; like `stream`,
  /// delivery-only — never part of the solve or the cache key.
  std::string trace_id;
  std::string trace_parent;
};

/// Parses one request line. Unknown members are rejected (they are most
/// likely typos of a knob the caller believes it set); a malformed line is
/// a kParseError, a structurally valid object with bad field values is a
/// kInvalidArgument. Never throws.
StatusOr<ServiceRequest> parse_request(const std::string& line);

/// The request back as its canonical soctest-req-v1 line (used by the CLI
/// client to build requests from flags).
std::string request_json(const ServiceRequest& request);

/// The cacheable part of a solve response: everything except per-delivery
/// fields (id, cached, timing). This is the value the result cache stores.
struct SolveOutcome {
  bool ok = false;            ///< false = the solve itself failed
  std::string error_code;     ///< status_code_name() when !ok
  std::string error_message;  ///< human-readable detail when !ok
  bool feasible = false;
  std::string status;  ///< solve_status_name() of the certificate
  std::string stop;    ///< stop_reason_name() of the certificate
  std::vector<int> widths;
  long long t_cycles = -1;
  long long lower_bound = -1;
  double gap = -1.0;
  /// search_mode_name() of the winning solve; feeds the ledger record only
  /// (not the response line, whose key set is pinned by the protocol).
  std::string solve_mode = "-";
};

/// Per-delivery envelope around an outcome.
struct ResponseMeta {
  std::string id;
  /// Echoed request trace_id (empty = untraced request, field omitted) so
  /// clients and ledgers can attribute a response without keeping their own
  /// id→trace map across retries.
  std::string trace_id;
  bool cached = false;
  /// Timing fields are omitted when include_timing is false (serial mode's
  /// determinism contract).
  bool include_timing = true;
  double queue_ms = 0.0;
  double wall_ms = 0.0;
};

/// Serializes a completed solve as one soctest-resp-v1 line (no newline).
std::string response_json(const SolveOutcome& outcome,
                          const ResponseMeta& meta);

/// Serializes a request-level failure (malformed line, bad field, server
/// error) as one soctest-resp-v1 line with ok=false and an error object.
/// `trace_id`, when non-empty, is echoed like response_json does.
std::string error_response_json(const std::string& id, const Status& status,
                                bool include_timing = true,
                                double wall_ms = 0.0,
                                const std::string& trace_id = "");

/// Serializes an admission-control rejection: ok=false, error code
/// resource_exhausted, plus retry_after_ms backpressure advice.
std::string rejection_json(const std::string& id, double retry_after_ms,
                           const std::string& message,
                           const std::string& trace_id = "");

/// Liveness probe: a soctest-ping-v1 line is answered with a matching
/// soctest-pong-v1 line by the transport layer itself — never queued behind
/// solve jobs, so a responsive poll loop answers even when every worker
/// thread is busy. The front door answers client pings authoritatively and
/// uses pings on its own health links to detect hung (not crashed) workers.
std::string ping_json(const std::string& id);
std::string pong_json(const std::string& id);

/// True iff `line` is a soctest-ping-v1 request; fills `*id` (may be empty).
/// Cheap on non-ping traffic: a substring probe gates the JSON parse.
bool parse_ping(const std::string& line, std::string* id);

/// True iff `line` is a soctest-pong-v1 reply; fills `*id`.
bool parse_pong(const std::string& line, std::string* id);

/// The structured error a reader sends for a line that exceeded
/// kMaxProtocolLineBytes (resource_exhausted; no timing fields, so serial
/// streams stay deterministic). The offender's id is unknowable — the line
/// was discarded unparsed — so the id is empty.
std::string oversized_line_response_json();

const char* power_mode_name(PowerConstraintMode mode);

/// One streamed incumbent improvement (soctest-partial-v1). `seq` starts
/// at 1 and increments per partial of the same request; `t_cycles` is
/// strictly decreasing and `gap` non-increasing across a request's
/// partials (the emitter enforces it). No timing fields: partial streams
/// from a serial server stay byte-identical across runs.
struct PartialRecord {
  std::string id;
  std::string trace_id;  ///< echoed request trace_id; empty = omitted
  long long seq = 1;
  std::vector<int> widths;
  long long t_cycles = -1;
  long long lower_bound = -1;  ///< -1 when no useful bound exists
  double gap = -1.0;           ///< (t - lb) / lb, or -1 without a bound
};

/// Serializes one partial as a soctest-partial-v1 line (no newline).
std::string partial_json(const PartialRecord& partial);

/// What a pipelined client saw, summarized for the "did every request get
/// answered" check. Final responses are matched to request ids as a
/// multiset (duplicate ids allowed, arbitrary response order); partial
/// records are counted but never consume a request slot.
struct ClientBatchSummary {
  std::size_t requests = 0;
  std::size_t finals = 0;    ///< soctest-resp-v1 lines seen
  std::size_t partials = 0;  ///< soctest-partial-v1 lines seen
  /// Request ids (one entry per unanswered request) with no matching final.
  std::vector<std::string> missing_ids;
};

ClientBatchSummary summarize_client_batch(
    const std::vector<std::string>& request_lines,
    const std::vector<std::string>& response_lines);

// ---------------------------------------------------------------------------
// Distributed-trace span linkage (docs/observability.md).
//
// Cross-process span links are content-derived hex-string guids, not the
// sink's integer span ids: integer ids restart at 1 in every process, and
// JSON numbers travel through a double-backed parser that cannot hold a
// random 64-bit id exactly. A span's guid is trace_span_guid(trace_id,
// label); both ends of a parent/child edge can compute it independently,
// so the frontdoor can name the worker span it is about to cause without a
// round trip. Spans carry the links as string args (`trace_id`,
// `span_guid`, `parent_guid`); `soctest-perf trace-merge` joins
// parent_guid -> span_guid across shards.

/// 16-lowercase-hex-char guid for the span `label` of trace `trace_id`
/// (fnv1a64 of "trace_id/label").
std::string trace_span_guid(std::string_view trace_id, std::string_view label);

/// Attaches the cross-process link args to a live span: `trace_id`,
/// `span_guid` = trace_span_guid(trace_id, span_name), and `parent_guid`
/// from the request's parent_span when present. A no-op — zero allocations,
/// zero Arg construction — when the request is untraced or the span is not
/// recording, which is what keeps tracing free on the untraced hot path.
void stamp_trace(obs::Span& span, const ServiceRequest& request,
                 std::string_view span_name);

// ---------------------------------------------------------------------------
// Live fleet scraping (soctest-stats-v1, docs/service.md).
//
// A stats probe is answered by the serve/frontdoor poll loops without
// queueing, exactly like ping/pong; the reply reuses the same schema tag
// and is told apart by its `role` member (a probe has none). The frontdoor
// fans the probe to every worker and returns one merged reply whose
// `shards` array holds each worker's own reply (plus `shard`, or
// `{"shard":k,"broken":true}` for a dead shard).

/// Every member name that may appear in a soctest-stats-v1 reply (probe
/// members included), name-sorted. This is the scrape contract: check_docs
/// diffs it bidirectionally against the field catalog in docs/service.md,
/// and soctest-top renders from it.
inline constexpr const char* kStatsFields[] = {
    "broken",      "cache_hit_rate", "cache_hits", "cache_misses",
    "completed",   "errors",         "hung",       "id",
    "p50_ms",      "p95_ms",         "queue_depth", "received",
    "rejected",    "req_rate",       "restarts",   "role",
    "schema",      "shard",          "shards",     "uptime_s",
    "window_s",    "workers",
};

/// One process's scrape answer. Counters are cumulative since process
/// start; req_rate/p50_ms/p95_ms are computed over the trailing
/// `window_s`-second sliding window (obs::RateCounter /
/// obs::WindowedHistogram).
struct ServeStatsSnapshot {
  std::string id;    ///< echoed probe id (may be empty)
  std::string role;  ///< "serve" or "frontdoor"
  long long received = 0;
  long long completed = 0;
  long long rejected = 0;
  long long errors = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  long long queue_depth = 0;
  double req_rate = 0.0;  ///< requests/second over the window
  double p50_ms = 0.0;    ///< windowed solve-latency percentiles
  double p95_ms = 0.0;
  double uptime_s = 0.0;
  int window_s = 60;
};

/// The probe line: {"schema":"soctest-stats-v1"} plus the echo id.
std::string stats_probe_json(const std::string& id);

/// True iff `line` is a stats *probe* (schema matches and there is no
/// `role` member — replies reuse the schema tag); fills `*id`. Cheap on
/// non-probe traffic: a substring probe gates the JSON parse.
bool parse_stats_probe(const std::string& line, std::string* id);

/// Serializes one process's reply (keys: schema, id when non-empty, role,
/// then the numeric fields name-sorted — the same contract as the CLI
/// metrics dump). cache_hit_rate is derived: hits / (hits + misses), 0
/// when the cache has seen nothing.
std::string serve_stats_json(const ServeStatsSnapshot& snapshot);

}  // namespace soctest
