#include "service/cache.hpp"

#include <sstream>

#include "soc/soc_format.hpp"

namespace soctest {

std::string solve_cache_key(const ServiceRequest& request, const Soc& soc) {
  std::ostringstream key;
  key << "v1|soc:" << std::hex << fnv1a64(write_soc(soc)) << std::dec;
  if (!request.widths.empty()) {
    key << "|w:";
    for (int width : request.widths) key << width << ',';
  } else {
    key << "|b:" << request.buses << "/" << request.total_width;
  }
  key << "|s:" << inner_solver_name(request.solver)
      << "|seed:" << request.seed << "|p:" << request.p_max << '/'
      << power_mode_name(request.power_mode) << "|d:" << request.d_max
      << "|wb:" << request.wire_budget << "|ate:" << request.ate_depth;
  return key.str();
}

bool cacheable_request(const ServiceRequest& request) {
  return !request.no_cache && request.time_limit_ms < 0;
}

bool cacheable_outcome(const SolveOutcome& outcome) {
  return outcome.ok && outcome.stop == "none";
}

}  // namespace soctest
