#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "runtime/status.hpp"
#include "service/server.hpp"

namespace soctest {

/// Transports for the solve service (docs/service.md): newline-delimited
/// JSON over stdio, a Unix domain socket, or TCP. All drain gracefully —
/// on input EOF or a shutdown signal they stop admitting work, finish
/// every accepted job, deliver its response, and return. The socket
/// transports multiplex: one poll loop reads every live connection, and
/// responses (and streamed partials) are written back to the connection
/// that submitted the request, whole lines at a time.

/// Installs SIGTERM/SIGINT handlers that flip the transport shutdown flag
/// (async-signal-safe: one relaxed atomic store). Call once per process,
/// before serving.
void install_shutdown_handlers();

/// True once a shutdown signal arrived (or request_shutdown() ran).
bool shutdown_requested();

/// Programmatic equivalent of SIGTERM, for tests.
void request_shutdown();

/// Serves requests from file descriptor `in_fd` to `out_fd` until EOF or
/// shutdown. Responses are written one per line in completion order (use a
/// serial service for arrival order); writes are serialized internally.
/// Returns the process exit code (0 = clean, including signal-drain).
int serve_stdio(SolveService& service, int in_fd, int out_fd);

/// Binds, listens on, and serves a Unix domain socket at `path` until
/// shutdown: concurrent connections are multiplexed in one poll loop. A
/// shutdown signal stops accepts and reads, answers everything already
/// submitted, drains, unlinks the socket, and returns 0. Returns
/// kExitIoError when the socket cannot be set up.
int serve_unix_socket(SolveService& service, const std::string& path);

/// Same poll-multiplexed server over TCP. `endpoint` is HOST:PORT (IPv4;
/// port 0 = ephemeral). When non-null, `bound_port` receives the actual
/// port once the listener is up — tests and scripts bind port 0 and read
/// it back. `stop` is an optional per-server stop flag checked alongside
/// the process-wide shutdown_requested() (tests stop one server without
/// poisoning the global flag).
int serve_tcp(SolveService& service, const std::string& endpoint,
              std::atomic<int>* bound_port = nullptr,
              const std::atomic<bool>* stop = nullptr);

/// Client side: connects to `endpoint` (Unix path or HOST:PORT), sends
/// every line of `request_lines`, half-closes, and collects response lines
/// (finals and partials alike, in arrival order) until the server closes.
/// Used by `soctest --client`.
StatusOr<std::vector<std::string>> client_roundtrip(
    const std::string& endpoint,
    const std::vector<std::string>& request_lines);

}  // namespace soctest
