#pragma once

#include <string>
#include <vector>

#include "runtime/status.hpp"
#include "service/server.hpp"

namespace soctest {

/// Transports for the solve service (docs/service.md): newline-delimited
/// JSON over stdio or a Unix domain socket. Both drain gracefully — on
/// input EOF or a shutdown signal they stop admitting work, finish every
/// accepted job, deliver its response, and return.

/// Installs SIGTERM/SIGINT handlers that flip the transport shutdown flag
/// (async-signal-safe: one relaxed atomic store). Call once per process,
/// before serving.
void install_shutdown_handlers();

/// True once a shutdown signal arrived (or request_shutdown() ran).
bool shutdown_requested();

/// Programmatic equivalent of SIGTERM, for tests.
void request_shutdown();

/// Serves requests from file descriptor `in_fd` to `out_fd` until EOF or
/// shutdown. Responses are written one per line in completion order (use a
/// serial service for arrival order); writes are serialized internally.
/// Returns the process exit code (0 = clean, including signal-drain).
int serve_stdio(SolveService& service, int in_fd, int out_fd);

/// Binds, listens on, and serves a Unix domain socket at `path` until
/// shutdown. Connections are accepted one at a time (each is read to EOF
/// and answered before the next accept); a shutdown signal stops new
/// accepts, finishes the live connection, drains, unlinks the socket, and
/// returns 0. Returns kExitIoError when the socket cannot be set up.
int serve_unix_socket(SolveService& service, const std::string& path);

/// Client side: connects to the Unix socket at `path`, sends every line of
/// `request_lines`, half-closes, and collects response lines until the
/// server closes. Used by `soctest --client`.
StatusOr<std::vector<std::string>> client_roundtrip(
    const std::string& path, const std::vector<std::string>& request_lines);

}  // namespace soctest
