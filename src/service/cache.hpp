#pragma once

#include <string>

#include "common/sharded_cache.hpp"
#include "service/protocol.hpp"
#include "soc/soc.hpp"

namespace soctest {

/// Sharded LRU cache of solve outcomes, so repeated sweep points return
/// their certificate in microseconds instead of re-running the solver.
/// Built on the same ShardedLruCache primitive as the TestTimeTable memo
/// (src/tam/timing.hpp) — one locking contract for both.
using ResultCache = ShardedLruCache<SolveOutcome>;

/// Cache key of a request against a parsed SOC (docs/service.md):
///
///   "v1|soc:<fnv1a64 of write_soc(soc)>|<solve parameters>"
///
/// The SOC is identified by a content hash of its *canonical serialized
/// form*, so the same model reached via a builtin name, a file path, or
/// inline soc_text shares entries, and byte-level formatting differences
/// of equivalent .soc files never split the cache. Parameters cover
/// everything that changes the answer: widths (or buses+total width when
/// searching), solver, seed, and the power/layout limits (pmax, power
/// mode, dmax, wire budget, ATE depth). Thread count is deliberately
/// absent — solver results are thread-count invariant by the parallel
/// engine's determinism guarantee. Deadline-limited requests are never
/// cached at all (anytime results depend on wall-clock luck), so
/// time_limit_ms is absent too.
std::string solve_cache_key(const ServiceRequest& request, const Soc& soc);

/// Whether this request/outcome pair may use the cache: the request must
/// not opt out (`no_cache`) or carry a deadline, and — on the fill side —
/// the outcome must be a completed solve (ok, not stopped early).
bool cacheable_request(const ServiceRequest& request);
bool cacheable_outcome(const SolveOutcome& outcome);

}  // namespace soctest
