#pragma once

#include <optional>
#include <string>

#include "layout/bus_planner.hpp"
#include "layout/stub_router.hpp"

namespace soctest {

struct SvgOptions {
  int cell_px = 10;          ///< pixels per grid cell
  bool label_cores = true;   ///< draw core names
};

/// Renders the placed SOC as a standalone SVG document: die outline, core
/// macros (labelled), optional bus trunks (one color per bus), and optional
/// detail-routed stubs. Pure string generation, no dependencies; the
/// output passes the repo's XML well-formedness checks and loads in any
/// browser.
std::string render_floorplan_svg(const Soc& soc, const BusPlan* plan = nullptr,
                                 const StubRoutes* stubs = nullptr,
                                 const SvgOptions& options = {});

/// Minimal XML structural check used by the tests: tags balance, attributes
/// are quoted. Empty string when OK, else the first error.
std::string xml_check(const std::string& text);

}  // namespace soctest
