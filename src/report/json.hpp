#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace soctest {

/// Minimal streaming JSON writer (no dependencies): nested objects/arrays,
/// string escaping, numbers, booleans. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("soc1");
///   w.key("widths").begin_array().value(16).value(8).end_array();
///   w.end_object();
///   std::string text = w.str();
///
/// The writer tracks nesting and comma placement; mismatched begin/end or
/// writing a value where a key is required throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object member key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(long long number);
  JsonWriter& value(int number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Finished document; throws if containers are still open.
  std::string str() const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void emit_string(std::string_view text);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

/// Validating JSON parser (structure only; values are not materialized).
/// Returns an empty string when `text` is a single well-formed JSON value,
/// else a description of the first error with its offset.
std::string json_check(std::string_view text);

/// Materialized JSON document tree for the tools that *read* JSON (ledger
/// reports, bench diffs, baseline gates). Numbers are stored as double —
/// counter values fit exactly up to 2^53, far beyond anything the solvers
/// emit. Object members keep document order; `find` is linear, which is
/// fine for the record-sized objects this repo produces.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                            ///< kArray
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Member's number/string with a fallback when absent or mistyped.
  double number_or(std::string_view key, double fallback) const;
  std::string string_or(std::string_view key, std::string fallback) const;
};

/// Parses one JSON document into a JsonValue tree. On failure returns
/// std::nullopt and, when `error` is non-null, stores a message with the
/// byte offset of the first problem.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace soctest
