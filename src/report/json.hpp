#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace soctest {

/// Minimal streaming JSON writer (no dependencies): nested objects/arrays,
/// string escaping, numbers, booleans. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("soc1");
///   w.key("widths").begin_array().value(16).value(8).end_array();
///   w.end_object();
///   std::string text = w.str();
///
/// The writer tracks nesting and comma placement; mismatched begin/end or
/// writing a value where a key is required throws std::logic_error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  /// Object member key; must be followed by a value or container.
  JsonWriter& key(std::string_view name);
  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(long long number);
  JsonWriter& value(int number);
  JsonWriter& value(std::size_t number);
  JsonWriter& value(double number);
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Finished document; throws if containers are still open.
  std::string str() const;

 private:
  enum class Scope { kObject, kArray };
  void before_value();
  void emit_string(std::string_view text);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

/// Validating JSON parser (structure only; values are not materialized).
/// Returns an empty string when `text` is a single well-formed JSON value,
/// else a description of the first error with its offset.
std::string json_check(std::string_view text);

}  // namespace soctest
