#pragma once

#include <optional>
#include <string>

#include "sched/schedule.hpp"
#include "tam/architect.hpp"

namespace soctest {

/// Machine-readable JSON report of a completed architecture design:
/// the SOC summary, the request's constraints, the chosen widths, the
/// per-bus core assignment with test times, and (optionally) the realized
/// schedule with per-test intervals. Consumed by downstream scripts that
/// plot or diff architectures.
std::string design_report_json(const Soc& soc, const DesignRequest& request,
                               const DesignResult& result,
                               const TestSchedule* schedule = nullptr);

}  // namespace soctest
