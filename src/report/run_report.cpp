#include "report/run_report.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/table.hpp"
#include "report/json.hpp"

namespace soctest {

namespace {

void write_arg_value(JsonWriter& w, const obs::Arg& arg) {
  switch (arg.kind) {
    case obs::Arg::Kind::kString:
      w.value(arg.text);
      break;
    case obs::Arg::Kind::kInt:
      w.value(arg.int_value);
      break;
    case obs::Arg::Kind::kFloat:
      if (std::isfinite(arg.float_value)) {
        w.value(arg.float_value);
      } else {
        w.value(arg.float_value > 0 ? "inf" : "-inf");
      }
      break;
    case obs::Arg::Kind::kBool:
      w.value(arg.bool_value);
      break;
  }
}

void write_args_object(JsonWriter& w, const std::vector<obs::Arg>& args) {
  w.begin_object();
  for (const obs::Arg& arg : args) {
    w.key(arg.key);
    write_arg_value(w, arg);
  }
  w.end_object();
}

void write_metrics_members(JsonWriter& w) {
  w.key("counters").begin_object();
  for (const auto& c : obs::counter_values()) {
    w.key(c.name).value(c.value);
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& h : obs::histogram_values()) {
    w.key(h.name).begin_object();
    w.key("count").value(h.stats.count);
    w.key("sum").value(h.stats.sum);
    w.key("min").value(h.stats.min);
    w.key("max").value(h.stats.max);
    w.key("buckets").begin_array();
    for (long long b : h.stats.buckets) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string trace_json(const obs::TraceSink& sink, const std::string& role) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("soctest-trace-v1");
  w.key("anchor").begin_object();
  double unix_us = 0.0;
  if (!sink.fake_clock()) {
    // The realtime microsecond at which the sink's monotonic clock read 0:
    // realtime-now minus monotonic-elapsed. Computed at write time — the
    // two clocks are sampled microseconds apart, which bounds the
    // cross-shard alignment error far below the spans being aligned.
    unix_us = std::chrono::duration<double, std::micro>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count() -
              sink.now_us();
  }
  w.key("unix_us").value(unix_us);
  w.key("pid").value(static_cast<long long>(::getpid()));
  w.key("role").value(role);
  w.end_object();
  w.key("events").begin_array();
  for (const obs::TraceEvent& e : sink.events()) {
    w.begin_object();
    w.key("id").value(static_cast<long long>(e.id));
    w.key("parent").value(static_cast<long long>(e.parent));
    w.key("kind").value(e.kind == obs::TraceEvent::Kind::kSpan ? "span"
                                                               : "instant");
    w.key("name").value(e.name);
    w.key("thread").value(e.thread);
    w.key("ts_us").value(e.start_us);
    w.key("dur_us").value(e.dur_us);
    if (!e.args.empty()) {
      w.key("args");
      write_args_object(w, e.args);
    }
    w.end_object();
  }
  w.end_array();
  write_metrics_members(w);
  w.end_object();
  return w.str();
}

std::string chrome_trace_json(const obs::TraceSink& sink) {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const obs::TraceEvent& e : sink.events()) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("soctest");
    w.key("ph").value(e.kind == obs::TraceEvent::Kind::kSpan ? "X" : "i");
    if (e.kind == obs::TraceEvent::Kind::kInstant) {
      w.key("s").value("t");  // thread-scoped instant
    }
    w.key("ts").value(e.start_us);
    if (e.kind == obs::TraceEvent::Kind::kSpan) {
      w.key("dur").value(e.dur_us);
    }
    w.key("pid").value(1);
    w.key("tid").value(e.thread);
    w.key("args").begin_object();
    w.key("id").value(static_cast<long long>(e.id));
    w.key("parent").value(static_cast<long long>(e.parent));
    for (const obs::Arg& arg : e.args) {
      w.key(arg.key);
      write_arg_value(w, arg);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string metrics_json() {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("soctest-metrics-v1");
  write_metrics_members(w);
  w.end_object();
  return w.str();
}

std::string metrics_text() {
  std::string out = "run metrics:\n";
  Table counters({"counter", "value"});
  for (const auto& c : obs::counter_values()) {
    counters.row().add(c.name).add(c.value);
  }
  out += counters.to_ascii();
  const auto histograms = obs::histogram_values();
  bool any = false;
  Table hist({"histogram", "count", "mean", "min", "max"});
  for (const auto& h : histograms) {
    if (h.stats.count == 0) continue;
    any = true;
    hist.row()
        .add(h.name)
        .add(h.stats.count)
        .add(h.stats.count ? h.stats.sum / static_cast<double>(h.stats.count)
                           : 0.0,
             2)
        .add(h.stats.min, 2)
        .add(h.stats.max, 2);
  }
  if (any) out += hist.to_ascii();
  return out;
}

std::string profile_text(const obs::Profile& profile, int top_n) {
  std::string out = "span profile (self-time order):\n";
  Table table({"span", "calls", "total_ms", "self_ms", "self_%", "min_ms",
               "p50_ms", "p95_ms", "max_ms"});
  const std::size_t limit =
      top_n <= 0 ? profile.spans.size()
                 : std::min(profile.spans.size(),
                            static_cast<std::size_t>(top_n));
  for (std::size_t i = 0; i < limit; ++i) {
    const obs::SpanProfile& span = profile.spans[i];
    table.row()
        .add(span.name)
        .add(span.count)
        .add(span.total_us / 1000.0, 3)
        .add(span.self_us / 1000.0, 3)
        .add(profile.wall_us > 0.0 ? 100.0 * span.self_us / profile.wall_us
                                   : 0.0,
             1)
        .add(span.min_us / 1000.0, 3)
        .add(span.p50_us / 1000.0, 3)
        .add(span.p95_us / 1000.0, 3)
        .add(span.max_us / 1000.0, 3);
  }
  out += table.to_ascii();
  if (limit < profile.spans.size()) {
    out += "(" + std::to_string(profile.spans.size() - limit) +
           " more span names below the top " + std::to_string(limit) + ")\n";
  }
  return out;
}

std::string profile_json(const obs::Profile& profile) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("soctest-profile-v1");
  w.key("wall_us").value(profile.wall_us);
  w.key("num_spans").value(profile.num_spans);
  w.key("spans").begin_array();
  for (const obs::SpanProfile& span : profile.spans) {
    w.begin_object();
    w.key("name").value(span.name);
    w.key("count").value(span.count);
    w.key("total_us").value(span.total_us);
    w.key("self_us").value(span.self_us);
    w.key("min_us").value(span.min_us);
    w.key("p50_us").value(span.p50_us);
    w.key("p95_us").value(span.p95_us);
    w.key("max_us").value(span.max_us);
    if (!span.children.empty()) {
      w.key("children").begin_object();
      for (const auto& [name, us] : span.children) {
        w.key(name).value(us);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace soctest
