#include "report/run_report.hpp"

#include <cmath>

#include "common/table.hpp"
#include "report/json.hpp"

namespace soctest {

namespace {

void write_arg_value(JsonWriter& w, const obs::Arg& arg) {
  switch (arg.kind) {
    case obs::Arg::Kind::kString:
      w.value(arg.text);
      break;
    case obs::Arg::Kind::kInt:
      w.value(arg.int_value);
      break;
    case obs::Arg::Kind::kFloat:
      if (std::isfinite(arg.float_value)) {
        w.value(arg.float_value);
      } else {
        w.value(arg.float_value > 0 ? "inf" : "-inf");
      }
      break;
    case obs::Arg::Kind::kBool:
      w.value(arg.bool_value);
      break;
  }
}

void write_args_object(JsonWriter& w, const std::vector<obs::Arg>& args) {
  w.begin_object();
  for (const obs::Arg& arg : args) {
    w.key(arg.key);
    write_arg_value(w, arg);
  }
  w.end_object();
}

void write_metrics_members(JsonWriter& w) {
  w.key("counters").begin_object();
  for (const auto& c : obs::counter_values()) {
    w.key(c.name).value(c.value);
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& h : obs::histogram_values()) {
    w.key(h.name).begin_object();
    w.key("count").value(h.stats.count);
    w.key("sum").value(h.stats.sum);
    w.key("min").value(h.stats.min);
    w.key("max").value(h.stats.max);
    w.key("buckets").begin_array();
    for (long long b : h.stats.buckets) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

}  // namespace

std::string trace_json(const obs::TraceSink& sink) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("soctest-trace-v1");
  w.key("events").begin_array();
  for (const obs::TraceEvent& e : sink.events()) {
    w.begin_object();
    w.key("id").value(static_cast<long long>(e.id));
    w.key("parent").value(static_cast<long long>(e.parent));
    w.key("kind").value(e.kind == obs::TraceEvent::Kind::kSpan ? "span"
                                                               : "instant");
    w.key("name").value(e.name);
    w.key("thread").value(e.thread);
    w.key("ts_us").value(e.start_us);
    w.key("dur_us").value(e.dur_us);
    if (!e.args.empty()) {
      w.key("args");
      write_args_object(w, e.args);
    }
    w.end_object();
  }
  w.end_array();
  write_metrics_members(w);
  w.end_object();
  return w.str();
}

std::string chrome_trace_json(const obs::TraceSink& sink) {
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const obs::TraceEvent& e : sink.events()) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("soctest");
    w.key("ph").value(e.kind == obs::TraceEvent::Kind::kSpan ? "X" : "i");
    if (e.kind == obs::TraceEvent::Kind::kInstant) {
      w.key("s").value("t");  // thread-scoped instant
    }
    w.key("ts").value(e.start_us);
    if (e.kind == obs::TraceEvent::Kind::kSpan) {
      w.key("dur").value(e.dur_us);
    }
    w.key("pid").value(1);
    w.key("tid").value(e.thread);
    w.key("args").begin_object();
    w.key("id").value(static_cast<long long>(e.id));
    w.key("parent").value(static_cast<long long>(e.parent));
    for (const obs::Arg& arg : e.args) {
      w.key(arg.key);
      write_arg_value(w, arg);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::string metrics_json() {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("soctest-metrics-v1");
  write_metrics_members(w);
  w.end_object();
  return w.str();
}

std::string metrics_text() {
  std::string out = "run metrics:\n";
  Table counters({"counter", "value"});
  for (const auto& c : obs::counter_values()) {
    counters.row().add(c.name).add(c.value);
  }
  out += counters.to_ascii();
  const auto histograms = obs::histogram_values();
  bool any = false;
  Table hist({"histogram", "count", "mean", "min", "max"});
  for (const auto& h : histograms) {
    if (h.stats.count == 0) continue;
    any = true;
    hist.row()
        .add(h.name)
        .add(h.stats.count)
        .add(h.stats.count ? h.stats.sum / static_cast<double>(h.stats.count)
                           : 0.0,
             2)
        .add(h.stats.min, 2)
        .add(h.stats.max, 2);
  }
  if (any) out += hist.to_ascii();
  return out;
}

}  // namespace soctest
