#pragma once

#include <string>

#include "obs/obs.hpp"
#include "obs/profile.hpp"

namespace soctest {

/// Serializers for the observability layer (src/obs). They live here, not in
/// src/obs, so the obs library stays a leaf every solver layer can link;
/// the JSON goes through the in-repo JsonWriter and validates with
/// json_check. The trace-file schema is documented in docs/observability.md.

/// The native trace format ("soctest-trace-v1"): one object with a clock
/// anchor, the event list (spans and instants, completion-ordered), and
/// the counter and histogram snapshot taken at serialization time.
///
/// The anchor is what makes per-process shards mergeable: event timestamps
/// are CLOCK_MONOTONIC microseconds since the sink was created, so the
/// header records `unix_us` — the realtime (unix epoch) microsecond the
/// sink's clock started — plus the writing process's pid and its fleet
/// `role` ("client", "frontdoor", "serve", ...). `soctest-perf
/// trace-merge` rebases every shard's events onto the common realtime
/// axis as ts + unix_us. Under SOCTEST_OBS_FAKE_CLOCK the anchor is 0 (a
/// wall-clock stamp would break byte-identical reruns).
std::string trace_json(const obs::TraceSink& sink,
                       const std::string& role = "");

/// The same events in Chrome's trace_event format — load the file at
/// chrome://tracing (or https://ui.perfetto.dev) for a per-thread timeline.
/// Spans become complete ("ph":"X") events, instants thread-scoped "i"
/// events; span ids/parents ride along inside "args".
std::string chrome_trace_json(const obs::TraceSink& sink);

/// Counter + histogram snapshot alone, as one JSON object
/// ("soctest-metrics-v1"). This is the RunReport of a solve when no trace
/// was requested.
std::string metrics_json();

/// Human-readable counter/histogram tables for terminal output
/// (`soctest --metrics`).
std::string metrics_text();

/// Top-N span-profile table for terminal output (`soctest --profile`):
/// per-name call count, total/self milliseconds, self share of the traced
/// wall clock, and the per-call min/p50/p95/max. Rows follow the profile's
/// deterministic order (self time descending, name ascending); top_n <= 0
/// prints every span.
std::string profile_text(const obs::Profile& profile, int top_n = 20);

/// The whole profile as one JSON object ("soctest-profile-v1"), child
/// attribution included. Schema in docs/observability.md.
std::string profile_json(const obs::Profile& profile);

}  // namespace soctest
