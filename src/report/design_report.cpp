#include "report/design_report.hpp"

#include <algorithm>

#include "report/json.hpp"
#include "wrapper/test_time_table.hpp"
#include "wrapper/wrapper.hpp"

namespace soctest {

std::string design_report_json(const Soc& soc, const DesignRequest& request,
                               const DesignResult& result,
                               const TestSchedule* schedule) {
  JsonWriter w;
  w.begin_object();

  w.key("soc").begin_object();
  w.key("name").value(soc.name());
  w.key("cores").value(soc.num_cores());
  w.key("die").begin_array().value(soc.die_width()).value(soc.die_height()).end_array();
  w.key("total_test_power_mw").value(soc.total_test_power());
  long long tdv = 0;
  for (const auto& c : soc.cores()) tdv += core_test_data_volume(c);
  w.key("test_data_volume_bits").value(tdv);
  w.end_object();

  w.key("constraints").begin_object();
  if (request.d_max >= 0) {
    w.key("d_max").value(request.d_max);
  }
  if (request.wire_budget >= 0) {
    w.key("wire_budget").value(static_cast<long long>(request.wire_budget));
  }
  if (request.p_max_mw >= 0) {
    w.key("p_max_mw").value(request.p_max_mw);
    w.key("power_mode")
        .value(request.power_mode == PowerConstraintMode::kBusMaxSum
                   ? "busmax"
                   : "pairwise");
  }
  if (request.ate_depth_limit >= 0) {
    w.key("ate_depth").value(static_cast<long long>(request.ate_depth_limit));
  }
  w.end_object();

  w.key("feasible").value(result.feasible);
  w.key("status").value(solve_status_name(result.certificate.status));
  w.key("stop_reason").value(stop_reason_name(result.certificate.stop));
  if (result.certificate.lower_bound >= 0) {
    w.key("lower_bound").value(result.certificate.lower_bound);
  }
  if (result.certificate.gap() >= 0) {
    w.key("gap").value(result.certificate.gap());
  }
  if (!result.feasible) {
    w.end_object();
    return w.str();
  }
  w.key("proved_optimal").value(result.proved_optimal);
  w.key("test_time_cycles").value(static_cast<long long>(result.assignment.makespan));

  if (!result.pack_placements.empty()) {
    // Rectangle-packing formulation: no buses exist, so the report carries
    // the packed placements (strip coordinates) instead of a buses array.
    w.key("formulation").value("pack");
    w.key("pack").begin_object();
    w.key("strip_width")
        .value(result.bus_widths.empty() ? 0 : result.bus_widths.front());
    w.key("placements").begin_array();
    for (const PackPlacement& p : result.pack_placements) {
      w.begin_object();
      w.key("core").value(soc.core(p.core).name);
      w.key("x").value(p.x);
      w.key("width").value(p.width);
      w.key("start").value(static_cast<long long>(p.start));
      w.key("end").value(static_cast<long long>(p.end));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  } else {
    w.key("formulation").value("fixed-bus");
    w.key("buses").begin_array();
    const int max_width = result.bus_widths.empty()
                              ? 1
                              : *std::max_element(result.bus_widths.begin(),
                                                  result.bus_widths.end());
    const TestTimeTable table(soc, max_width);
    for (std::size_t j = 0; j < result.bus_widths.size(); ++j) {
      w.begin_object();
      w.key("index").value(j);
      w.key("width").value(result.bus_widths[j]);
      Cycles load = 0;
      w.key("cores").begin_array();
      for (std::size_t i = 0; i < soc.num_cores(); ++i) {
        if (result.assignment.core_to_bus[i] != static_cast<int>(j)) continue;
        const Cycles t = table.time(i, result.bus_widths[j]);
        load += t;
        w.begin_object();
        w.key("name").value(soc.core(i).name);
        w.key("test_time").value(static_cast<long long>(t));
        w.key("data_volume_bits").value(core_test_data_volume(soc.core(i)));
        w.end_object();
      }
      w.end_array();
      w.key("load").value(static_cast<long long>(load));
      w.end_object();
    }
    w.end_array();
  }

  if (result.bus_plan) {
    w.key("layout").begin_object();
    w.key("trunk_wirelength").value(result.bus_plan->total_trunk_length());
    w.key("stub_wirelength").value(result.stub_wirelength);
    w.end_object();
  }

  if (schedule != nullptr) {
    w.key("schedule").begin_object();
    w.key("makespan").value(static_cast<long long>(schedule->makespan));
    w.key("tests").begin_array();
    for (const auto& t : schedule->tests) {
      w.begin_object();
      w.key("core").value(soc.core(t.core).name);
      w.key("bus").value(t.bus);
      w.key("start").value(static_cast<long long>(t.start));
      w.key("end").value(static_cast<long long>(t.end));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  w.key("search").begin_object();
  w.key("partitions_tried").value(result.partitions_tried);
  w.key("nodes").value(result.total_nodes);
  w.end_object();

  w.end_object();
  return w.str();
}

}  // namespace soctest
