#include "report/svg.hpp"

#include <sstream>
#include <vector>

namespace soctest {

namespace {

const char* kBusColors[] = {"#d33", "#36c", "#2a2", "#c80", "#93c", "#099"};

std::string escape_xml(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Grid (x, y) with y up -> SVG pixel coordinates with y down.
struct Mapper {
  int die_height;
  int cell_px;
  double x(double gx) const { return gx * cell_px; }
  double y(double gy) const { return (die_height - gy) * cell_px; }
};

void draw_path(std::ostringstream& svg, const RoutePath& path,
               const Mapper& map, const char* color, double width_px) {
  if (path.cells.empty()) return;
  svg << "<polyline fill=\"none\" stroke=\"" << color << "\" stroke-width=\""
      << width_px << "\" points=\"";
  for (const auto& p : path.cells) {
    svg << map.x(p.x + 0.5) << "," << map.y(p.y + 0.5) << " ";
  }
  svg << "\"/>\n";
}

}  // namespace

std::string render_floorplan_svg(const Soc& soc, const BusPlan* plan,
                                 const StubRoutes* stubs,
                                 const SvgOptions& options) {
  if (!soc.has_placement()) {
    throw std::invalid_argument("SVG rendering requires a placed SOC");
  }
  const Mapper map{soc.die_height(), options.cell_px};
  const int width_px = soc.die_width() * options.cell_px;
  const int height_px = soc.die_height() * options.cell_px;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px
      << "\" height=\"" << height_px << "\" viewBox=\"0 0 " << width_px << " "
      << height_px << "\">\n";
  svg << "<rect x=\"0\" y=\"0\" width=\"" << width_px << "\" height=\""
      << height_px << "\" fill=\"#fafafa\" stroke=\"#333\"/>\n";

  // Core macros.
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    const Core& c = soc.core(i);
    const auto& o = soc.placement(i).origin;
    svg << "<rect x=\"" << map.x(o.x) << "\" y=\"" << map.y(o.y + c.height)
        << "\" width=\"" << c.width * options.cell_px << "\" height=\""
        << c.height * options.cell_px
        << "\" fill=\"#dde6f0\" stroke=\"#667\"/>\n";
    if (options.label_cores) {
      svg << "<text x=\"" << map.x(o.x + c.width / 2.0) << "\" y=\""
          << map.y(o.y + c.height / 2.0)
          << "\" font-size=\"" << options.cell_px
          << "\" text-anchor=\"middle\" dominant-baseline=\"middle\">"
          << escape_xml(c.name) << "</text>\n";
    }
  }

  if (plan != nullptr) {
    for (const auto& bus : plan->buses) {
      const char* color =
          kBusColors[static_cast<std::size_t>(bus.index) % std::size(kBusColors)];
      draw_path(svg, bus.trunk, map, color, options.cell_px * 0.5);
    }
  }
  if (stubs != nullptr) {
    for (const auto& stub : stubs->stubs) {
      draw_path(svg, stub, map, "#888", options.cell_px * 0.25);
    }
  }
  svg << "</svg>\n";
  return svg.str();
}

std::string xml_check(const std::string& text) {
  std::vector<std::string> stack;
  std::size_t pos = 0;
  auto fail = [&](const std::string& what) {
    return what + " at offset " + std::to_string(pos);
  };
  while (pos < text.size()) {
    const std::size_t open = text.find('<', pos);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('>', open);
    if (close == std::string::npos) {
      pos = open;
      return fail("unterminated tag");
    }
    std::string tag = text.substr(open + 1, close - open - 1);
    pos = close + 1;
    if (tag.empty()) return fail("empty tag");
    if (tag[0] == '?' || tag[0] == '!') continue;  // declaration/comment
    // Quotes inside the tag must balance.
    int quotes = 0;
    for (char c : tag) {
      if (c == '"') ++quotes;
    }
    if (quotes % 2 != 0) return fail("unbalanced attribute quotes");
    if (tag[0] == '/') {
      const std::string name = tag.substr(1);
      if (stack.empty() || stack.back() != name) return fail("mismatched </" + name + ">");
      stack.pop_back();
    } else if (tag.back() == '/') {
      // self-closing
    } else {
      const std::size_t space = tag.find_first_of(" \t\n");
      stack.push_back(space == std::string::npos ? tag : tag.substr(0, space));
    }
  }
  if (!stack.empty()) return "unclosed element <" + stack.back() + ">";
  return {};
}

}  // namespace soctest
