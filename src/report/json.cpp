#include "report/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace soctest {

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_) {
    throw std::logic_error("JSON: value in object without a key");
  }
  if (!pending_key_ && !stack_.empty() && has_items_.back()) out_ += ',';
  if (stack_.empty() && !out_.empty()) {
    throw std::logic_error("JSON: multiple top-level values");
  }
  pending_key_ = false;
  if (!has_items_.empty()) has_items_.back() = true;
}

void JsonWriter::emit_string(std::string_view text) {
  out_ += '"';
  for (char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || pending_key_) {
    throw std::logic_error("JSON: mismatched end_object");
  }
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JSON: mismatched end_array");
  }
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back() != Scope::kObject || pending_key_) {
    throw std::logic_error("JSON: key outside object");
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  emit_string(name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  emit_string(text);
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(long long number) {
  before_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(int number) { return value(static_cast<long long>(number)); }
JsonWriter& JsonWriter::value(std::size_t number) { return value(static_cast<long long>(number)); }

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string JsonWriter::str() const {
  if (!stack_.empty()) throw std::logic_error("JSON: unclosed containers");
  return out_;
}

namespace {

/// Recursive-descent structural validator.
class Checker {
 public:
  explicit Checker(std::string_view text) : text_(text) {}

  std::string run() {
    skip_ws();
    if (!value()) return error_;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing content");
    return {};
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return number();
    fail("unexpected character");
    return false;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') {
        fail("expected object key");
        return false;
      }
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + static_cast<std::size_t>(k) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<std::size_t>(k)]))) {
              fail("bad \\u escape");
              return false;
            }
          }
          pos_ += 4;
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          fail("bad escape");
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
        return false;
      }
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool number() {
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("bad number");
      return false;
    }
    if (peek() == '0') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("leading zero");
        return false;
      }
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("bad fraction");
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("bad exponent");
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return error_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

/// Recursive-descent materializing parser; shares the grammar with Checker
/// but builds a JsonValue tree and decodes string escapes.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    skip_ws();
    JsonValue root;
    if (!value(root)) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content");
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return root;
  }

 private:
  bool value(JsonValue& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.text);
    }
    if (c == 't' || c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = c == 't';
      return literal(c == 't' ? "true" : "false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return number(out);
    }
    fail("unexpected character");
    return false;
  }

  bool object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') {
        fail("expected object key");
        return false;
      }
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (peek() != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!value(member)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue item;
      if (!value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            if (!hex4(code)) return false;
            append_utf8(out, code);
            break;
          }
          default:
            fail("bad escape");
            return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string");
        return false;
      } else {
        out += c;
      }
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool hex4(unsigned& code) {
    code = 0;
    for (int k = 1; k <= 4; ++k) {
      const std::size_t at = pos_ + static_cast<std::size_t>(k);
      if (at >= text_.size() ||
          !std::isxdigit(static_cast<unsigned char>(text_[at]))) {
        fail("bad \\u escape");
        return false;
      }
      const char h = text_[at];
      code = code * 16 +
             static_cast<unsigned>(
                 std::isdigit(static_cast<unsigned char>(h))
                     ? h - '0'
                     : std::tolower(static_cast<unsigned char>(h)) - 'a' + 10);
    }
    pos_ += 4;
    return true;
  }

  /// BMP code points only (no surrogate-pair recombination): the writer
  /// never emits surrogates, and lone ones decode to U+FFFD-style bytes.
  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("bad number");
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad literal");
      return false;
    }
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string json_check(std::string_view text) { return Checker(text).run(); }

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->text : fallback;
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace soctest
