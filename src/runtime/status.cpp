#include "runtime/status.hpp"

#include <cstdio>

namespace soctest {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kParseError: return "parse_error";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kFaultInjected: return "fault_injected";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  return std::string(status_code_name(code_)) + ": " + message_;
}

Status invalid_argument_error(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status not_found_error(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status parse_error(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status resource_exhausted_error(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status deadline_exceeded_error(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status cancelled_error(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status io_error(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status fault_injected_error(std::string message) {
  return Status(StatusCode::kFaultInjected, std::move(message));
}
Status internal_error(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

int exit_code_for(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return kExitSuccess;
    case StatusCode::kInvalidArgument:
      return kExitUsage;
    case StatusCode::kNotFound:
    case StatusCode::kParseError:
    case StatusCode::kResourceExhausted:
      return kExitInputError;
    case StatusCode::kIoError:
      return kExitIoError;
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return kExitDeadline;
    case StatusCode::kFaultInjected:
    case StatusCode::kInternal:
      return kExitInternal;
  }
  return kExitInternal;
}

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kNodeBudget: return "node_budget";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kFault: return "fault";
  }
  return "unknown";
}

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kFeasibleBounded: return "feasible_bounded";
    case SolveStatus::kFeasible: return "feasible";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kError: return "error";
  }
  return "unknown";
}

double SolveCertificate::gap() const {
  if (lower_bound <= 0 || upper_bound < 0) return -1.0;
  if (upper_bound <= lower_bound) return 0.0;
  return static_cast<double>(upper_bound - lower_bound) /
         static_cast<double>(lower_bound);
}

std::string SolveCertificate::to_string() const {
  std::string out = solve_status_name(status);
  if (status == SolveStatus::kFeasibleBounded) {
    const double g = gap();
    if (g >= 0.0) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), " gap=%.2f%%", g * 100.0);
      out += buf;
      out += " lower_bound=" + std::to_string(lower_bound);
    }
  }
  if (stop != StopReason::kNone) {
    out += std::string(" stop=") + stop_reason_name(stop);
  }
  if (status == SolveStatus::kError && !error.empty()) {
    out += ": " + error;
  }
  return out;
}

SolveCertificate certify_optimal(long long objective) {
  SolveCertificate c;
  c.status = SolveStatus::kOptimal;
  c.lower_bound = objective;
  c.upper_bound = objective;
  return c;
}

SolveCertificate certify_bounded(long long objective, long long lower_bound,
                                 StopReason stop) {
  SolveCertificate c;
  c.status = SolveStatus::kFeasibleBounded;
  c.lower_bound = lower_bound;
  c.upper_bound = objective;
  c.stop = stop;
  return c;
}

SolveCertificate certify_feasible(long long objective, StopReason stop) {
  SolveCertificate c;
  c.status = SolveStatus::kFeasible;
  c.upper_bound = objective;
  c.stop = stop;
  return c;
}

SolveCertificate certify_infeasible(bool proven, StopReason stop) {
  // `proven` is implied by stop == kNone (an interrupted search that found
  // nothing has not proven anything); assert the two agree in spirit by
  // recording an explicit stop reason whenever the proof is missing.
  SolveCertificate c;
  c.status = SolveStatus::kInfeasible;
  c.stop = proven ? StopReason::kNone : stop;
  return c;
}

SolveCertificate certify_error(std::string message) {
  SolveCertificate c;
  c.status = SolveStatus::kError;
  c.stop = StopReason::kFault;
  c.error = std::move(message);
  return c;
}

}  // namespace soctest
