#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/status.hpp"

namespace soctest::failpoint {

// Deterministic fault-injection facility (docs/robustness.md). Sites are
// compiled in unconditionally; a disarmed process pays one relaxed atomic
// load per hit. Arming happens through the SOCTEST_FAILPOINTS environment
// variable (read once at process start) or the CLI --failpoints flag, with
// the spec grammar
//
//   spec     := entry ("," entry)*
//   entry    := site "=" action (":" hit_number)?
//   action   := "error" | "bad_alloc" | "cancel" | "timeout"
//
// A failpoint fires on every hit whose 1-based ordinal is >= hit_number
// (default 1). Which actions a site honors is part of the catalog in
// docs/robustness.md; StopCheck (runtime/deadline.hpp) gives solver inner
// loops a uniform cancel/timeout/error mapping.

enum class Action {
  kError,     ///< fail the operation with an injected error
  kBadAlloc,  ///< simulate an allocation failure (site throws/returns OOM)
  kCancel,    ///< behave as if the cancellation token fired
  kTimeout,   ///< behave as if the wall-clock deadline expired
};

const char* action_name(Action action);

/// The known injection sites. Tests iterate this catalog to guarantee every
/// site stays exercised; scripts/check_docs.sh diffs it against the
/// documented catalog. Keep in sync with docs/robustness.md.
namespace sites {
inline constexpr const char* kSocParseOpen = "soc.parse.open";
inline constexpr const char* kSocParseLine = "soc.parse.line";
inline constexpr const char* kPoolTask = "common.pool.task";
inline constexpr const char* kExactNode = "tam.exact.node";
inline constexpr const char* kSaIter = "tam.sa.iter";
inline constexpr const char* kIlpNode = "ilp.bb.node";
inline constexpr const char* kPackNode = "pack.exact.node";
inline constexpr const char* kPackSaIter = "pack.sa.iter";
inline constexpr const char* kPlacerIter = "layout.sa.iter";
inline constexpr const char* kRouteStep = "layout.route.step";
inline constexpr const char* kPowerTick = "sched.power.tick";
inline constexpr const char* kReportWrite = "report.write";
}  // namespace sites

/// Every site name in the catalog above.
std::vector<std::string> catalog();

/// True when at least one failpoint is armed. The only cost a disarmed
/// process pays; instrumented sites guard hit() with this.
bool armed() noexcept;

/// Records a hit at `site` and returns the armed action when it fires.
/// Thread-safe; the per-site hit counter is shared across threads. Fires an
/// obs instant ("runtime.failpoint.fire") and counter when it triggers.
std::optional<Action> hit(std::string_view site);

/// Arms failpoints from a spec string (see grammar above). Unknown sites
/// are rejected so typos cannot silently disarm a test. Arming is additive.
Status arm(const std::string& spec);

/// Disarms everything and resets hit counters (tests call this between
/// cases; also resets the thread-pool hook installed by arming
/// common.pool.task).
void disarm_all();

/// Number of times any failpoint fired since the last disarm_all().
long long fired_count();

}  // namespace soctest::failpoint
