#include "runtime/deadline.hpp"

#include "obs/obs.hpp"
#include "runtime/failpoint.hpp"

namespace soctest {

bool StopCheck::should_stop() {
  if (reason_ != StopReason::kNone) return true;

  // Failpoints first: an armed site must fire deterministically regardless
  // of wall-clock stride. Disarmed cost is one relaxed atomic load.
  if (!site_.empty() && failpoint::armed()) {
    if (const auto action = failpoint::hit(site_)) {
      switch (*action) {
        case failpoint::Action::kCancel:
          reason_ = StopReason::kCancelled;
          break;
        case failpoint::Action::kTimeout:
          reason_ = StopReason::kDeadline;
          break;
        case failpoint::Action::kError:
        case failpoint::Action::kBadAlloc:
          reason_ = StopReason::kFault;
          break;
      }
      return true;
    }
  }

  if (cancel_ != nullptr && cancel_->cancelled()) {
    reason_ = StopReason::kCancelled;
    return true;
  }

  if (deadline_.finite()) {
    if (polls_until_clock_ > 0) {
      --polls_until_clock_;
      return false;
    }
    polls_until_clock_ = clock_stride_ - 1;
    if (deadline_.expired()) {
      reason_ = StopReason::kDeadline;
      if (obs::enabled()) {
        obs::counter("runtime.deadline.expired").add(1);
        obs::instant("runtime.deadline.expire",
                     {{"site", site_.empty() ? "unknown" : site_}});
      }
      return true;
    }
  }
  return false;
}

}  // namespace soctest
