#pragma once

#include <chrono>
#include <limits>
#include <string>
#include <string_view>

#include "common/parallel.hpp"
#include "runtime/status.hpp"

namespace soctest {

/// Wall-clock deadline for anytime solving. A default-constructed Deadline
/// is infinite (never expires), so every solver option struct can carry one
/// at zero behavioral cost. Copyable value type; copies share the same
/// absolute expiry instant, which is what "threading a deadline through the
/// whole flow" needs: each stage consumes whatever wall-clock time the
/// earlier stages left.
class Deadline {
 public:
  Deadline() = default;  ///< infinite

  static Deadline after_ms(double ms) {
    Deadline d;
    d.finite_ = true;
    d.when_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(ms < 0 ? 0 : ms));
    return d;
  }

  static Deadline at(std::chrono::steady_clock::time_point when) {
    Deadline d;
    d.finite_ = true;
    d.when_ = when;
    return d;
  }

  bool finite() const { return finite_; }
  bool expired() const {
    return finite_ && std::chrono::steady_clock::now() >= when_;
  }
  /// Milliseconds until expiry; negative once expired, +inf-ish (a large
  /// sentinel is avoided — callers must check finite()) for infinite.
  double remaining_ms() const {
    if (!finite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double, std::milli>(
               when_ - std::chrono::steady_clock::now())
        .count();
  }
  std::chrono::steady_clock::time_point when() const { return when_; }

 private:
  bool finite_ = false;
  std::chrono::steady_clock::time_point when_{};
};

/// Uniform stop-condition poller for solver inner loops. Composes, in
/// priority order: an armed failpoint at `site` (cancel/timeout/error
/// actions), the cooperative CancellationToken, and the wall-clock Deadline.
/// The verdict is sticky: once any source fires, should_stop() keeps
/// returning true with the same reason.
///
/// Cost per poll when nothing is armed/cancelled: one relaxed atomic load
/// for the failpoint check, one for the token, and a clock read every
/// `clock_stride` polls (deadline checks are strided because steady_clock
/// reads dwarf a branch-and-bound node).
class StopCheck {
 public:
  StopCheck(const Deadline& deadline, const CancellationToken* cancel,
            std::string_view site = {}, int clock_stride = 256)
      : deadline_(deadline),
        cancel_(cancel),
        site_(site),
        clock_stride_(clock_stride < 1 ? 1 : clock_stride) {}

  /// Polls every stop source. Returns true when the solve must unwind and
  /// return its best incumbent.
  bool should_stop();

  StopReason reason() const { return reason_; }
  bool stopped() const { return reason_ != StopReason::kNone; }

 private:
  Deadline deadline_;
  const CancellationToken* cancel_ = nullptr;
  std::string site_;
  int clock_stride_;
  int polls_until_clock_ = 0;
  StopReason reason_ = StopReason::kNone;
};

/// Shared deadline/cancel pair threaded through the design flow — the
/// runtime equivalent of "the request's remaining budget".
struct SolveControl {
  Deadline deadline;
  const CancellationToken* cancel = nullptr;

  bool trivial() const { return !deadline.finite() && cancel == nullptr; }
};

}  // namespace soctest
