#pragma once

#include <optional>
#include <string>
#include <utility>

namespace soctest {

/// Error taxonomy of the solver runtime (docs/robustness.md). Every
/// recoverable failure in the library surfaces as a Status; exceptions are
/// reserved for programming errors and the CLI boundary, which converts
/// both into documented process exit codes (see exit_code_for).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< malformed request (bad flag value, bad model)
  kNotFound,            ///< missing input file
  kParseError,          ///< malformed input file (line/column in message)
  kResourceExhausted,   ///< input over the size cap, allocation failure
  kDeadlineExceeded,    ///< wall-clock budget expired before any result
  kCancelled,           ///< cooperative cancellation with no usable result
  kIoError,             ///< output file could not be written
  kFaultInjected,       ///< an armed failpoint fired (tests only)
  kInternal,            ///< invariant violation / unexpected exception
};

const char* status_code_name(StatusCode code);

/// Value-type error carrier: a code plus a one-line human-readable message.
/// `Status::Ok()` (the default) is success and carries no message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "parse_error: camchip.soc:12:7: expected integer" style rendering.
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status invalid_argument_error(std::string message);
Status not_found_error(std::string message);
Status parse_error(std::string message);
Status resource_exhausted_error(std::string message);
Status deadline_exceeded_error(std::string message);
Status cancelled_error(std::string message);
Status io_error(std::string message);
Status fault_injected_error(std::string message);
Status internal_error(std::string message);

/// Documented process exit codes (docs/robustness.md):
///   0 success, 1 infeasible, 2 usage error, 3 input error (not found /
///   parse / size cap), 4 output I/O error, 5 internal error or injected
///   fault, 6 deadline or cancellation with no usable result.
/// Exit codes 0/1 are decided by the CLI from the solve result, not from a
/// Status; this maps the failure codes.
int exit_code_for(const Status& status);

inline constexpr int kExitSuccess = 0;
inline constexpr int kExitInfeasible = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitInputError = 3;
inline constexpr int kExitIoError = 4;
inline constexpr int kExitInternal = 5;
inline constexpr int kExitDeadline = 6;

/// Either a value or the Status explaining why there is none.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }
  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T&& take() { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Why a solve stopped before proving its answer. kNone means it ran to
/// natural completion (which still may be an aborted node budget — that is
/// kNodeBudget). Recorded in SolveCertificate::stop.
enum class StopReason {
  kNone = 0,
  kNodeBudget,  ///< search-node budget exhausted
  kDeadline,    ///< wall-clock deadline expired
  kCancelled,   ///< cooperative cancellation (portfolio loser, Ctrl-C, ...)
  kFault,       ///< an armed failpoint fired inside the solve
};

const char* stop_reason_name(StopReason reason);

/// Quality certificate attached to every solve result (docs/robustness.md):
///   optimal           proven optimal within all limits
///   feasible_bounded  feasible incumbent plus a valid lower bound (gap known)
///   feasible          feasible incumbent, no useful bound (pure heuristics)
///   infeasible        proven infeasible, or nothing found
///   error             the solve itself failed (injected fault, internal)
enum class SolveStatus {
  kOptimal,
  kFeasibleBounded,
  kFeasible,
  kInfeasible,
  kError,
};

const char* solve_status_name(SolveStatus status);

struct SolveCertificate {
  SolveStatus status = SolveStatus::kInfeasible;
  /// Valid lower bound on the objective (cycles); -1 when unknown.
  long long lower_bound = -1;
  /// The incumbent objective value; -1 when no incumbent exists.
  long long upper_bound = -1;
  StopReason stop = StopReason::kNone;
  /// Failure detail when status == kError.
  std::string error;

  /// Relative optimality gap (upper - lower) / lower, or -1 when either
  /// bound is missing (lower_bound 0 with a positive upper bound reports
  /// +inf-like gap as -1 too: no meaningful ratio exists).
  double gap() const;

  /// "optimal" / "feasible_bounded gap=3.2%" style one-liner.
  std::string to_string() const;
};

/// Certificate constructors for the common shapes.
SolveCertificate certify_optimal(long long objective);
SolveCertificate certify_bounded(long long objective, long long lower_bound,
                                 StopReason stop);
SolveCertificate certify_feasible(long long objective, StopReason stop);
SolveCertificate certify_infeasible(bool proven, StopReason stop);
SolveCertificate certify_error(std::string message);

}  // namespace soctest
