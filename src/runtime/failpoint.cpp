#include "runtime/failpoint.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace soctest::failpoint {

namespace {

struct Arming {
  Action action = Action::kError;
  long long fire_from_hit = 1;  // 1-based ordinal of the first firing hit
  long long hits = 0;           // hits observed so far
};

std::atomic<bool> g_armed{false};
std::atomic<long long> g_fired{0};
std::mutex g_mu;
std::map<std::string, Arming, std::less<>>& registry() {
  static std::map<std::string, Arming, std::less<>> r;
  return r;
}

std::optional<Action> parse_action(std::string_view text) {
  if (text == "error") return Action::kError;
  if (text == "bad_alloc") return Action::kBadAlloc;
  if (text == "cancel") return Action::kCancel;
  if (text == "timeout") return Action::kTimeout;
  return std::nullopt;
}

/// Installed into the thread pool while common.pool.task is armed; throwing
/// here exercises the pool's exception containment.
void pool_task_hook() {
  const auto action = hit(sites::kPoolTask);
  if (!action) return;
  if (*action == Action::kBadAlloc) throw std::bad_alloc();
  if (*action == Action::kError) {
    throw std::runtime_error("injected pool task fault");
  }
  // cancel/timeout are meaningless for a pool task; ignore.
}

void sync_pool_hook_locked() {
  const bool want = registry().count(sites::kPoolTask) > 0;
  set_thread_pool_task_hook(want ? &pool_task_hook : nullptr);
}

/// SOCTEST_FAILPOINTS is read once, before main() runs, so a spawned
/// process is armed without any code path having to remember to call arm().
const bool g_env_loaded = [] {
  if (const char* env = std::getenv("SOCTEST_FAILPOINTS")) {
    const Status status = arm(env);
    if (!status.ok()) {
      std::fprintf(stderr, "SOCTEST_FAILPOINTS: %s\n",
                   status.to_string().c_str());
    }
  }
  return true;
}();

}  // namespace

const char* action_name(Action action) {
  switch (action) {
    case Action::kError: return "error";
    case Action::kBadAlloc: return "bad_alloc";
    case Action::kCancel: return "cancel";
    case Action::kTimeout: return "timeout";
  }
  return "unknown";
}

std::vector<std::string> catalog() {
  return {sites::kSocParseOpen, sites::kSocParseLine, sites::kPoolTask,
          sites::kExactNode,    sites::kSaIter,       sites::kIlpNode,
          sites::kPackNode,     sites::kPackSaIter,   sites::kPlacerIter,
          sites::kRouteStep,    sites::kPowerTick,    sites::kReportWrite};
}

bool armed() noexcept { return g_armed.load(std::memory_order_relaxed); }

std::optional<Action> hit(std::string_view site) {
  if (!armed()) return std::nullopt;
  Action action;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    auto it = registry().find(site);
    if (it == registry().end()) return std::nullopt;
    Arming& arming = it->second;
    ++arming.hits;
    if (arming.hits < arming.fire_from_hit) return std::nullopt;
    action = arming.action;
  }
  g_fired.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::counter("runtime.failpoint.fired").add(1);
    obs::instant("runtime.failpoint.fire",
                 {{"site", site}, {"action", action_name(action)}});
  }
  return action;
}

Status arm(const std::string& spec) {
  const std::vector<std::string> known = catalog();
  std::size_t pos = 0;
  while (pos < spec.size()) {
    auto end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos) {
      return invalid_argument_error("failpoint entry '" + entry +
                                    "' is missing '=action'");
    }
    const std::string site = entry.substr(0, eq);
    std::string action_text = entry.substr(eq + 1);
    long long fire_from = 1;
    if (const auto colon = action_text.find(':');
        colon != std::string::npos) {
      const std::string count = action_text.substr(colon + 1);
      action_text.resize(colon);
      try {
        std::size_t used = 0;
        fire_from = std::stoll(count, &used);
        if (used != count.size() || fire_from < 1) throw std::out_of_range("");
      } catch (const std::exception&) {
        return invalid_argument_error("failpoint '" + site +
                                      "': bad hit number '" + count + "'");
      }
    }
    const auto action = parse_action(action_text);
    if (!action) {
      return invalid_argument_error(
          "failpoint '" + site + "': unknown action '" + action_text +
          "' (expected error|bad_alloc|cancel|timeout)");
    }
    bool known_site = false;
    for (const auto& name : known) known_site = known_site || name == site;
    if (!known_site) {
      return invalid_argument_error("unknown failpoint site '" + site + "'");
    }
    std::lock_guard<std::mutex> lock(g_mu);
    registry()[site] = Arming{*action, fire_from, 0};
    sync_pool_hook_locked();
    g_armed.store(true, std::memory_order_relaxed);
  }
  return Status::Ok();
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(g_mu);
  registry().clear();
  sync_pool_hook_locked();
  g_armed.store(false, std::memory_order_relaxed);
  g_fired.store(0, std::memory_order_relaxed);
}

long long fired_count() { return g_fired.load(std::memory_order_relaxed); }

}  // namespace soctest::failpoint
