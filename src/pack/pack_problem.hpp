#pragma once

#include <string>
#include <vector>

#include "runtime/status.hpp"
#include "soc/soc.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {

/// One admissible shape of a core's test rectangle: a Pareto-optimal TAM
/// width and the core's test time at it. Menus are width-ascending, so
/// times are strictly descending (pareto_widths keeps only strict
/// improvements).
struct PackRect {
  int width = 0;
  Cycles time = 0;
};

/// The rectangle-packing formulation of wrapper/TAM co-optimization (the
/// follow-on line to the DAC 2000 fixed-bus model, arXiv 1008.4448 /
/// 1008.3320): every core i is a `width x time` rectangle whose width may
/// be chosen from its Pareto staircase menu, all rectangles are packed
/// without overlap into a `total_width x T` strip, and the objective is
/// the strip height T. A fixed-bus architecture is the special case where
/// the strip is pre-cut into full-height vertical slabs, so the optimal
/// packed T is never worse than the optimal fixed-bus T.
///
/// Power is the third packing dimension, checked *time-resolved*: at every
/// instant the sum of the powers of the cores under test must stay within
/// p_max_mw. This replaces the fixed-bus model's conservative pairwise
/// `P_i + P_k <= p_max` serialization rule.
struct PackProblem {
  int total_width = 0;                      ///< strip width (W_total wires)
  std::vector<std::vector<PackRect>> menu;  ///< [core] width-ascending shapes
  std::vector<double> power_mw;             ///< per-core test power; may be empty
  double p_max_mw = -1.0;                   ///< instantaneous budget; < 0 off

  std::size_t num_cores() const { return menu.size(); }

  /// Structural validation (non-empty menus, widths within the strip,
  /// strictly improving shapes). Empty string if OK.
  std::string validate() const;

  /// Lower bound on any feasible strip height:
  ///   max( max_i t_i(W_total),                       one core alone
  ///        ceil( Σ_i min_w w * t_i(w) / W_total ) )  area argument
  /// (both remain valid under the power dimension, which only removes
  /// packings).
  Cycles lower_bound() const;
};

/// Placement of one core's rectangle in the strip.
struct PackPlacement {
  std::size_t core = 0;
  int width = 0;    ///< chosen TAM width (a menu entry of `core`)
  int x = 0;        ///< leftmost strip wire occupied
  Cycles start = 0;
  Cycles end = 0;   ///< start + t_core(width), exclusive
};

/// Result of any pack solver, mirroring TamSolveResult's contract: an
/// interrupted solve still carries the best incumbent found, and the
/// certificate reports the achieved gap against PackProblem::lower_bound.
struct PackSolveResult {
  bool feasible = false;
  bool proved_optimal = false;
  std::vector<PackPlacement> placements;  ///< sorted by (start, x)
  Cycles makespan = 0;
  long long nodes = 0;  ///< solver-defined work measure
  StopReason stop = StopReason::kNone;
  SolveCertificate certificate;
};

/// Lowers a SOC + its test-time table into the packing form: core i's menu
/// is its Pareto width set clamped to the strip, with `table.time(i, w)` as
/// the rectangle height; powers come from the cores when p_max_mw >= 0.
/// Throws std::invalid_argument for a non-positive strip width.
PackProblem make_pack_problem(const Soc& soc, const TestTimeTable& table,
                              int total_width, double p_max_mw = -1.0);

/// True when adding one more rectangle drawing `power_mw` over [start, end)
/// keeps the instantaneous power within problem.p_max_mw, given the
/// rectangles already placed. Power is piecewise constant between rectangle
/// starts, so sampling at `start` and at every placed start inside the
/// interval is exact. Always true when the budget is off.
bool power_fits(const PackProblem& problem,
                const std::vector<PackPlacement>& placed, double power_mw,
                Cycles start, Cycles end);

/// Feasibility oracle for a packed schedule (the differential fuzzer's
/// contract): every core placed exactly once with a shape from its menu,
/// every rectangle inside the strip, no two rectangles overlap, the
/// time-resolved power never exceeds the budget, and the reported makespan
/// equals the max rectangle end. Returns a description of the first
/// violation, or empty if the packing is valid.
std::string check_packing(const PackProblem& problem,
                          const std::vector<PackPlacement>& placements,
                          Cycles reported_makespan);

}  // namespace soctest
