#pragma once

#include "common/parallel.hpp"
#include "pack/pack_problem.hpp"
#include "runtime/deadline.hpp"

namespace soctest {

/// Default search-node budget of solve_pack_exact. Rectangle packing is
/// far harder than the fixed-bus assignment (the raise move alone makes
/// the tree superexponential in N), so unlike the fixed-bus exact solver
/// the packer always runs under a budget: small instances prove optimality
/// well inside it, larger ones return the incumbent with stop =
/// kNodeBudget and a feasible_bounded certificate.
inline constexpr long long kPackExactDefaultNodes = 2'000'000;

struct PackExactOptions {
  /// Search-node budget; < 0 selects kPackExactDefaultNodes. On exhaustion
  /// the incumbent is returned with stop = kNodeBudget.
  long long max_nodes = -1;
  /// Optional cooperative cancellation (portfolio racing).
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline (anytime mode).
  Deadline deadline;
};

/// Exact branch-and-bound over normalized (bottom-left-justified) packings:
/// each node either places one remaining core — any menu shape that fits —
/// at the left edge of the lowest skyline segment, or closes that segment by
/// raising it to the next active-set change. Pruning uses the running
/// max-end, a tallest-remaining bound, and the skyline-area bound, all
/// against an incumbent warm-started from the skyline heuristic, so the
/// search is anytime by construction: interrupting it (deadline, cancel,
/// node budget, failpoint `pack.exact.node`) still returns a feasible
/// packing with a `feasible_bounded` certificate. Serial and therefore
/// bit-identical at any requested thread count.
PackSolveResult solve_pack_exact(const PackProblem& problem,
                                 const PackExactOptions& options = {});

}  // namespace soctest
