#include "pack/pack_problem.hpp"

#include <algorithm>
#include <stdexcept>

namespace soctest {

std::string PackProblem::validate() const {
  if (total_width < 1) return "total_width must be positive";
  if (!power_mw.empty() && power_mw.size() != menu.size()) {
    return "power_mw size mismatch";
  }
  for (std::size_t i = 0; i < menu.size(); ++i) {
    const std::vector<PackRect>& shapes = menu[i];
    if (shapes.empty()) {
      return "core " + std::to_string(i) + " has an empty shape menu";
    }
    for (std::size_t k = 0; k < shapes.size(); ++k) {
      if (shapes[k].width < 1 || shapes[k].width > total_width) {
        return "core " + std::to_string(i) + " shape width " +
               std::to_string(shapes[k].width) + " outside the strip";
      }
      if (shapes[k].time < 1) {
        return "core " + std::to_string(i) + " has a non-positive test time";
      }
      if (k > 0 && (shapes[k].width <= shapes[k - 1].width ||
                    shapes[k].time >= shapes[k - 1].time)) {
        return "core " + std::to_string(i) +
               " menu is not strictly Pareto-improving";
      }
    }
  }
  return {};
}

Cycles PackProblem::lower_bound() const {
  Cycles tallest = 0;
  long long min_area = 0;
  for (const std::vector<PackRect>& shapes : menu) {
    if (shapes.empty()) continue;
    // Width-ascending menus put the shortest time last.
    tallest = std::max(tallest, shapes.back().time);
    long long area = -1;
    for (const PackRect& r : shapes) {
      const long long a = static_cast<long long>(r.width) * r.time;
      if (area < 0 || a < area) area = a;
    }
    if (area > 0) min_area += area;
  }
  const Cycles area_bound = static_cast<Cycles>(
      (min_area + total_width - 1) / std::max(1, total_width));
  return std::max(tallest, area_bound);
}

PackProblem make_pack_problem(const Soc& soc, const TestTimeTable& table,
                              int total_width, double p_max_mw) {
  if (total_width < 1) {
    throw std::invalid_argument("pack: total_width must be positive");
  }
  PackProblem problem;
  problem.total_width = total_width;
  problem.p_max_mw = p_max_mw;
  problem.menu.resize(soc.num_cores());
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    std::vector<PackRect>& shapes = problem.menu[i];
    for (const int w : table.pareto_widths(i)) {
      if (w > total_width) break;  // pareto_widths is ascending
      shapes.push_back({w, table.time(i, w)});
    }
    // pareto_widths always includes width 1, so the menu is never empty.
  }
  if (p_max_mw >= 0) {
    problem.power_mw.reserve(soc.num_cores());
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      problem.power_mw.push_back(soc.core(i).test_power_mw);
      if (soc.core(i).test_power_mw > p_max_mw) {
        throw std::runtime_error("core " + soc.core(i).name +
                                 " alone exceeds the power budget");
      }
    }
  }
  return problem;
}

bool power_fits(const PackProblem& problem,
                const std::vector<PackPlacement>& placed, double power_mw,
                Cycles start, Cycles end) {
  if (problem.p_max_mw < 0 || problem.power_mw.empty()) return true;
  const auto active_at = [&](Cycles tau) {
    double sum = power_mw;
    for (const PackPlacement& q : placed) {
      if (q.start <= tau && tau < q.end) sum += problem.power_mw[q.core];
    }
    return sum;
  };
  if (active_at(start) > problem.p_max_mw + 1e-9) return false;
  for (const PackPlacement& q : placed) {
    if (q.start > start && q.start < end &&
        active_at(q.start) > problem.p_max_mw + 1e-9) {
      return false;
    }
  }
  return true;
}

std::string check_packing(const PackProblem& problem,
                          const std::vector<PackPlacement>& placements,
                          Cycles reported_makespan) {
  const std::size_t n = problem.num_cores();
  if (placements.size() != n) {
    return "expected " + std::to_string(n) + " placements, got " +
           std::to_string(placements.size());
  }
  std::vector<char> seen(n, 0);
  Cycles max_end = 0;
  for (const PackPlacement& p : placements) {
    if (p.core >= n) return "placement names core " + std::to_string(p.core);
    if (seen[p.core]) {
      return "core " + std::to_string(p.core) + " placed twice";
    }
    seen[p.core] = 1;
    bool in_menu = false;
    for (const PackRect& r : problem.menu[p.core]) {
      if (r.width == p.width && r.time == p.end - p.start) {
        in_menu = true;
        break;
      }
    }
    if (!in_menu) {
      return "core " + std::to_string(p.core) + " shape " +
             std::to_string(p.width) + "x" + std::to_string(p.end - p.start) +
             " is not in its menu";
    }
    if (p.x < 0 || p.x + p.width > problem.total_width) {
      return "core " + std::to_string(p.core) + " at x=" + std::to_string(p.x) +
             " width " + std::to_string(p.width) + " leaves the strip";
    }
    if (p.start < 0) {
      return "core " + std::to_string(p.core) + " starts before time 0";
    }
    max_end = std::max(max_end, p.end);
  }
  for (std::size_t a = 0; a < placements.size(); ++a) {
    for (std::size_t b = a + 1; b < placements.size(); ++b) {
      const PackPlacement& p = placements[a];
      const PackPlacement& q = placements[b];
      const bool x_overlap = p.x < q.x + q.width && q.x < p.x + p.width;
      const bool t_overlap = p.start < q.end && q.start < p.end;
      if (x_overlap && t_overlap) {
        return "cores " + std::to_string(p.core) + " and " +
               std::to_string(q.core) + " overlap";
      }
    }
  }
  if (problem.p_max_mw >= 0 && !problem.power_mw.empty()) {
    // Instantaneous power is piecewise constant between rectangle starts, so
    // checking at every start instant covers every interval.
    for (const PackPlacement& p : placements) {
      double active = 0.0;
      for (const PackPlacement& q : placements) {
        if (q.start <= p.start && p.start < q.end) {
          active += problem.power_mw[q.core];
        }
      }
      if (active > problem.p_max_mw + 1e-9) {
        return "power " + std::to_string(active) + " mW at t=" +
               std::to_string(p.start) + " exceeds budget " +
               std::to_string(problem.p_max_mw);
      }
    }
  }
  if (reported_makespan != max_end) {
    return "reported makespan " + std::to_string(reported_makespan) +
           " != max rectangle end " + std::to_string(max_end);
  }
  return {};
}

}  // namespace soctest
