#include "pack/exact_pack.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "pack/skyline.hpp"
#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

struct Segment {
  int x = 0;
  int width = 0;
  Cycles h = 0;
};

void merge_skyline(std::vector<Segment>& skyline) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < skyline.size(); ++i) {
    if (out > 0 && skyline[out - 1].h == skyline[i].h) {
      skyline[out - 1].width += skyline[i].width;
    } else {
      skyline[out++] = skyline[i];
    }
  }
  skyline.resize(out);
}

class PackSearch {
 public:
  PackSearch(const PackProblem& problem, const PackExactOptions& options,
             Cycles incumbent)
      : problem_(problem),
        options_(options),
        stop_check_(options.deadline, options.cancel,
                    failpoint::sites::kPackNode),
        best_makespan_(incumbent) {
    const std::size_t n = problem.num_cores();
    placed_.assign(n, 0);
    min_area_.resize(n);
    min_time_.resize(n);
    // Symmetry: among interchangeable cores (identical menu and power) only
    // the lowest-index unplaced one is branched on.
    group_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      long long area = -1;
      for (const PackRect& r : problem.menu[i]) {
        const long long a = static_cast<long long>(r.width) * r.time;
        if (area < 0 || a < area) area = a;
      }
      min_area_[i] = area < 0 ? 0 : area;
      min_time_[i] = problem.menu[i].back().time;
      remaining_area_ += min_area_[i];
      group_[i] = i;
      for (std::size_t j = 0; j < i; ++j) {
        const bool same_power =
            problem.power_mw.empty() ||
            problem.power_mw[i] == problem.power_mw[j];
        if (same_power && problem.menu[i].size() == problem.menu[j].size() &&
            std::equal(problem.menu[i].begin(), problem.menu[i].end(),
                       problem.menu[j].begin(),
                       [](const PackRect& a, const PackRect& b) {
                         return a.width == b.width && a.time == b.time;
                       })) {
          group_[i] = group_[j];
          break;
        }
      }
    }
  }

  void run() {
    skyline_ = {{0, problem_.total_width, 0}};
    placements_.clear();
    placements_.reserve(problem_.num_cores());
    dfs(0, 0);
  }

  long long nodes() const { return nodes_; }
  StopReason stop() const {
    if (stop_check_stopped_) return stop_check_.reason();
    return budget_hit_ ? StopReason::kNodeBudget : StopReason::kNone;
  }
  bool interrupted() const { return stop_check_stopped_ || budget_hit_; }
  Cycles best_makespan() const { return best_makespan_; }
  /// Empty when the warm-start incumbent was never improved.
  const std::vector<PackPlacement>& best_placements() const {
    return best_placements_;
  }

 private:
  bool should_stop() {
    if (stop_check_stopped_ || budget_hit_) return true;
    const long long budget = options_.max_nodes >= 0 ? options_.max_nodes
                                                     : kPackExactDefaultNodes;
    if (nodes_ >= budget) {
      budget_hit_ = true;
      return true;
    }
    if (stop_check_.should_stop()) {
      stop_check_stopped_ = true;
      return true;
    }
    return false;
  }

  Cycles bound(std::size_t unplaced, Cycles max_end) const {
    Cycles min_h = skyline_[0].h;
    long long skyline_area = 0;
    for (const Segment& s : skyline_) {
      min_h = std::min(min_h, s.h);
      skyline_area += static_cast<long long>(s.width) * s.h;
    }
    Cycles b = max_end;
    if (unplaced > 0) {
      Cycles tallest = 0;
      for (std::size_t i = 0; i < placed_.size(); ++i) {
        if (!placed_[i]) tallest = std::max(tallest, min_time_[i]);
      }
      b = std::max(b, min_h + tallest);
    }
    const long long area = skyline_area + remaining_area_;
    b = std::max(b, static_cast<Cycles>((area + problem_.total_width - 1) /
                                        problem_.total_width));
    return b;
  }

  void dfs(std::size_t depth, Cycles max_end) {
    ++nodes_;
    if (should_stop()) return;
    const std::size_t n = problem_.num_cores();
    if (depth == n) {
      if (max_end < best_makespan_) {
        best_makespan_ = max_end;
        best_placements_ = placements_;
      }
      return;
    }
    // The warm-start incumbent is already a witness, so pruning may be
    // strict from the first node.
    if (bound(n - depth, max_end) >= best_makespan_) return;

    std::size_t seg_at = 0;
    for (std::size_t s = 1; s < skyline_.size(); ++s) {
      if (skyline_[s].h < skyline_[seg_at].h) seg_at = s;
    }
    const Segment seg = skyline_[seg_at];
    const std::vector<Segment> saved_skyline = skyline_;

    bool wider_exists = false;   // a remaining shape the segment is too
                                 // narrow for (raising may merge room)
    bool power_blocked = false;  // a fitting shape the budget rejected here
    for (std::size_t core = 0; core < n; ++core) {
      if (placed_[core]) continue;
      if (group_[core] != core && !placed_[group_[core]]) continue;
      const std::vector<PackRect>& shapes = problem_.menu[core];
      for (auto it = shapes.rbegin(); it != shapes.rend(); ++it) {
        if (it->width > seg.width) {
          wider_exists = true;
          continue;
        }
        if (!power_fits(problem_, placements_,
                        problem_.power_mw.empty() ? 0.0
                                                  : problem_.power_mw[core],
                        seg.h, seg.h + it->time)) {
          power_blocked = true;
          continue;
        }
        PackPlacement placement;
        placement.core = core;
        placement.width = it->width;
        placement.x = seg.x;
        placement.start = seg.h;
        placement.end = seg.h + it->time;
        placements_.push_back(placement);
        placed_[core] = 1;
        remaining_area_ -= min_area_[core];
        skyline_[seg_at].width = it->width;
        skyline_[seg_at].h = placement.end;
        if (it->width < seg.width) {
          skyline_.insert(
              skyline_.begin() + static_cast<std::ptrdiff_t>(seg_at) + 1,
              {seg.x + it->width, seg.width - it->width, seg.h});
        }
        merge_skyline(skyline_);
        dfs(depth + 1, std::max(max_end, placement.end));
        skyline_ = saved_skyline;
        remaining_area_ += min_area_[core];
        placed_[core] = 0;
        placements_.pop_back();
        if (should_stop()) return;
      }
    }

    // Close the lowest segment: raise it to the next active-set change so
    // deliberately wasted strip area (power gaps, awkward widths) is
    // reachable. Only branch when closing can enable something a direct
    // placement cannot — a wider remaining shape (merging makes room) or a
    // power-rejected one (the active set thins out above) — otherwise the
    // raise subtree re-derives packings the placement branches already
    // cover, with strictly more wasted area.
    if (!wider_exists && !power_blocked) return;
    Cycles next = -1;
    if (seg_at > 0 && skyline_[seg_at - 1].h > seg.h) {
      next = skyline_[seg_at - 1].h;
    }
    if (seg_at + 1 < skyline_.size() && skyline_[seg_at + 1].h > seg.h &&
        (next < 0 || skyline_[seg_at + 1].h < next)) {
      next = skyline_[seg_at + 1].h;
    }
    for (const PackPlacement& p : placements_) {
      if (p.end > seg.h && (next < 0 || p.end < next)) next = p.end;
    }
    if (next >= 0) {
      skyline_[seg_at].h = next;
      merge_skyline(skyline_);
      dfs(depth, max_end);
      skyline_ = saved_skyline;
    }
  }

  const PackProblem& problem_;
  const PackExactOptions& options_;
  StopCheck stop_check_;
  bool stop_check_stopped_ = false;
  bool budget_hit_ = false;
  long long nodes_ = 0;
  std::vector<Segment> skyline_;
  std::vector<PackPlacement> placements_;
  std::vector<char> placed_;
  std::vector<long long> min_area_;
  std::vector<Cycles> min_time_;
  std::vector<std::size_t> group_;
  long long remaining_area_ = 0;
  Cycles best_makespan_ = 0;
  std::vector<PackPlacement> best_placements_;
};

}  // namespace

PackSolveResult solve_pack_exact(const PackProblem& problem,
                                 const PackExactOptions& options) {
  obs::Span span("pack.exact.solve",
                 {{"cores", static_cast<long long>(problem.num_cores())},
                  {"width", static_cast<long long>(problem.total_width)}});
  // Warm start: the heuristic incumbent makes the very first bound tight
  // and guarantees an anytime answer even on node budget 0.
  PackSolveResult result = solve_pack_skyline(problem);
  const Cycles lb = problem.lower_bound();
  if (problem.num_cores() == 0 || result.makespan <= lb) {
    if (span.active()) span.arg({"nodes", 0});
    return result;  // already optimal; nothing to search
  }

  PackSearch search(problem, options, result.makespan);
  search.run();
  result.nodes = search.nodes();
  result.stop = search.stop();
  if (!search.best_placements().empty() &&
      search.best_makespan() < result.makespan) {
    result.placements = search.best_placements();
    std::sort(result.placements.begin(), result.placements.end(),
              [](const PackPlacement& a, const PackPlacement& b) {
                return a.start != b.start ? a.start < b.start : a.x < b.x;
              });
    result.makespan = search.best_makespan();
  }
  if (search.interrupted()) {
    result.proved_optimal = false;
    result.certificate = certify_bounded(result.makespan, lb, result.stop);
  } else {
    result.proved_optimal = true;
    result.certificate = certify_optimal(result.makespan);
  }
  if (obs::enabled()) {
    obs::counter("pack.exact.solves").add(1);
    obs::counter("pack.exact.nodes").add(search.nodes());
  }
  if (span.active()) {
    span.arg({"nodes", search.nodes()});
    span.arg({"makespan", static_cast<long long>(result.makespan)});
  }
  return result;
}

}  // namespace soctest
