#pragma once

#include <cstdint>

#include "common/parallel.hpp"
#include "pack/pack_problem.hpp"
#include "runtime/deadline.hpp"

namespace soctest {

struct PackSolverOptions {
  /// SA repair iterations over (placement order, width caps); 0 disables
  /// the repair pass and returns the raw skyline packing.
  int sa_iterations = 6000;
  double initial_temperature = 0.0;  ///< 0 = auto (scaled to makespan)
  double cooling = 0.9995;
  std::uint64_t seed = 1;
  /// Optional cooperative cancellation (portfolio racing): checked every
  /// iteration; on cancel the best packing seen so far is returned.
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline (anytime mode): the repair loop stops
  /// when it expires and returns the best packing seen so far.
  Deadline deadline;
};

/// One deterministic bottom-left skyline pass: cores sorted by decreasing
/// full-width test time, each placed on the lowest (leftmost-tie) skyline
/// segment with the widest menu shape that fits it; when the power budget
/// rejects every candidate the segment is raised to the next height at
/// which the active set changes. Never fails on a validated problem.
PackSolveResult solve_pack_skyline(const PackProblem& problem);

/// The `pack` solver: the skyline pass above plus a simulated-annealing
/// repair loop that perturbs the placement order and per-core width caps
/// and re-packs (the SA idiom of src/tam/heuristics applied to packings).
/// Proves optimality only when the result hits PackProblem::lower_bound.
PackSolveResult solve_pack(const PackProblem& problem,
                           const PackSolverOptions& options = {});

}  // namespace soctest
