#include "pack/skyline.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

/// One maximal horizontal run of the skyline at height h.
struct Segment {
  int x = 0;
  int width = 0;
  Cycles h = 0;
};

struct PackPass {
  std::vector<PackPlacement> placements;
  Cycles makespan = 0;
  long long raised = 0;
};

void merge_skyline(std::vector<Segment>& skyline) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < skyline.size(); ++i) {
    if (out > 0 && skyline[out - 1].h == skyline[i].h) {
      skyline[out - 1].width += skyline[i].width;
    } else {
      skyline[out++] = skyline[i];
    }
  }
  skyline.resize(out);
}

/// Deterministic bottom-left skyline pass. `order` is the candidate scan
/// priority; `cap[core]` limits the width choice (>= 1). Power rejections
/// raise the blocked segment to the next height at which the active set
/// changes, so the pass always terminates with every core placed.
PackPass pack_once(const PackProblem& problem,
                   const std::vector<std::size_t>& order,
                   const std::vector<int>& cap) {
  const std::size_t n = problem.num_cores();
  PackPass pass;
  if (n == 0) return pass;
  std::vector<Segment> skyline{{0, problem.total_width, 0}};
  std::vector<char> placed_mask(n, 0);
  pass.placements.reserve(n);
  std::size_t placed = 0;
  while (placed < n) {
    std::size_t seg_at = 0;
    for (std::size_t s = 1; s < skyline.size(); ++s) {
      if (skyline[s].h < skyline[seg_at].h) seg_at = s;
    }
    const Segment seg = skyline[seg_at];
    // Best candidate: widest shape fitting the segment, order position
    // breaking ties; a perfect width fill wins outright.
    bool found = false;
    std::size_t best_core = 0;
    int best_width = 0;
    Cycles best_time = 0;
    for (const std::size_t core : order) {
      if (placed_mask[core]) continue;
      const int limit = std::min(seg.width, cap[core]);
      const std::vector<PackRect>& shapes = problem.menu[core];
      int w = 0;
      Cycles t = 0;
      for (auto it = shapes.rbegin(); it != shapes.rend(); ++it) {
        if (it->width <= limit) {
          w = it->width;
          t = it->time;
          break;
        }
      }
      if (w == 0) continue;  // cap below the narrowest shape
      if (w <= best_width) continue;
      if (!power_fits(problem, pass.placements,
                      problem.power_mw.empty() ? 0.0 : problem.power_mw[core],
                      seg.h, seg.h + t)) {
        continue;
      }
      found = true;
      best_core = core;
      best_width = w;
      best_time = t;
      if (w == seg.width) break;  // perfect fill
    }
    if (!found) {
      // Power blocks every remaining core here: raise the segment to the
      // next height where the active set changes (a neighbouring segment
      // top or a placed rectangle end), then merge equal heights.
      Cycles next = -1;
      if (seg_at > 0 && skyline[seg_at - 1].h > seg.h) {
        next = skyline[seg_at - 1].h;
      }
      if (seg_at + 1 < skyline.size() && skyline[seg_at + 1].h > seg.h &&
          (next < 0 || skyline[seg_at + 1].h < next)) {
        next = skyline[seg_at + 1].h;
      }
      for (const PackPlacement& p : pass.placements) {
        if (p.end > seg.h && (next < 0 || p.end < next)) next = p.end;
      }
      if (next < 0) {
        // Unreachable on validated problems (a lone core always fits the
        // budget); raise by one cycle to guarantee termination regardless.
        next = seg.h + 1;
      }
      skyline[seg_at].h = next;
      merge_skyline(skyline);
      ++pass.raised;
      continue;
    }
    PackPlacement placement;
    placement.core = best_core;
    placement.width = best_width;
    placement.x = seg.x;
    placement.start = seg.h;
    placement.end = seg.h + best_time;
    pass.placements.push_back(placement);
    placed_mask[best_core] = 1;
    ++placed;
    pass.makespan = std::max(pass.makespan, placement.end);
    skyline[seg_at].width = best_width;
    skyline[seg_at].h = seg.h + best_time;
    if (best_width < seg.width) {
      skyline.insert(skyline.begin() + static_cast<std::ptrdiff_t>(seg_at) + 1,
                     {seg.x + best_width, seg.width - best_width, seg.h});
    }
    merge_skyline(skyline);
  }
  return pass;
}

/// Tallest-first scan order: decreasing full-width test time, index ties.
std::vector<std::size_t> default_order(const PackProblem& problem) {
  std::vector<std::size_t> order(problem.num_cores());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return problem.menu[a].back().time >
                            problem.menu[b].back().time;
                   });
  return order;
}

std::vector<int> full_caps(const PackProblem& problem) {
  return std::vector<int>(problem.num_cores(), problem.total_width);
}

PackSolveResult assemble(const PackProblem& problem, PackPass best,
                         long long nodes, StopReason stop) {
  PackSolveResult result;
  result.feasible = true;
  result.makespan = best.makespan;
  result.nodes = nodes;
  result.stop = stop;
  std::sort(best.placements.begin(), best.placements.end(),
            [](const PackPlacement& a, const PackPlacement& b) {
              return a.start != b.start ? a.start < b.start : a.x < b.x;
            });
  result.placements = std::move(best.placements);
  const Cycles lb = problem.lower_bound();
  if (result.makespan <= lb) {
    result.proved_optimal = true;
    result.certificate = certify_optimal(result.makespan);
    result.certificate.stop = stop;
  } else {
    result.certificate = certify_bounded(result.makespan, lb, stop);
  }
  return result;
}

}  // namespace

PackSolveResult solve_pack_skyline(const PackProblem& problem) {
  PackPass pass = pack_once(problem, default_order(problem), full_caps(problem));
  if (obs::enabled()) {
    obs::counter("pack.skyline.solves").add(1);
    obs::counter("pack.skyline.placed")
        .add(static_cast<long long>(pass.placements.size()));
    obs::counter("pack.skyline.raised").add(pass.raised);
  }
  const long long nodes =
      static_cast<long long>(pass.placements.size()) + pass.raised;
  return assemble(problem, std::move(pass), nodes, StopReason::kNone);
}

PackSolveResult solve_pack(const PackProblem& problem,
                           const PackSolverOptions& options) {
  obs::Span span("pack.solve",
                 {{"cores", static_cast<long long>(problem.num_cores())},
                  {"width", static_cast<long long>(problem.total_width)}});
  const std::vector<std::size_t> base_order = default_order(problem);
  std::vector<std::size_t> order = base_order;
  std::vector<int> cap = full_caps(problem);
  PackPass current = pack_once(problem, order, cap);
  PackPass best = current;
  long long passes = 1;
  long long raised_total = current.raised;
  const Cycles lb = problem.lower_bound();
  const std::size_t n = problem.num_cores();

  StopCheck stop_check(options.deadline, options.cancel,
                       failpoint::sites::kPackSaIter);
  long long moves = 0;
  long long accepted = 0;
  if (n >= 2 && best.makespan > lb) {
    Rng rng(options.seed);
    double cost = static_cast<double>(current.makespan);
    double temperature =
        options.initial_temperature > 0
            ? options.initial_temperature
            : std::max(1.0, cost * 0.05);
    for (int it = 0; it < options.sa_iterations; ++it) {
      if (stop_check.should_stop()) break;
      // Perturb the pack inputs, re-pack, Metropolis-accept on makespan.
      std::size_t undo_a = 0, undo_b = 0;
      int undo_cap = 0;
      bool is_swap = rng.bernoulli(0.5);
      if (is_swap) {
        undo_a = rng.index(n);
        undo_b = rng.index(n);
        if (undo_a == undo_b) undo_b = (undo_b + 1) % n;
        std::swap(order[undo_a], order[undo_b]);
      } else {
        undo_a = rng.index(n);
        undo_cap = cap[undo_a];
        const std::vector<PackRect>& shapes = problem.menu[undo_a];
        cap[undo_a] = shapes[rng.index(shapes.size())].width;
        if (cap[undo_a] == undo_cap) continue;
      }
      ++moves;
      PackPass candidate = pack_once(problem, order, cap);
      ++passes;
      raised_total += candidate.raised;
      const double cand_cost = static_cast<double>(candidate.makespan);
      const double delta = cand_cost - cost;
      if (delta <= 0 || rng.uniform01() < std::exp(-delta / temperature)) {
        ++accepted;
        cost = cand_cost;
        if (candidate.makespan < best.makespan) best = candidate;
        current = std::move(candidate);
        if (best.makespan <= lb) break;  // optimal; nothing left to repair
      } else if (is_swap) {
        std::swap(order[undo_a], order[undo_b]);
      } else {
        cap[undo_a] = undo_cap;
      }
      temperature *= options.cooling;
    }
  }
  if (obs::enabled()) {
    obs::counter("pack.skyline.solves").add(passes);
    obs::counter("pack.skyline.placed")
        .add(passes * static_cast<long long>(n));
    obs::counter("pack.skyline.raised").add(raised_total);
    obs::counter("pack.sa.moves").add(moves);
    obs::counter("pack.sa.accepted").add(accepted);
  }
  if (span.active()) {
    span.arg({"moves", moves});
    span.arg({"makespan", static_cast<long long>(best.makespan)});
  }
  return assemble(problem, std::move(best), passes, stop_check.reason());
}

}  // namespace soctest
